"""A JSON-over-HTTP endpoint for a :class:`~repro.serving.service.RankingService`.

Built on the stdlib :mod:`http.server` (threaded), in the same spirit as
the simulated web server of :mod:`repro.crawler.webserver`: no third-party
dependencies, good enough for the examples, the benchmarks and local
experimentation.

Routes (all ``GET``, all returning ``application/json``):

``/top?k=10[&site=example.org][&segment=researchers]``
    Current global (or per-site) top-k documents, optionally ranked by a
    personalisation segment's score column (``400`` on unknown segments).
``/query?q=research+database[&q=more+queries][&k=10][&rule=linear|rrf][&weight=0.5][&segment=researchers]``
    Combined text+link search; repeated ``q`` parameters form a batch
    answered through :meth:`RankingService.query_many`.  With ``segment``
    the link component is the segment's score column.
``/score?doc=42``
    O(1) point lookup of one document's score.
``/stats``
    Service / cache / engine statistics.
``/health``
    Liveness probe.
``/healthz``
    Structured health: store generation, shard count, uptime.
``/readyz[?replica=name]``
    Readiness (distinct from liveness): ``503`` while the queried replica
    is draining for a rolling rebuild; always ``200`` for a single
    (double-buffered) service.  Backed by ``ReplicaSet.readiness()`` when
    the server fronts a replica set.
``/metrics``
    The process telemetry registry (:mod:`repro.obs`) in Prometheus text
    exposition format — the one non-JSON route.

Errors are JSON too: ``400`` for bad parameters, ``404`` for unknown paths
or unknown sites/documents.

Every request is timed into the ``http_request_seconds`` histogram and
counted in ``http_requests_total`` (labelled by endpoint and status), and
emits a structured access line (method, path, status, duration_ms) on the
``repro.serving`` logger — silent by default (the logger sits at
``WARNING``), enabled with :func:`enable_access_log` or
``repro serve --access-log``.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..exceptions import GraphStructureError, ValidationError
from .service import RankingService
from .store import ScoredDocument

#: The serving access/error logger.  Pinned to WARNING at import so the
#: per-request INFO access lines stay silent even under a root logger
#: configured at INFO; :func:`enable_access_log` opts in.
ACCESS_LOGGER = logging.getLogger("repro.serving")
ACCESS_LOGGER.setLevel(logging.WARNING)

#: Endpoints the per-request metrics label by path; anything else (404s,
#: scanners) is folded into ``other`` to bound label cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {"/health", "/healthz", "/readyz", "/stats", "/top", "/query", "/score",
     "/metrics"})


def enable_access_log(stream=None) -> logging.Logger:
    """Switch the ``repro.serving`` access log on (one line per request).

    Sets the logger to ``INFO`` and attaches a stderr (or *stream*)
    handler if it has none.  Returns the logger.
    """
    ACCESS_LOGGER.setLevel(logging.INFO)
    if not ACCESS_LOGGER.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(message)s"))
        ACCESS_LOGGER.addHandler(handler)
    return ACCESS_LOGGER


def _document_payload(document: ScoredDocument) -> Dict[str, Any]:
    return {"doc_id": document.doc_id, "url": document.url,
            "site": document.site, "score": document.score}


class _ClientError(Exception):
    """A request error mapped to a 4xx JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


# --------------------------------------------------------------------- #
# Parameter parsing (module-level: shared with the async front end)
# --------------------------------------------------------------------- #
def _str_param(params: Dict[str, List[str]], name: str) -> Optional[str]:
    values = params.get(name)
    return values[-1] if values else None


def _int_param(params: Dict[str, List[str]], name: str, *,
               default: Optional[int] = None,
               required: bool = False) -> Optional[int]:
    raw = _str_param(params, name)
    if raw is None:
        if required:
            raise _ClientError(400, f"missing required parameter {name!r}")
        return default
    try:
        return int(raw)
    except ValueError:
        raise _ClientError(400,
                           f"parameter {name!r} must be an integer, "
                           f"got {raw!r}") from None


def _float_param(params: Dict[str, List[str]],
                 name: str) -> Optional[float]:
    raw = _str_param(params, name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise _ClientError(400,
                           f"parameter {name!r} must be a number, "
                           f"got {raw!r}") from None


def _hit_payload(service, hit) -> Dict[str, Any]:
    payload = {"doc_id": hit.doc_id,
               "combined_score": hit.combined_score,
               "query_score": hit.query_score,
               "link_score": hit.link_score}
    record = service.describe(hit.doc_id)
    if record is not None:
        payload["url"] = record.url
        payload["site"] = record.site
    return payload


def parse_query_request(params: Dict[str, List[str]]
                        ) -> Tuple[List[str], Optional[int], Optional[str],
                                   Optional[float], Optional[str]]:
    """Validate a ``/query`` request's parameters.

    Returns ``(queries, k, rule, weight, segment)``; raises
    :class:`_ClientError` on malformed input.  Shared by the threaded
    handler and the async front end so both reject and accept the exact
    same requests.
    """
    queries = params.get("q")
    if not queries:
        raise _ClientError(400, "missing required parameter 'q'")
    k = _int_param(params, "k", default=10)
    rule = _str_param(params, "rule")
    if rule not in (None, "linear", "rrf"):
        raise _ClientError(400, f"unknown rule {rule!r}")
    weight = _float_param(params, "weight")
    segment = _str_param(params, "segment")
    return queries, k, rule, weight, segment


def query_response(service, queries: List[str], batches,
                   k: Optional[int],
                   segment: Optional[str]) -> Dict[str, Any]:
    """The ``/query`` response body for already-computed result batches.

    Factored out of the route so the async front end can hand in batches
    produced by the request coalescer and still emit a body byte-identical
    to the threaded server's.
    """
    results = [{"query": text,
                "hits": [_hit_payload(service, hit) for hit in hits]}
               for text, hits in zip(queries, batches)]
    payload: Dict[str, Any] = {"k": k, "results": results}
    if segment is not None:
        payload["segment"] = segment
    return payload


def route_request(service, path: str, params: Dict[str, List[str]], *,
                  uptime_seconds: float = 0.0
                  ) -> Tuple[Dict[str, Any], int]:
    """Translate one GET request into service calls; the shared router.

    *service* is anything with the :class:`RankingService` query surface —
    a single service or a :class:`~repro.serving.replicas.ReplicaSet`.
    Both HTTP servers (threaded and asyncio) route through this function,
    so their JSON responses are byte-identical; raises
    :class:`_ClientError` for 4xx/5xx conditions.
    """
    if path == "/health":
        return {"status": "ok"}, 200
    if path == "/healthz":
        store = service.store
        return {"status": "ok",
                "generation": store.generation,
                "shards": store.n_shards,
                "documents": store.n_documents,
                "queries_served": service.queries_served,
                "uptime_seconds": uptime_seconds}, 200
    if path == "/readyz":
        # Readiness is distinct from liveness: a healthy process may
        # still be draining replicas for a rolling rebuild.  A single
        # service is always ready (its rebuilds are double-buffered); a
        # ReplicaSet reports its per-replica drain state.
        readiness_of = getattr(service, "readiness", None)
        if readiness_of is None:
            payload: Dict[str, Any] = {"status": "ready", "ready": True,
                                       "generation":
                                           service.store.generation}
            return payload, 200
        readiness = readiness_of()
        replica = _str_param(params, "replica")
        if replica is not None:
            detail = next((entry for entry in readiness["replicas"]
                           if entry["name"] == replica), None)
            if detail is None:
                raise _ClientError(404, f"unknown replica {replica!r}")
            status = 200 if detail["ready"] else 503
            return {"status": "ready" if detail["ready"] else "draining",
                    "ready": detail["ready"], "replica": detail}, status
        status = 200 if readiness["ready"] else 503
        return {"status": "ready" if readiness["ready"] else "draining",
                "ready": readiness["ready"],
                "draining": readiness["draining"],
                "replicas": readiness["replicas"]}, status
    if path == "/stats":
        return service.stats(), 200
    if path == "/top":
        k = _int_param(params, "k", default=10)
        site = _str_param(params, "site")
        segment = _str_param(params, "segment")
        try:
            documents = service.top(k, site=site, segment=segment)
        except GraphStructureError as error:
            raise _ClientError(404, str(error)) from None
        payload = {"k": k, "site": site,
                   "results": [_document_payload(d) for d in documents]}
        # Only segment-qualified requests mention the segment — the
        # segment-less response body stays byte-identical to 1.3.
        if segment is not None:
            payload["segment"] = segment
        return payload, 200
    if path == "/query":
        queries, k, rule, weight, segment = parse_query_request(params)
        batches = service.query_many(queries, k, rule=rule,
                                     weight=weight, segment=segment)
        return query_response(service, queries, batches, k, segment), 200
    if path == "/score":
        doc_id = _int_param(params, "doc", required=True)
        document = service.describe(doc_id)
        if document is None:
            raise _ClientError(404, f"unknown document id {doc_id}")
        return _document_payload(document), 200
    raise _ClientError(404, f"unknown path {path!r}")


def serving_samples(service, uptime_seconds: float
                    ) -> Iterable[Tuple[str, str, Dict[str, str], float]]:
    """Scrape-time ``serving_*`` samples of one service's own counters.

    Shared by both front ends' metrics collectors; *service* is a single
    :class:`RankingService` or a :class:`~repro.serving.replicas.ReplicaSet`
    (whose aggregate :meth:`stats` keeps the single-service shape).
    """
    stats = service.stats()
    cache = stats["cache"]
    engine = stats["engine"]
    return [
        ("counter", "serving_queries_served_total", {},
         float(stats["queries_served"])),
        ("counter", "serving_cache_hits_total", {},
         float(cache["hits"])),
        ("counter", "serving_cache_misses_total", {},
         float(cache["misses"])),
        ("counter", "serving_cache_evictions_total", {},
         float(cache["evictions"])),
        ("counter", "serving_cache_invalidations_total", {},
         float(cache["invalidations"])),
        ("gauge", "serving_cache_hit_rate", {},
         float(cache["hit_rate"])),
        ("gauge", "serving_cache_entries", {},
         float(stats["cache_entries"])),
        ("gauge", "serving_store_generation", {},
         float(stats["generation"])),
        ("gauge", "serving_store_shards", {}, float(stats["shards"])),
        ("gauge", "serving_store_documents", {},
         float(stats["documents"])),
        ("gauge", "serving_uptime_seconds", {}, uptime_seconds),
        ("counter", "serving_rebuild_dispatch_bytes_total", {},
         float(engine["dispatch_bytes"])),
    ]


class RankingRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests into :class:`RankingService` calls."""

    server: "RankingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        started = perf_counter()
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        status = 500
        try:
            if split.path == "/metrics":
                # The one non-JSON route: the telemetry registry in
                # Prometheus text exposition format.
                status = 200
                self._respond_text(status, obs.render_prometheus(),
                                   content_type="text/plain; "
                                                "version=0.0.4; "
                                                "charset=utf-8")
            else:
                try:
                    payload, status = route_request(
                        self.server.service, split.path, params,
                        uptime_seconds=self.server.uptime_seconds)
                except _ClientError as error:
                    payload, status = {"error": str(error)}, error.status
                except (ValidationError, GraphStructureError) as error:
                    payload, status = {"error": str(error)}, 400
                self._respond(status, payload)
        finally:
            duration = perf_counter() - started
            endpoint = (split.path if split.path in _KNOWN_ENDPOINTS
                        else "other")
            obs.inc("http_requests_total", path=endpoint,
                    status=str(status))
            obs.observe("http_request_seconds", duration, path=endpoint)
            ACCESS_LOGGER.info("%s %s %d %.2fms", self.command, self.path,
                               status, duration * 1000.0)

    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, status: int, text: str, *,
                      content_type: str = "text/plain; charset=utf-8"
                      ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_request(self, code="-", size="-") -> None:
        # The per-request access line (with duration) is emitted by
        # do_GET; the default per-response line here would duplicate it.
        pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # http.server internals route errors here; surface them through
        # the structured serving logger instead of bare stderr.
        ACCESS_LOGGER.warning("%s - %s", self.address_string(),
                              format % args)


class RankingHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`RankingService`.

    Parameters
    ----------
    service:
        The service answering the requests (a
        :class:`~repro.serving.replicas.ReplicaSet` also works — anything
        with the service's query surface).
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (the bound
        port is available as :attr:`port`).
    verbose:
        Switches the ``repro.serving`` access log on (one structured line
        per request to stderr, see :func:`enable_access_log`).  Off by
        default — the examples and tests hammer the endpoint.

    While the server lives, a collector is registered with the telemetry
    registry so ``/metrics`` scrapes also expose the service's own state
    (cache hit rate, store generation, uptime) without double accounting;
    :meth:`close` removes it.
    """

    daemon_threads = True

    def __init__(self, service: RankingService, *, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.service = service
        self.verbose = verbose
        self.started_at = monotonic()
        if verbose:
            enable_access_log()
        obs.registry().add_collector(self._collect_serving_samples)
        super().__init__((host, port), RankingRequestHandler)

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the server object was created."""
        return monotonic() - self.started_at

    def _collect_serving_samples(self) -> Iterable[Tuple[str, str,
                                                         Dict[str, str],
                                                         float]]:
        """Scrape-time samples of the service's own counters."""
        return serving_samples(self.service, self.uptime_seconds)

    @property
    def host(self) -> str:
        """Bound host."""
        return self.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve forever from a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serving", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving, release the socket and drop the metrics collector."""
        obs.registry().remove_collector(self._collect_serving_samples)
        self.shutdown()
        self.server_close()


def serve_ranking(service: RankingService, *, host: str = "127.0.0.1",
                  port: int = 0, verbose: bool = False) -> RankingHTTPServer:
    """Convenience constructor: build a server and start it in the background."""
    server = RankingHTTPServer(service, host=host, port=port, verbose=verbose)
    server.start_background()
    return server
