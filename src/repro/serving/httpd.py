"""A JSON-over-HTTP endpoint for a :class:`~repro.serving.service.RankingService`.

Built on the stdlib :mod:`http.server` (threaded), in the same spirit as
the simulated web server of :mod:`repro.crawler.webserver`: no third-party
dependencies, good enough for the examples, the benchmarks and local
experimentation.

Routes (all ``GET``, all returning ``application/json``):

``/top?k=10[&site=example.org]``
    Current global (or per-site) top-k documents.
``/query?q=research+database[&q=more+queries][&k=10][&rule=linear|rrf][&weight=0.5]``
    Combined text+link search; repeated ``q`` parameters form a batch
    answered through :meth:`RankingService.query_many`.
``/score?doc=42``
    O(1) point lookup of one document's score.
``/stats``
    Service / cache statistics.
``/health``
    Liveness probe.

Errors are JSON too: ``400`` for bad parameters, ``404`` for unknown paths
or unknown sites/documents.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import GraphStructureError, ValidationError
from .service import RankingService
from .store import ScoredDocument


def _document_payload(document: ScoredDocument) -> Dict[str, Any]:
    return {"doc_id": document.doc_id, "url": document.url,
            "site": document.site, "score": document.score}


class _ClientError(Exception):
    """A request error mapped to a 4xx JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class RankingRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests into :class:`RankingService` calls."""

    server: "RankingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        try:
            payload, status = self._route(split.path, params)
        except _ClientError as error:
            payload, status = {"error": str(error)}, error.status
        except (ValidationError, GraphStructureError) as error:
            payload, status = {"error": str(error)}, 400
        self._respond(status, payload)

    def _route(self, path: str,
               params: Dict[str, List[str]]) -> Tuple[Dict[str, Any], int]:
        service = self.server.service
        if path == "/health":
            return {"status": "ok"}, 200
        if path == "/stats":
            return service.stats(), 200
        if path == "/top":
            k = self._int_param(params, "k", default=10)
            site = self._str_param(params, "site")
            try:
                documents = service.top(k, site=site)
            except GraphStructureError as error:
                raise _ClientError(404, str(error)) from None
            return {"k": k, "site": site,
                    "results": [_document_payload(d) for d in documents]}, 200
        if path == "/query":
            queries = params.get("q")
            if not queries:
                raise _ClientError(400, "missing required parameter 'q'")
            k = self._int_param(params, "k", default=10)
            rule = self._str_param(params, "rule")
            if rule not in (None, "linear", "rrf"):
                raise _ClientError(400, f"unknown rule {rule!r}")
            weight = self._float_param(params, "weight")
            batches = service.query_many(queries, k, rule=rule, weight=weight)
            results = [{"query": text,
                        "hits": [self._hit_payload(service, hit)
                                 for hit in hits]}
                       for text, hits in zip(queries, batches)]
            return {"k": k, "results": results}, 200
        if path == "/score":
            doc_id = self._int_param(params, "doc", required=True)
            document = service.describe(doc_id)
            if document is None:
                raise _ClientError(404, f"unknown document id {doc_id}")
            return _document_payload(document), 200
        raise _ClientError(404, f"unknown path {path!r}")

    @staticmethod
    def _hit_payload(service: RankingService, hit) -> Dict[str, Any]:
        payload = {"doc_id": hit.doc_id,
                   "combined_score": hit.combined_score,
                   "query_score": hit.query_score,
                   "link_score": hit.link_score}
        record = service.describe(hit.doc_id)
        if record is not None:
            payload["url"] = record.url
            payload["site"] = record.site
        return payload

    # ------------------------------------------------------------------ #
    # Parameter parsing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _str_param(params: Dict[str, List[str]],
                   name: str) -> Optional[str]:
        values = params.get(name)
        return values[-1] if values else None

    @classmethod
    def _int_param(cls, params: Dict[str, List[str]], name: str, *,
                   default: Optional[int] = None,
                   required: bool = False) -> Optional[int]:
        raw = cls._str_param(params, name)
        if raw is None:
            if required:
                raise _ClientError(400, f"missing required parameter {name!r}")
            return default
        try:
            return int(raw)
        except ValueError:
            raise _ClientError(400,
                               f"parameter {name!r} must be an integer, "
                               f"got {raw!r}") from None

    @classmethod
    def _float_param(cls, params: Dict[str, List[str]],
                     name: str) -> Optional[float]:
        raw = cls._str_param(params, name)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise _ClientError(400,
                               f"parameter {name!r} must be a number, "
                               f"got {raw!r}") from None

    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)


class RankingHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`RankingService`.

    Parameters
    ----------
    service:
        The service answering the requests.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port (the bound
        port is available as :attr:`port`).
    verbose:
        Whether to log requests to stderr (off by default — the examples
        and tests hammer the endpoint).
    """

    daemon_threads = True

    def __init__(self, service: RankingService, *, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), RankingRequestHandler)

    @property
    def host(self) -> str:
        """Bound host."""
        return self.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve forever from a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serving", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop serving and release the socket."""
        self.shutdown()
        self.server_close()


def serve_ranking(service: RankingService, *, host: str = "127.0.0.1",
                  port: int = 0, verbose: bool = False) -> RankingHTTPServer:
    """Convenience constructor: build a server and start it in the background."""
    server = RankingHTTPServer(service, host=host, port=port, verbose=verbose)
    server.start_background()
    return server
