"""The asyncio high-QPS serving front end: coalescing + admission control.

The threaded :class:`~repro.serving.httpd.RankingHTTPServer` spends one OS
thread per connection and answers every ``/query`` with its own service
call; under a concurrent burst that means thread thrash and N identical
cache misses racing each other.  This front end replaces that edge with a
single-threaded asyncio server plus three load-shaping mechanisms:

* **request coalescing** — concurrent ``/query`` requests arriving within
  a short window (or while a previous batch is still in flight) merge into
  one deduplicated :meth:`RankingService.query_many` call; a burst of
  duplicate queries costs one retrieval, and engine/cache/lock work is
  amortised across the whole batch.  Coalescing is invisible to
  correctness: responses are byte-identical to the per-request path.
* **admission control and backpressure** — a bounded in-flight budget; a
  request beyond it is shed *immediately* with ``429`` and a
  ``Retry-After`` hint instead of queueing without bound, and every
  admitted request carries a deadline budget — one that expires while
  still coalescing is answered ``504`` without ever reaching the engine.
* **replica awareness** — fronting a
  :class:`~repro.serving.replicas.ReplicaSet` (anything with the
  ``RankingService`` query surface works), queries keep flowing through
  rolling zero-downtime rebuilds, and ``/readyz`` exposes the drain state.

The HTTP surface is identical to the threaded server (same routes, same
JSON bytes — both route through :func:`repro.serving.httpd.route_request`),
so clients cannot tell the front ends apart except by throughput.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from math import ceil
from time import monotonic, perf_counter
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..exceptions import GraphStructureError, ValidationError
from .httpd import (
    _KNOWN_ENDPOINTS,
    ACCESS_LOGGER,
    _ClientError,
    enable_access_log,
    parse_query_request,
    query_response,
    route_request,
    serving_samples,
)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


class Overloaded(Exception):
    """The in-flight budget is exhausted; shed with 429 + Retry-After."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(Exception):
    """A request's deadline budget expired before it could be served."""


@dataclass(frozen=True)
class FrontendConfig:
    """Tuning knobs of the async front end.

    Attributes
    ----------
    coalesce:
        Whether concurrent ``/query`` requests are batched at all; off,
        every request issues its own ``query_many`` call (the
        benchmark's per-request baseline).
    coalesce_window:
        Seconds the batcher waits after the first request of a burst
        before flushing, letting the rest of the burst pile in.  Even at
        ``0`` requests arriving while a batch is *in flight* coalesce
        into the next one.
    max_batch:
        Most queries sent to the backend in one ``query_many`` call;
        larger coalesced batches are chunked.
    max_inflight:
        Admission-control bound on concurrently admitted ``/query``
        requests; beyond it requests are shed with ``429``.
    deadline:
        Default per-request budget in seconds (clients may override per
        request with an ``X-Request-Deadline`` header); a request still
        waiting for a batch slot past its deadline is answered ``504``.
    retry_after:
        The ``Retry-After`` hint (seconds) sent with ``429`` responses.
    workers:
        Threads of the backend executor the event loop dispatches
        service calls to (service calls release the loop, not the GIL).
    """

    coalesce: bool = True
    coalesce_window: float = 0.002
    max_batch: int = 128
    max_inflight: int = 256
    deadline: float = 5.0
    retry_after: float = 0.05
    workers: int = 4

    def __post_init__(self) -> None:
        if self.coalesce_window < 0:
            raise ValidationError("coalesce_window must be non-negative")
        if self.max_batch < 1:
            raise ValidationError("max_batch must be at least 1")
        if self.max_inflight < 1:
            raise ValidationError("max_inflight must be at least 1")
        if self.deadline <= 0:
            raise ValidationError("deadline must be positive")
        if self.retry_after < 0:
            raise ValidationError("retry_after must be non-negative")
        if self.workers < 1:
            raise ValidationError("workers must be at least 1")


class AdmissionController:
    """Bounded in-flight budget with fast shedding (single-threaded).

    Lives on the event loop: no locks, just counters.  ``admit`` raises
    :class:`Overloaded` the moment the budget is exhausted — the cheap
    "fail fast at the edge" half of backpressure — and the gauge/counter
    pair (``frontend_inflight``, ``frontend_shed_total``) makes shedding
    visible on ``/metrics``.
    """

    def __init__(self, max_inflight: int, retry_after: float) -> None:
        self._max_inflight = max_inflight
        self._retry_after = retry_after
        self.inflight = 0
        self.shed = 0
        self.admitted = 0

    def admit(self) -> None:
        if self.inflight >= self._max_inflight:
            self.shed += 1
            obs.inc("frontend_shed_total")
            raise Overloaded(
                f"too many in-flight requests "
                f"({self.inflight}/{self._max_inflight})",
                self._retry_after)
        self.inflight += 1
        self.admitted += 1
        obs.set_gauge("frontend_inflight", float(self.inflight))

    def release(self) -> None:
        self.inflight -= 1
        obs.set_gauge("frontend_inflight", float(self.inflight))


class QueryCoalescer:
    """Merges concurrent query requests into deduplicated backend batches.

    Requests accumulate in a pending map keyed by their option tuple and
    text; one batcher task flushes the map after ``coalesce_window``
    seconds (or immediately once a previous flush's backend call returns,
    so a saturated backend coalesces *by itself*: everything that arrived
    during flight N forms flight N+1).  Duplicate texts fan one result
    out to every waiter — together with the batch-level deduplication in
    :meth:`RankingService.query_many` a burst of identical queries costs
    exactly one retrieval.
    """

    def __init__(self, service, config: FrontendConfig, *,
                 loop: asyncio.AbstractEventLoop,
                 executor: ThreadPoolExecutor) -> None:
        self._service = service
        self._config = config
        self._loop = loop
        self._executor = executor
        #: {(k, rule, weight, segment): {text: [(future, deadline_ts)]}}
        self._pending: Dict[Tuple, Dict[str, List[Tuple[asyncio.Future,
                                                        float]]]] = {}
        self._pending_count = 0
        self._wakeup = asyncio.Event()
        self.batches = 0
        self.coalesced_requests = 0
        self.dedup_hits = 0
        self._task = loop.create_task(self._run())

    async def submit(self, text: str, k: Optional[int],
                     rule: Optional[str], weight: Optional[float],
                     segment: Optional[str], deadline_ts: float):
        """Enqueue one query; resolves with its hits tuple."""
        future: asyncio.Future = self._loop.create_future()
        options = (k, rule, weight, segment)
        self._pending.setdefault(options, {}) \
            .setdefault(text, []).append((future, deadline_ts))
        self._pending_count += 1
        obs.set_gauge("frontend_queue_depth", float(self._pending_count))
        self._wakeup.set()
        return await future

    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._pending:
                continue
            if self._config.coalesce_window > 0:
                # Let the rest of the burst pile in.  While the backend
                # call below is awaited, further arrivals buffer too —
                # in-flight coalescing needs no window at all.
                await asyncio.sleep(self._config.coalesce_window)
            pending, self._pending = self._pending, {}
            batch_size, self._pending_count = self._pending_count, 0
            obs.set_gauge("frontend_queue_depth", 0.0)
            self.batches += 1
            self.coalesced_requests += batch_size
            obs.inc("frontend_batches_total")
            obs.inc("frontend_coalesced_requests_total", float(batch_size))
            obs.observe("frontend_coalesce_batch_size", float(batch_size))
            await asyncio.gather(*[self._flush_group(options, groups)
                                   for options, groups in pending.items()])

    async def _flush_group(self, options: Tuple,
                           groups: Dict[str, List[Tuple[asyncio.Future,
                                                        float]]]) -> None:
        k, rule, weight, segment = options
        now = self._loop.time()
        texts: List[str] = []
        for text, waiters in groups.items():
            live = []
            for future, deadline_ts in waiters:
                if deadline_ts < now:
                    # Expired while coalescing: fail fast, never touch
                    # the engine on its behalf.
                    if not future.done():
                        future.set_exception(DeadlineExceeded(
                            "deadline exceeded while queued"))
                    obs.inc("frontend_deadline_exceeded_total")
                else:
                    live.append((future, deadline_ts))
            groups[text] = live
            if live:
                texts.append(text)
        self.dedup_hits += sum(len(groups[text]) - 1 for text in texts)
        if not texts:
            return
        # Spread the deduplicated texts over the worker pool: one chunk
        # per worker (capped at max_batch), dispatched concurrently, so a
        # coalesced burst gets batch-level dedup AND executor parallelism.
        chunk_size = max(1, min(self._config.max_batch,
                                -(-len(texts) // self._config.workers)))
        chunks = [texts[start:start + chunk_size]
                  for start in range(0, len(texts), chunk_size)]

        async def run_chunk(chunk: List[str]) -> None:
            call = partial(self._service.query_many, chunk, k,
                           rule=rule, weight=weight, segment=segment)
            try:
                batches = await self._loop.run_in_executor(self._executor,
                                                           call)
            except BaseException as error:  # noqa: BLE001 - fan out as-is
                for text in chunk:
                    for future, _deadline in groups[text]:
                        if not future.done():
                            future.set_exception(error)
            else:
                for text, hits in zip(chunk, batches):
                    for future, _deadline in groups[text]:
                        if not future.done():
                            future.set_result(hits)

        await asyncio.gather(*[run_chunk(chunk) for chunk in chunks])

    def close(self) -> None:
        self._task.cancel()
        for groups in self._pending.values():
            for waiters in groups.values():
                for future, _deadline in waiters:
                    if not future.done():
                        future.set_exception(
                            ConnectionError("front end shutting down"))
        self._pending.clear()
        self._pending_count = 0


class AsyncRankingServer:
    """An asyncio JSON/HTTP front end over a service or replica set.

    Speaks the same routes (and emits byte-identical JSON) as
    :class:`~repro.serving.httpd.RankingHTTPServer`, plus the
    load-shaping of :class:`FrontendConfig`: coalesced ``/query``
    handling, bounded admission with fast ``429`` shedding, per-request
    deadlines, and ``/readyz`` readiness during rolling rebuilds.

    The event loop runs in a dedicated daemon thread, so the constructor
    returns with the socket bound (``port=0`` picks a free port) and the
    server already answering — mirroring
    :func:`~repro.serving.httpd.serve_ranking`'s contract for drop-in use
    from synchronous code; call :meth:`close` to tear everything down.
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0,
                 config: Optional[FrontendConfig] = None,
                 verbose: bool = False) -> None:
        self.service = service
        self.config = config or FrontendConfig()
        self.started_at = monotonic()
        self._closed = False
        if verbose:
            enable_access_log()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-frontend", daemon=True)
        self._thread.start()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-frontend-worker")
        self._admission = AdmissionController(self.config.max_inflight,
                                              self.config.retry_after)
        obs.registry().add_collector(self._collect_serving_samples)
        bound = asyncio.run_coroutine_threadsafe(self._start(host, port),
                                                 self._loop)
        self._host, self._port = bound.result(timeout=10.0)

    def _collect_serving_samples(self):
        """Scrape-time samples of the backing service's own counters."""
        return serving_samples(self.service, self.uptime_seconds)

    async def _start(self, host: str, port: int) -> Tuple[str, int]:
        self._coalescer = QueryCoalescer(self.service, self.config,
                                         loop=self._loop,
                                         executor=self._executor)
        self._server = await asyncio.start_server(self._handle_client,
                                                  host, port)
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        """Bound host."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0``)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://{self._host}:{self._port}"

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the server object was created."""
        return monotonic() - self.started_at

    @property
    def admission(self) -> AdmissionController:
        """The admission controller (inflight/shed counters)."""
        return self._admission

    @property
    def coalescer(self) -> QueryCoalescer:
        """The query coalescer (batch/dedup counters)."""
        return self._coalescer

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await reader.readline()
                if not request:
                    break
                parts = request.decode("latin-1").strip().split()
                if len(parts) != 3:
                    writer.write(self._encode(400, json.dumps(
                        {"error": "malformed request line"}).encode()))
                    break
                method, target, version = parts
                headers = await self._read_headers(reader)
                keep_alive = (version == "HTTP/1.1" and
                              headers.get("connection", "").lower()
                              != "close")
                started = perf_counter()
                status, body, content_type, extra = \
                    await self._respond(method, target, headers)
                writer.write(self._encode(status, body,
                                          content_type=content_type,
                                          extra=extra,
                                          keep_alive=keep_alive))
                await writer.drain()
                duration = perf_counter() - started
                path = urlsplit(target).path
                endpoint = path if path in _KNOWN_ENDPOINTS else "other"
                obs.inc("http_requests_total", path=endpoint,
                        status=str(status))
                obs.observe("http_request_seconds", duration, path=endpoint)
                ACCESS_LOGGER.info("%s %s %d %.2fms", method, target,
                                   status, duration * 1000.0)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):  # pragma: no cover - client
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    def _encode(status: int, body: bytes, *,
                content_type: str = "application/json",
                extra: Tuple[str, ...] = (),
                keep_alive: bool = True) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}"]
        lines.extend(extra)
        if not keep_alive:
            lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    async def _respond(self, method: str, target: str,
                       headers: Dict[str, str]
                       ) -> Tuple[int, bytes, str, Tuple[str, ...]]:
        if method != "GET":
            return (405, json.dumps({"error": f"method {method} not "
                                              f"allowed"}).encode("utf-8"),
                    "application/json", ())
        split = urlsplit(target)
        params = parse_qs(split.query)
        try:
            if split.path == "/metrics":
                return (200, obs.render_prometheus().encode("utf-8"),
                        "text/plain; version=0.0.4; charset=utf-8", ())
            if split.path == "/query":
                payload, status = await self._respond_query(params, headers)
            else:
                payload, status = await self._loop.run_in_executor(
                    self._executor, partial(route_request, self.service,
                                            split.path, params,
                                            uptime_seconds=
                                            self.uptime_seconds))
        except _ClientError as error:
            payload, status = {"error": str(error)}, error.status
        except Overloaded as error:
            retry_after = max(1, ceil(error.retry_after))
            return (429, json.dumps({"error": str(error),
                                     "retry_after":
                                         error.retry_after}).encode("utf-8"),
                    "application/json", (f"Retry-After: {retry_after}",))
        except DeadlineExceeded as error:
            payload, status = {"error": str(error)}, 504
        except (ValidationError, GraphStructureError) as error:
            payload, status = {"error": str(error)}, 400
        except Exception as error:  # noqa: BLE001 - surface as 500
            payload, status = {"error": f"internal error: {error}"}, 500
        return (status, json.dumps(payload).encode("utf-8"),
                "application/json", ())

    async def _respond_query(self, params: Dict[str, List[str]],
                             headers: Dict[str, str]
                             ) -> Tuple[Dict[str, Any], int]:
        queries, k, rule, weight, segment = parse_query_request(params)
        deadline = self.config.deadline
        raw_deadline = headers.get("x-request-deadline")
        if raw_deadline is not None:
            try:
                deadline = float(raw_deadline)
            except ValueError:
                raise _ClientError(400, "X-Request-Deadline must be a "
                                        f"number, got {raw_deadline!r}") \
                    from None
            if deadline <= 0:
                raise _ClientError(400,
                                   "X-Request-Deadline must be positive")
        self._admission.admit()
        try:
            if self.config.coalesce:
                deadline_ts = self._loop.time() + deadline
                # wait_for bounds the whole wait (queue time AND backend
                # flight); the coalescer's own expiry check just avoids
                # dispatching work for requests already past due.
                batches = await asyncio.wait_for(
                    asyncio.gather(*[
                        self._coalescer.submit(text, k, rule, weight,
                                               segment, deadline_ts)
                        for text in queries]),
                    timeout=deadline)
            else:
                call = partial(self.service.query_many, queries, k,
                               rule=rule, weight=weight, segment=segment)
                batches = await asyncio.wait_for(
                    self._loop.run_in_executor(self._executor, call),
                    timeout=deadline)
            payload = await self._loop.run_in_executor(
                self._executor, partial(query_response, self.service,
                                        queries, batches, k, segment))
            return payload, 200
        except asyncio.TimeoutError:
            raise DeadlineExceeded("deadline exceeded") from None
        finally:
            self._admission.release()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop serving, drain the loop and release every resource."""
        if self._closed:
            return
        self._closed = True
        obs.registry().remove_collector(self._collect_serving_samples)

        async def _shutdown() -> None:
            self._server.close()
            await self._server.wait_closed()
            self._coalescer.close()

        asyncio.run_coroutine_threadsafe(_shutdown(),
                                         self._loop).result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "AsyncRankingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_frontend(service, *, host: str = "127.0.0.1", port: int = 0,
                   config: Optional[FrontendConfig] = None,
                   verbose: bool = False, **overrides) -> AsyncRankingServer:
    """Convenience constructor: build and start an async front end.

    Keyword *overrides* build a :class:`FrontendConfig` when *config* is
    not given (``serve_frontend(service, max_inflight=64)``).
    """
    if config is None:
        config = FrontendConfig(**overrides)
    elif overrides:
        raise ValidationError("pass either config or field overrides, "
                              "not both")
    return AsyncRankingServer(service, host=host, port=port, config=config,
                              verbose=verbose)
