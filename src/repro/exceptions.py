"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An input object (matrix, vector, graph, model) failed validation."""


class NotStochasticError(ValidationError):
    """A matrix expected to be row-stochastic is not."""


class NotADistributionError(ValidationError):
    """A vector expected to be a probability distribution is not."""


class DimensionMismatchError(ValidationError):
    """Two objects that must agree in shape do not."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within the iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ReducibleMatrixError(ReproError, ValueError):
    """An operation requiring an irreducible/primitive matrix received one
    that is reducible (or not primitive) and no adjustment was requested."""


class GraphStructureError(ReproError, ValueError):
    """A web graph (DocGraph / SiteGraph) violates a structural invariant."""


class SimulationError(ReproError, RuntimeError):
    """The distributed-computation simulator reached an inconsistent state."""


class ProtocolError(SimulationError):
    """A peer received a message that violates the ranking protocol."""
