"""repro — a reproduction of "Using a Layered Markov Model for Distributed
Web Ranking Computation" (Wu & Aberer, ICDCS 2005).

The package is organised as a set of substrates under a single core
contribution:

* :mod:`repro.core` — the Layered Markov Model, its four ranking approaches,
  the Partition Theorem checks, personalisation, and the multi-layer
  generalisation;
* :mod:`repro.web` — the web application of the model: DocGraph / SiteGraph,
  SiteRank, DocRank and the 5-step layered ranking pipeline;
* :mod:`repro.pagerank` — flat-ranking baselines (PageRank, HITS, BlockRank,
  accelerated variants);
* :mod:`repro.markov`, :mod:`repro.linalg` — Markov-chain and stochastic
  linear-algebra substrates;
* :mod:`repro.graphgen` — synthetic web-graph generators, including the
  campus-web generator used in place of the paper's 2003 EPFL crawl;
* :mod:`repro.distributed` — a simulated peer-to-peer deployment of the
  layered computation;
* :mod:`repro.engine` — the parallel execution engine: serial / threaded /
  process executors and the :class:`RankingPlan` task graph every compute
  layer schedules its rank work through;
* :mod:`repro.metrics`, :mod:`repro.ir`, :mod:`repro.io` — ranking-comparison
  metrics, a small IR substrate, and serialisation helpers;
* :mod:`repro.obs` — dependency-free telemetry: the process-local metrics
  registry, trace spans, Prometheus text exposition and the
  cross-process delta merge the engine uses;
* :mod:`repro.serving` — the online query-serving layer: sharded score
  store, lazy top-k engine, LRU result cache, the :class:`RankingService`
  facade and a JSON-over-HTTP endpoint;
* :mod:`repro.api` — the unified public surface: the declarative
  :class:`RankingConfig`, the pluggable method registry, and the
  :class:`Ranker` facade whose adapters drive all of the above from one
  config object.

Quickstart::

    from repro import Ranker, RankingConfig
    from repro.graphgen import generate_synthetic_web

    web = generate_synthetic_web(n_sites=10, n_documents=500)
    result = Ranker(RankingConfig(method="layered")).fit(web)
    print(result.top_k_urls(3))
"""

from .core import (
    LayeredMarkovModel,
    Phase,
    approach_1,
    approach_2,
    approach_3,
    approach_4,
    example_lmm,
    layered_ranking,
    verify_partition_theorem,
)
from .engine import (
    ProcessExecutor,
    RankingPlan,
    SerialExecutor,
    ThreadedExecutor,
    WarmStartState,
)
from .pagerank import hits, pagerank
from .serving import (
    QueryCache,
    RankingService,
    ShardedScoreStore,
    TopKEngine,
)

__version__ = "1.4.0"

from .api import (  # noqa: E402  (api imports the layers above)
    Ranker,
    RankingConfig,
    RankingResult,
    available_methods,
    register_method,
)

__all__ = [
    "Ranker",
    "RankingConfig",
    "RankingResult",
    "available_methods",
    "register_method",
    "LayeredMarkovModel",
    "Phase",
    "approach_1",
    "approach_2",
    "approach_3",
    "approach_4",
    "example_lmm",
    "layered_ranking",
    "verify_partition_theorem",
    "ProcessExecutor",
    "RankingPlan",
    "SerialExecutor",
    "ThreadedExecutor",
    "WarmStartState",
    "hits",
    "pagerank",
    "QueryCache",
    "RankingService",
    "ShardedScoreStore",
    "TopKEngine",
    "__version__",
]
