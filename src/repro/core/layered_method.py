"""The decentralized approaches (3 & 4): the Layered Method (Section 2.3.3).

The Partition Theorem (Theorem 2) says the stationary distribution of the
global matrix ``W`` factorises:

    ``π̃(I, i) = π̃_Y(I) · π^I_G(i)``

where ``π̃_Y`` is the stationary distribution of the (primitive) phase matrix
``Y`` and ``π^I_G`` is the local (PageRank) ranking of phase ``I``.  The two
factors can be computed independently — per phase and once at the phase
layer — so the global ranking needs no global matrix at all and only
``O(N_P)`` multiplications to aggregate (the paper's cost claim).

* **Approach 3** uses the *PageRank* of ``Y`` (maximal irreducibility, i.e.
  damping applied) as the phase weights ``π_Y``;
* **Approach 4 — the Layered Method** uses the *plain stationary
  distribution* ``π̃_Y`` of the primitive ``Y`` and is provably identical to
  the centralized Approach 2 (Corollary 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..exceptions import ReducibleMatrixError
from ..linalg.perron import is_primitive
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    stationary_distribution,
)
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank_from_stochastic
from .gatekeeper import GatekeeperMethod, GatekeeperVectors, gatekeeper_vectors
from .global_matrix import GlobalRankingResult
from .lmm import LayeredMarkovModel


@dataclass
class LayeredRankingResult(GlobalRankingResult):
    """A :class:`GlobalRankingResult` carrying the layered factors as well.

    Attributes
    ----------
    phase_scores:
        The phase-layer weights used (``π̃_Y`` for Approach 4, ``π_Y`` for
        Approach 3).
    local_scores:
        The per-phase local ranking vectors ``π^I_G``.
    phase_iterations:
        Power iterations spent on the phase matrix ``Y``.
    """

    phase_scores: np.ndarray = field(default_factory=lambda: np.array([]))
    local_scores: List[np.ndarray] = field(default_factory=list)
    phase_iterations: int = 0

    def score_within_phase(self, phase: int) -> np.ndarray:
        """The local ranking vector of one phase."""
        return self.local_scores[phase]


def _compose(model: LayeredMarkovModel, phase_weights: np.ndarray,
             gatekeepers: GatekeeperVectors, approach: str,
             phase_iterations: int) -> LayeredRankingResult:
    """Aggregate phase weights and local rankings into the global vector.

    This is step (3) of the Layered Method — the only step that touches all
    phases together, and it is a single pass of ``O(N_P)`` multiplications.
    """
    scores = np.concatenate([
        phase_weights[phase_idx] * gatekeepers[phase_idx]
        for phase_idx in range(model.n_phases)
    ])
    return LayeredRankingResult(
        scores=scores,
        states=model.global_states(),
        labels=model.global_state_labels(),
        approach=approach,
        iterations=0,
        local_iterations=list(gatekeepers.iterations),
        phase_scores=phase_weights,
        local_scores=list(gatekeepers.vectors),
        phase_iterations=phase_iterations,
    )


def approach_3(model: LayeredMarkovModel, damping: float = DEFAULT_DAMPING, *,
               alpha: Optional[float] = None,
               gatekeepers: Optional[GatekeeperVectors] = None,
               gatekeeper_method: GatekeeperMethod = "maximal",
               tol: float = DEFAULT_TOL,
               max_iter: int = DEFAULT_MAX_ITER) -> LayeredRankingResult:
    """Approach 3: decentralized ranking with *PageRank* phase weights.

    The phase weights are ``π_Y`` — the PageRank (maximal irreducibility with
    damping factor *damping*) of the phase matrix ``Y``.  The result is a
    probability distribution (Theorem 1) but is *not* in general equal to the
    stationary distribution of ``W``; the paper's worked example shows
    ``π(2,3) = 0.2456`` versus ``π̃(2,3) = 0.2541``.
    """
    if alpha is None:
        alpha = damping
    if gatekeepers is None:
        gatekeepers = gatekeeper_vectors(model, alpha,
                                         method=gatekeeper_method,
                                         tol=tol, max_iter=max_iter)
    phase_result = pagerank_from_stochastic(model.phase_transition, damping,
                                            tol=tol, max_iter=max_iter)
    return _compose(model, phase_result.scores, gatekeepers, "approach-3",
                    phase_result.iterations)


def approach_4(model: LayeredMarkovModel, alpha: float = DEFAULT_DAMPING, *,
               gatekeepers: Optional[GatekeeperVectors] = None,
               gatekeeper_method: GatekeeperMethod = "maximal",
               require_primitive: bool = True,
               tol: float = DEFAULT_TOL,
               max_iter: int = DEFAULT_MAX_ITER) -> LayeredRankingResult:
    """Approach 4 (the Layered Method): decentralized and equal to Approach 2.

    The phase weights are the plain stationary distribution ``π̃_Y`` of the
    primitive phase matrix ``Y``; composed with the local rankings via
    Theorem 2 this reproduces the stationary distribution of ``W`` exactly,
    without ever materialising ``W``.

    Parameters
    ----------
    alpha:
        The adjustable factor used for the local (gatekeeper) rankings.
    require_primitive:
        Enforce the theorem's hypothesis that ``Y`` is primitive.
    """
    if require_primitive and not is_primitive(model.phase_transition):
        raise ReducibleMatrixError(
            "the Layered Method requires a primitive phase transition matrix "
            "Y (Theorem 2); use approach_3, or repair Y first")
    if gatekeepers is None:
        gatekeepers = gatekeeper_vectors(model, alpha,
                                         method=gatekeeper_method,
                                         tol=tol, max_iter=max_iter)
    phase_result = stationary_distribution(model.phase_transition,
                                           start=model.phase_initial,
                                           tol=tol, max_iter=max_iter)
    return _compose(model, phase_result.vector, gatekeepers, "approach-4",
                    phase_result.iterations)


#: The paper's preferred name for Approach 4.
layered_ranking = approach_4


def all_approaches(model: LayeredMarkovModel,
                   damping: float = DEFAULT_DAMPING, *,
                   tol: float = DEFAULT_TOL,
                   max_iter: int = DEFAULT_MAX_ITER) -> dict:
    """Run all four approaches on *model* and return them keyed by name.

    Convenience used by examples and by the Figure 2 reproduction benchmark,
    which reports all four vectors side by side.
    """
    from .global_matrix import approach_1, approach_2

    gatekeepers = gatekeeper_vectors(model, damping, tol=tol,
                                     max_iter=max_iter)
    return {
        "approach-1": approach_1(model, damping, tol=tol, max_iter=max_iter),
        "approach-2": approach_2(model, damping, tol=tol, max_iter=max_iter),
        "approach-3": approach_3(model, damping, gatekeepers=gatekeepers,
                                 tol=tol, max_iter=max_iter),
        "approach-4": approach_4(model, damping, gatekeepers=gatekeepers,
                                 tol=tol, max_iter=max_iter),
    }
