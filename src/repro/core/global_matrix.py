"""The global transition matrix ``W`` and the centralized approaches (1 & 2).

Under layer-decomposability (Definition 3) the transition probability between
two global system states is

    ``w_(I,i)(J,j) = y_IJ · u^J_Gj``                      (Equation 3)

independent of the source sub-state ``i`` — so all rows of ``W`` belonging to
the same source phase are identical.  Lemma 1 shows ``W`` is row-stochastic
and Lemma 2 that it is primitive whenever ``Y`` is primitive and the
gatekeeper values are positive.

Two *centralized* ranking approaches operate on ``W``:

* **Approach 1** — apply the full PageRank treatment (maximal irreducibility
  with damping ``f``, then the power method) to ``W``;
* **Approach 2** — exploit the primitivity of ``W`` and compute its
  stationary distribution directly.

Both are "centralized" because the full ``N_P x N_P`` matrix ``W`` must be
materialised; their decentralised counterparts live in
:mod:`repro.core.layered_method`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

import numpy as np

from ..exceptions import ReducibleMatrixError, ValidationError
from ..linalg.perron import is_primitive
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    stationary_distribution,
)
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank_from_stochastic
from .gatekeeper import GatekeeperMethod, GatekeeperVectors, gatekeeper_vectors
from .lmm import GlobalState, LayeredMarkovModel


@dataclass
class GlobalRankingResult:
    """A ranking over the global system states of an LMM.

    Attributes
    ----------
    scores:
        Probability distribution over global states in canonical order.
    states:
        The ``(phase index, sub-state index)`` pair of every entry.
    labels:
        Human-readable ``(phase name, sub-state label)`` pairs.
    approach:
        Which of the paper's four approaches produced this ranking.
    iterations:
        Power iterations spent on the *global* matrix (0 for the
        decentralized approaches, which never build it).
    local_iterations:
        Power iterations spent inside phases (per-phase list).
    """

    scores: np.ndarray
    states: List[GlobalState]
    labels: List[Tuple[Hashable, Hashable]]
    approach: str
    iterations: int = 0
    local_iterations: List[int] = field(default_factory=list)

    def score_of(self, phase: int, sub_state: int) -> float:
        """Score of the global state ``(phase, sub_state)`` (0-based indices)."""
        for idx, state in enumerate(self.states):
            if state == (phase, sub_state):
                return float(self.scores[idx])
        raise ValidationError(f"unknown global state ({phase}, {sub_state})")

    def ranking(self) -> np.ndarray:
        """Indices of global states sorted by descending score."""
        return np.lexsort((np.arange(self.scores.size), -self.scores))

    def rank_positions(self) -> np.ndarray:
        """1-based rank position of every global state (1 = highest score).

        This is the right-hand column printed next to each vector in the
        paper's Figure 2.
        """
        order = self.ranking()
        positions = np.empty(self.scores.size, dtype=int)
        positions[order] = np.arange(1, self.scores.size + 1)
        return positions

    def top_k(self, k: int) -> List[Tuple[Hashable, Hashable]]:
        """Labels of the ``k`` best global states, best first."""
        return [self.labels[int(i)] for i in self.ranking()[:k]]


def build_global_matrix(model: LayeredMarkovModel,
                        alpha: float = DEFAULT_DAMPING, *,
                        gatekeepers: Optional[GatekeeperVectors] = None,
                        gatekeeper_method: GatekeeperMethod = "maximal",
                        tol: float = DEFAULT_TOL,
                        max_iter: int = DEFAULT_MAX_ITER,
                        ) -> Tuple[np.ndarray, GatekeeperVectors]:
    """Materialise the global transition matrix ``W`` (Equation 3).

    Returns the dense ``N_P x N_P`` matrix together with the gatekeeper
    vectors used to build it (so callers can reuse them without recomputing
    the local rankings).
    """
    if gatekeepers is None:
        gatekeepers = gatekeeper_vectors(model, alpha,
                                         method=gatekeeper_method,
                                         tol=tol, max_iter=max_iter)
    if len(gatekeepers) != model.n_phases:
        raise ValidationError(
            "gatekeeper vectors do not match the model's phases")
    counts = model.sub_state_counts
    for phase_idx, vector in enumerate(gatekeepers.vectors):
        if vector.size != counts[phase_idx]:
            raise ValidationError(
                f"gatekeeper vector of phase {phase_idx} has length "
                f"{vector.size}, expected {counts[phase_idx]}")

    n_global = model.n_global_states
    phase_of_state = np.concatenate([
        np.full(count, phase_idx, dtype=int)
        for phase_idx, count in enumerate(counts)
    ])
    # Row pattern for a source phase I: concatenate y_IJ * pi^J_G over J.
    y = np.asarray(model.phase_transition, dtype=float)
    row_per_phase = np.vstack([
        np.concatenate([y[source_phase, target_phase]
                        * gatekeepers[target_phase]
                        for target_phase in range(model.n_phases)])
        for source_phase in range(model.n_phases)
    ])
    w = row_per_phase[phase_of_state, :]
    assert w.shape == (n_global, n_global)
    return w, gatekeepers


def approach_1(model: LayeredMarkovModel, damping: float = DEFAULT_DAMPING, *,
               alpha: Optional[float] = None,
               gatekeeper_method: GatekeeperMethod = "maximal",
               tol: float = DEFAULT_TOL,
               max_iter: int = DEFAULT_MAX_ITER) -> GlobalRankingResult:
    """Approach 1: standard PageRank applied to the global matrix ``W``.

    ``W`` is built (centralized step), the maximal-irreducibility adjustment
    with damping factor *damping* is applied and the power method produces
    the vector the paper calls ``π_W``.

    Parameters
    ----------
    damping:
        Damping factor ``f`` of the global PageRank run on ``W``.
    alpha:
        Adjustable factor used for the per-phase gatekeeper vectors
        (defaults to *damping*).
    """
    if alpha is None:
        alpha = damping
    w, gatekeepers = build_global_matrix(model, alpha,
                                         gatekeeper_method=gatekeeper_method,
                                         tol=tol, max_iter=max_iter)
    result = pagerank_from_stochastic(w, damping, tol=tol, max_iter=max_iter)
    return GlobalRankingResult(
        scores=result.scores,
        states=model.global_states(),
        labels=model.global_state_labels(),
        approach="approach-1",
        iterations=result.iterations,
        local_iterations=list(gatekeepers.iterations),
    )


def approach_2(model: LayeredMarkovModel, alpha: float = DEFAULT_DAMPING, *,
               gatekeeper_method: GatekeeperMethod = "maximal",
               require_primitive: bool = True,
               tol: float = DEFAULT_TOL,
               max_iter: int = DEFAULT_MAX_ITER) -> GlobalRankingResult:
    """Approach 2: direct stationary distribution of the primitive ``W``.

    When the phase matrix ``Y`` is primitive, ``W`` is primitive (Lemma 2)
    and its stationary distribution — the paper's ``π̃_W`` — exists without
    any further adjustment.

    Parameters
    ----------
    require_primitive:
        When ``True`` (default) a :class:`ReducibleMatrixError` is raised if
        ``Y`` is not primitive, mirroring the theorem's hypothesis; when
        ``False`` the stationary distribution is attempted anyway (it may
        then depend on the starting vector).
    """
    if require_primitive and not is_primitive(model.phase_transition):
        raise ReducibleMatrixError(
            "Approach 2 requires a primitive phase transition matrix Y; "
            "either repair Y (e.g. apply maximal irreducibility) or use "
            "Approach 1")
    w, gatekeepers = build_global_matrix(model, alpha,
                                         gatekeeper_method=gatekeeper_method,
                                         tol=tol, max_iter=max_iter)
    result = stationary_distribution(w, tol=tol, max_iter=max_iter)
    return GlobalRankingResult(
        scores=result.vector,
        states=model.global_states(),
        labels=model.global_state_labels(),
        approach="approach-2",
        iterations=result.iterations,
        local_iterations=list(gatekeepers.iterations),
    )
