"""Multi-layer (more than two layers) extension of the LMM.

Section 2.2 of the paper notes that "the analysis can be extended to
multi-layer models using similar reasoning".  This module implements that
extension recursively: a :class:`HierarchicalMarkovModel` node is either a
*leaf* (a plain transition matrix over atomic states) or an *internal* node
with a transition matrix over its children, each of which is again a
hierarchical model.

The layered ranking generalises naturally: the weight of an atomic state is
the product, along its root-to-leaf path, of each ancestor's layer weight
times the leaf's local ranking value.  With two levels this reduces exactly
to Approach 4 — a property the tests check — so the extension is a strict
generalisation of the paper's construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import ensure_row_stochastic
from ..exceptions import DimensionMismatchError, ValidationError
from ..linalg.perron import is_primitive
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    stationary_distribution,
)
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank_from_stochastic
from .lmm import LayeredMarkovModel, Phase


@dataclass
class HierarchicalLeaf:
    """A leaf layer: a plain Markovian matrix over atomic sub-states."""

    name: Hashable
    transition: np.ndarray
    state_names: Optional[Sequence[Hashable]] = None

    def __post_init__(self) -> None:
        ensure_row_stochastic(self.transition, name=f"leaf {self.name!r}")
        if self.state_names is not None:
            names = list(self.state_names)
            if len(names) != self.transition.shape[0]:
                raise DimensionMismatchError(
                    f"leaf {self.name!r}: {len(names)} names for "
                    f"{self.transition.shape[0]} states")
            self.state_names = names

    @property
    def n_states(self) -> int:
        """Number of atomic states in this leaf."""
        return self.transition.shape[0]

    def n_atomic_states(self) -> int:
        """Total atomic states (same as :attr:`n_states` for a leaf)."""
        return self.n_states


@dataclass
class HierarchicalNode:
    """An internal layer: a transition matrix over child models."""

    name: Hashable
    children: List[Union["HierarchicalNode", HierarchicalLeaf]]
    transition: np.ndarray

    def __post_init__(self) -> None:
        if not self.children:
            raise ValidationError(
                f"node {self.name!r} must have at least one child")
        ensure_row_stochastic(self.transition, name=f"node {self.name!r}")
        if self.transition.shape[0] != len(self.children):
            raise DimensionMismatchError(
                f"node {self.name!r}: transition is "
                f"{self.transition.shape[0]}x{self.transition.shape[1]} but "
                f"there are {len(self.children)} children")

    def n_atomic_states(self) -> int:
        """Total number of atomic (leaf-level) states under this node."""
        return sum(child.n_atomic_states() for child in self.children)

    @property
    def depth(self) -> int:
        """Number of layers below (and including) this node."""
        child_depths = [
            child.depth if isinstance(child, HierarchicalNode) else 1
            for child in self.children
        ]
        return 1 + max(child_depths)


HierarchicalMarkovModel = Union[HierarchicalNode, HierarchicalLeaf]


@dataclass
class HierarchicalRankingResult:
    """Ranking over the atomic states of a hierarchical model.

    Attributes
    ----------
    scores:
        Probability distribution over atomic states, depth-first order.
    paths:
        For each atomic state, the tuple of layer names from the root's
        child down to the leaf state label.
    """

    scores: np.ndarray
    paths: List[Tuple[Hashable, ...]]

    def top_k(self, k: int) -> List[Tuple[Hashable, ...]]:
        """Paths of the ``k`` best atomic states, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [self.paths[int(i)] for i in order[:k]]


def _layer_weights(transition: np.ndarray, *, alpha: float,
                   use_stationary: bool, tol: float,
                   max_iter: int) -> np.ndarray:
    """Weights of one layer: stationary distribution if primitive, else PageRank."""
    if use_stationary and is_primitive(transition):
        return stationary_distribution(transition, tol=tol,
                                       max_iter=max_iter).vector
    return pagerank_from_stochastic(transition, alpha, tol=tol,
                                    max_iter=max_iter).scores


def hierarchical_ranking(model: HierarchicalMarkovModel,
                         alpha: float = DEFAULT_DAMPING, *,
                         use_stationary: bool = True,
                         tol: float = DEFAULT_TOL,
                         max_iter: int = DEFAULT_MAX_ITER,
                         ) -> HierarchicalRankingResult:
    """Rank all atomic states of a hierarchical model recursively.

    Parameters
    ----------
    use_stationary:
        When ``True`` (default) internal layers whose transition matrix is
        primitive use their plain stationary distribution (the Approach 4
        flavour); non-primitive layers and all leaves fall back to PageRank
        with factor *alpha* (which always exists).
    """
    if isinstance(model, HierarchicalLeaf):
        local = pagerank_from_stochastic(model.transition, alpha, tol=tol,
                                         max_iter=max_iter).scores
        paths = []
        for index in range(model.n_states):
            label = (model.state_names[index] if model.state_names is not None
                     else index)
            paths.append((label,))
        return HierarchicalRankingResult(scores=local, paths=paths)

    weights = _layer_weights(model.transition, alpha=alpha,
                             use_stationary=use_stationary, tol=tol,
                             max_iter=max_iter)
    all_scores: List[np.ndarray] = []
    all_paths: List[Tuple[Hashable, ...]] = []
    for child_index, child in enumerate(model.children):
        child_result = hierarchical_ranking(child, alpha,
                                            use_stationary=use_stationary,
                                            tol=tol, max_iter=max_iter)
        all_scores.append(weights[child_index] * child_result.scores)
        child_name = child.name
        all_paths.extend((child_name,) + path for path in child_result.paths)
    return HierarchicalRankingResult(scores=np.concatenate(all_scores),
                                     paths=all_paths)


def lmm_to_hierarchical(model: LayeredMarkovModel) -> HierarchicalNode:
    """Convert a two-layer :class:`LayeredMarkovModel` into the recursive form.

    Used by tests to confirm the multi-layer generalisation reduces to
    Approach 4 on two-layer inputs.
    """
    leaves = [
        HierarchicalLeaf(name=phase.name, transition=phase.transition,
                         state_names=phase.sub_state_names)
        for phase in model.phases
    ]
    return HierarchicalNode(name="root", children=leaves,
                            transition=np.asarray(model.phase_transition,
                                                  dtype=float))


def build_three_layer_model(group_transition: np.ndarray,
                            site_transitions: Sequence[np.ndarray],
                            page_transitions: Sequence[Sequence[np.ndarray]],
                            *, group_names: Optional[Sequence[Hashable]] = None,
                            ) -> HierarchicalNode:
    """Assemble a 3-layer model: groups of sites of pages.

    Parameters
    ----------
    group_transition:
        Transition matrix over the top-level groups (e.g. Internet domains).
    site_transitions:
        One transition matrix per group, over the sites of that group.
    page_transitions:
        ``page_transitions[g][s]`` is the page-level matrix of site ``s`` of
        group ``g``.
    """
    if len(site_transitions) != group_transition.shape[0]:
        raise DimensionMismatchError(
            "need one site-level matrix per group")
    if len(page_transitions) != len(site_transitions):
        raise DimensionMismatchError(
            "need one list of page-level matrices per group")
    groups: List[HierarchicalNode] = []
    for group_index, site_matrix in enumerate(site_transitions):
        pages = page_transitions[group_index]
        if len(pages) != site_matrix.shape[0]:
            raise DimensionMismatchError(
                f"group {group_index}: need one page-level matrix per site")
        leaves = [
            HierarchicalLeaf(name=f"g{group_index}-site{site_index}",
                             transition=page_matrix)
            for site_index, page_matrix in enumerate(pages)
        ]
        name = (group_names[group_index] if group_names is not None
                else f"group-{group_index}")
        groups.append(HierarchicalNode(name=name, children=leaves,
                                       transition=np.asarray(site_matrix,
                                                             dtype=float)))
    return HierarchicalNode(name="web", children=groups,
                            transition=np.asarray(group_transition,
                                                  dtype=float))
