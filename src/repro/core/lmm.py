"""The Layered Markov Model (Definition 1 of the paper).

A two-layer LMM is the 6-tuple ``(P, Y, vY, O, U, vU)``:

* ``P`` — the set of phases (the upper layer; web *sites* in the IR
  application), with transition matrix ``Y`` and initial distribution ``vY``;
* ``O`` — per-phase sets of sub-states (web *documents*), with per-phase
  transition matrices ``U = {U^1, …, U^NP}`` and initial distributions
  ``vU = {v^1_U, …}``.

This module defines :class:`Phase` and :class:`LayeredMarkovModel` — plain
data containers with validation — plus :func:`example_lmm`, which constructs
the exact 3-phase / 12-state worked example of Section 2.3 whose numbers the
reproduction benchmarks check against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    ensure_distribution,
    ensure_row_stochastic,
)
from ..exceptions import DimensionMismatchError, ValidationError
from ..linalg.stochastic import uniform_distribution

#: A global system state is a (phase index, sub-state index) pair, both
#: 0-based internally (the paper uses 1-based labels such as "(2,3)").
GlobalState = Tuple[int, int]


@dataclass
class Phase:
    """One phase (super-state) of a Layered Markov Model.

    Parameters
    ----------
    name:
        Hashable phase label (e.g. a site hostname).
    transition:
        The ``n_I x n_I`` row-stochastic sub-state transition matrix ``U^I``.
        The paper only requires it to be Markovian — it may be reducible.
    initial:
        The initial sub-state distribution ``v^I_U`` (uniform when omitted);
        this vector is also used as the gatekeeper's outgoing preference in
        the minimal-irreducibility construction.
    sub_state_names:
        Optional labels for the sub-states (e.g. document URLs).
    """

    name: Hashable
    transition: np.ndarray
    initial: Optional[np.ndarray] = None
    sub_state_names: Optional[Sequence[Hashable]] = None

    def __post_init__(self) -> None:
        ensure_row_stochastic(self.transition, name=f"phase {self.name!r} transition")
        n = self.transition.shape[0]
        if self.initial is None:
            self.initial = uniform_distribution(n)
        else:
            self.initial = ensure_distribution(
                self.initial, name=f"phase {self.name!r} initial distribution")
            if self.initial.size != n:
                raise DimensionMismatchError(
                    f"phase {self.name!r}: initial distribution has length "
                    f"{self.initial.size}, expected {n}")
        if self.sub_state_names is not None:
            names = list(self.sub_state_names)
            if len(names) != n:
                raise DimensionMismatchError(
                    f"phase {self.name!r}: got {len(names)} sub-state names "
                    f"for {n} sub-states")
            if len(set(names)) != n:
                raise ValidationError(
                    f"phase {self.name!r}: sub-state names must be unique")
            self.sub_state_names = names

    @property
    def n_sub_states(self) -> int:
        """Number of (non-gatekeeper) sub-states ``n_I``."""
        return self.transition.shape[0]

    def sub_state_label(self, index: int) -> Hashable:
        """Label of sub-state ``index`` (the index itself when unnamed)."""
        if self.sub_state_names is not None:
            return self.sub_state_names[index]
        return index


@dataclass
class LayeredMarkovModel:
    """A two-layer Layered Markov Model (Definition 1).

    Parameters
    ----------
    phases:
        The ordered list of :class:`Phase` objects (``P`` and, through them,
        ``O``, ``U`` and ``vU``).
    phase_transition:
        The ``NP x NP`` row-stochastic phase transition matrix ``Y``.
    phase_initial:
        The initial phase distribution ``vY`` (uniform when omitted).
    """

    phases: List[Phase]
    phase_transition: np.ndarray
    phase_initial: Optional[np.ndarray] = None
    _phase_index: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValidationError("an LMM needs at least one phase")
        ensure_row_stochastic(self.phase_transition, name="phase transition Y")
        if self.phase_transition.shape[0] != len(self.phases):
            raise DimensionMismatchError(
                f"Y is {self.phase_transition.shape[0]}x"
                f"{self.phase_transition.shape[1]} but there are "
                f"{len(self.phases)} phases")
        if self.phase_initial is None:
            self.phase_initial = uniform_distribution(len(self.phases))
        else:
            self.phase_initial = ensure_distribution(
                self.phase_initial, name="phase initial distribution vY")
            if self.phase_initial.size != len(self.phases):
                raise DimensionMismatchError(
                    "vY length does not match the number of phases")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValidationError("phase names must be unique")
        self._phase_index = {name: i for i, name in enumerate(names)}

    # ------------------------------------------------------------------ #
    # Sizes and labelling
    # ------------------------------------------------------------------ #
    @property
    def n_phases(self) -> int:
        """Number of phases ``NP``."""
        return len(self.phases)

    @property
    def sub_state_counts(self) -> List[int]:
        """The list ``[n_1, …, n_NP]``."""
        return [phase.n_sub_states for phase in self.phases]

    @property
    def n_global_states(self) -> int:
        """Total number of global system states ``N_P = Σ_I n_I``."""
        return sum(self.sub_state_counts)

    def phase_index(self, name: Hashable) -> int:
        """Index of the phase with the given name."""
        try:
            return self._phase_index[name]
        except KeyError:
            raise ValidationError(f"unknown phase {name!r}") from None

    def global_states(self) -> List[GlobalState]:
        """All global system states ``(I, i)`` in canonical (row-major) order.

        The canonical order is the one used throughout the paper's example:
        phase 1's sub-states first, then phase 2's, and so on.
        """
        states: List[GlobalState] = []
        for phase_idx, phase in enumerate(self.phases):
            for sub_idx in range(phase.n_sub_states):
                states.append((phase_idx, sub_idx))
        return states

    def global_state_labels(self) -> List[Tuple[Hashable, Hashable]]:
        """Human-readable ``(phase name, sub-state label)`` pairs, canonical order."""
        labels: List[Tuple[Hashable, Hashable]] = []
        for phase in self.phases:
            for sub_idx in range(phase.n_sub_states):
                labels.append((phase.name, phase.sub_state_label(sub_idx)))
        return labels

    def global_index(self, phase: int, sub_state: int) -> int:
        """Flat index of global state ``(phase, sub_state)`` in canonical order."""
        if not 0 <= phase < self.n_phases:
            raise ValidationError(f"phase index {phase} out of range")
        if not 0 <= sub_state < self.phases[phase].n_sub_states:
            raise ValidationError(
                f"sub-state index {sub_state} out of range for phase {phase}")
        return sum(self.sub_state_counts[:phase]) + sub_state

    def state_of_global_index(self, index: int) -> GlobalState:
        """Inverse of :meth:`global_index`."""
        if not 0 <= index < self.n_global_states:
            raise ValidationError(f"global index {index} out of range")
        for phase_idx, count in enumerate(self.sub_state_counts):
            if index < count:
                return (phase_idx, index)
            index -= count
        raise AssertionError("unreachable")  # pragma: no cover

    def phase_slices(self) -> List[slice]:
        """Slice of the canonical global ordering occupied by each phase."""
        slices: List[slice] = []
        offset = 0
        for count in self.sub_state_counts:
            slices.append(slice(offset, offset + count))
            offset += count
        return slices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LayeredMarkovModel(n_phases={self.n_phases}, "
                f"n_global_states={self.n_global_states})")


def example_lmm() -> LayeredMarkovModel:
    """The 3-phase, 12-state worked example of Section 2.3.

    Phase I has 4 sub-states (matrix ``U1``), phase II has 3 (``U2``) and
    phase III has 5 (``U3``); the phase transition matrix is ``Y``.  The
    matrices are copied verbatim from the paper, so the reproduction
    benchmarks can compare the computed vectors against the printed ones
    (π1G, π2G, π3G, πY, π̃Y, πW, π̃W).
    """
    phase_transition = np.array([
        [0.1, 0.3, 0.6],
        [0.2, 0.4, 0.4],
        [0.3, 0.5, 0.2],
    ])
    u1 = np.array([
        [0.3, 0.3, 0.2, 0.2],
        [0.5, 0.1, 0.1, 0.3],
        [0.1, 0.2, 0.6, 0.1],
        [0.4, 0.3, 0.1, 0.2],
    ])
    u2 = np.array([
        [0.2, 0.1, 0.7],
        [0.1, 0.8, 0.1],
        [0.05, 0.05, 0.9],
    ])
    u3 = np.array([
        [0.6, 0.02, 0.2, 0.1, 0.08],
        [0.05, 0.2, 0.5, 0.05, 0.2],
        [0.4, 0.1, 0.2, 0.1, 0.2],
        [0.7, 0.1, 0.05, 0.1, 0.05],
        [0.5, 0.2, 0.1, 0.1, 0.1],
    ])
    phases = [
        Phase(name="I", transition=u1),
        Phase(name="II", transition=u2),
        Phase(name="III", transition=u3),
    ]
    return LayeredMarkovModel(phases=phases, phase_transition=phase_transition)


def random_lmm(n_phases: int, sub_state_counts: Optional[Sequence[int]] = None,
               *, rng: Optional[np.random.Generator] = None,
               max_sub_states: int = 8,
               primitive_phase_matrix: bool = True) -> LayeredMarkovModel:
    """Sample a random LMM — the workhorse of the property-based tests.

    Parameters
    ----------
    n_phases:
        Number of phases.
    sub_state_counts:
        Optional explicit per-phase sub-state counts; random in
        ``[1, max_sub_states]`` when omitted.
    primitive_phase_matrix:
        When ``True`` the sampled ``Y`` is strictly positive and hence
        primitive (the hypothesis of Theorem 2).
    """
    from ..linalg.stochastic import random_stochastic_matrix

    if rng is None:
        rng = np.random.default_rng()
    if n_phases < 1:
        raise ValidationError("n_phases must be at least 1")
    if sub_state_counts is None:
        sub_state_counts = [int(rng.integers(1, max_sub_states + 1))
                            for _ in range(n_phases)]
    else:
        sub_state_counts = list(sub_state_counts)
        if len(sub_state_counts) != n_phases:
            raise DimensionMismatchError(
                "sub_state_counts length must equal n_phases")

    phase_transition = random_stochastic_matrix(
        n_phases, rng=rng,
        ensure_positive_diagonal=primitive_phase_matrix)
    if primitive_phase_matrix:
        # Make Y strictly positive: mix with the uniform matrix.
        phase_transition = 0.9 * phase_transition + 0.1 / n_phases
    phases = [
        Phase(name=f"phase-{index}",
              transition=random_stochastic_matrix(count, rng=rng))
        for index, count in enumerate(sub_state_counts)
    ]
    return LayeredMarkovModel(phases=phases, phase_transition=phase_transition)
