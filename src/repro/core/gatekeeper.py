"""Gatekeeper sub-states and their transition probabilities (Section 2.3.2).

The layer-decomposability definition (Definition 3) requires every
inter-phase transition to enter the destination phase through a virtual
*gatekeeper* sub-state.  The probabilities ``u^J_Gj`` with which the
gatekeeper hands the surfer over to the real sub-states of phase ``J`` are
obtained by ranking the phase's internal transition matrix:

* the paper's construction appends the gatekeeper row/column to ``U^J``
  using the **minimal irreducibility** augmentation with parameter ``α``,
  runs the power method, drops the gatekeeper entry and renormalises;
* by the Langville–Meyer equivalence this produces the same vector as
  applying ordinary PageRank (maximal irreducibility with damping ``α``)
  directly to ``U^J`` — both code paths are provided and the tests verify
  they agree.

The resulting per-phase vector ``π^J_G`` is positive, which is what makes the
global matrix ``W`` primitive whenever ``Y`` is (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from ..exceptions import ValidationError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import (
    DEFAULT_DAMPING,
    minimal_irreducibility,
    minimal_irreducibility_matrix,
)
from ..pagerank.pagerank import pagerank_from_stochastic
from .lmm import LayeredMarkovModel, Phase

GatekeeperMethod = Literal["minimal", "maximal"]


@dataclass
class GatekeeperVectors:
    """The gatekeeper transition vectors of every phase of an LMM.

    Attributes
    ----------
    vectors:
        ``vectors[I]`` is the vector ``π^I_G`` of gatekeeper transition
        probabilities ``u^I_Gj`` over the sub-states of phase ``I``.
    method:
        Which irreducibility construction produced the vectors.
    alpha:
        The adjustable parameter (damping factor) used.
    iterations:
        Per-phase power-iteration counts — the local work each "site" had to
        perform, reported by the distributed-cost benchmarks.
    """

    vectors: List[np.ndarray]
    method: GatekeeperMethod
    alpha: float
    iterations: List[int]

    def __getitem__(self, phase_index: int) -> np.ndarray:
        return self.vectors[phase_index]

    def __len__(self) -> int:
        return len(self.vectors)

    def concatenated(self) -> np.ndarray:
        """All vectors concatenated in canonical global-state order."""
        return np.concatenate(self.vectors)


def augment_with_gatekeeper(phase: Phase, alpha: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the ``(n_I + 1) x (n_I + 1)`` gatekeeper-augmented matrix ``Û^I``.

    The gatekeeper occupies the last row/column: every real sub-state moves
    to it with probability ``1 - α`` and it redistributes according to the
    phase's initial distribution ``v^I_U`` (Definition 2 plus the
    construction of Section 2.3.2).
    """
    return minimal_irreducibility_matrix(phase.transition, alpha,
                                         phase.initial)


def gatekeeper_vector(phase: Phase, alpha: float = DEFAULT_DAMPING, *,
                      method: GatekeeperMethod = "maximal",
                      tol: float = DEFAULT_TOL,
                      max_iter: int = DEFAULT_MAX_ITER,
                      ) -> tuple[np.ndarray, int]:
    """Compute the gatekeeper transition vector ``π^I_G`` of a single phase.

    Returns the vector and the number of power iterations used.

    Parameters
    ----------
    phase:
        The phase whose documents are being ranked locally.
    alpha:
        The adjustable factor of Section 2.3.2 (a damping factor).
    method:
        ``"maximal"`` (default) applies ordinary PageRank to ``U^I``;
        ``"minimal"`` builds the augmented matrix ``Û^I``, ranks it and drops
        the gatekeeper entry.  The two give the same vector (up to numerical
        tolerance); the maximal path is the cheaper default, the minimal path
        is the construction as literally described in the paper.
    """
    if method == "maximal":
        result = pagerank_from_stochastic(phase.transition, alpha,
                                          phase.initial, tol=tol,
                                          max_iter=max_iter)
        return result.scores, result.iterations
    if method == "minimal":
        result = minimal_irreducibility(phase.transition, alpha,
                                        phase.initial, tol=tol,
                                        max_iter=max_iter)
        return result.stationary, result.iterations
    raise ValidationError(f"unknown gatekeeper method {method!r}")


def gatekeeper_vectors(model: LayeredMarkovModel,
                       alpha: float = DEFAULT_DAMPING, *,
                       method: GatekeeperMethod = "maximal",
                       tol: float = DEFAULT_TOL,
                       max_iter: int = DEFAULT_MAX_ITER) -> GatekeeperVectors:
    """Compute the gatekeeper vectors of every phase of *model*.

    In the distributed deployment each of these computations runs on the peer
    owning the corresponding web site; here they are simply computed in a
    loop.  The distributed simulation (:mod:`repro.distributed`) reuses this
    function per peer.
    """
    vectors: List[np.ndarray] = []
    iterations: List[int] = []
    for phase in model.phases:
        vector, n_iter = gatekeeper_vector(phase, alpha, method=method,
                                           tol=tol, max_iter=max_iter)
        vectors.append(vector)
        iterations.append(n_iter)
    return GatekeeperVectors(vectors=vectors, method=method, alpha=alpha,
                             iterations=iterations)
