"""The paper's primary contribution: the Layered Markov Model and its rankings.

Public surface:

* :class:`LayeredMarkovModel`, :class:`Phase` — the model (Definition 1);
* :func:`example_lmm` — the paper's 12-state worked example;
* :func:`approach_1` … :func:`approach_4` / :func:`layered_ranking` — the
  four ranking approaches of Section 2.3;
* :func:`verify_partition_theorem` — numerical checks for Lemma 1/2 and
  Theorem 1/2;
* :class:`PersonalizationProfile`, :func:`personalized_layered_ranking` —
  personalisation at either layer;
* :mod:`repro.core.multilayer` — the >2-layer generalisation.
"""

from .gatekeeper import (
    GatekeeperVectors,
    augment_with_gatekeeper,
    gatekeeper_vector,
    gatekeeper_vectors,
)
from .global_matrix import (
    GlobalRankingResult,
    approach_1,
    approach_2,
    build_global_matrix,
)
from .layered_method import (
    LayeredRankingResult,
    all_approaches,
    approach_3,
    approach_4,
    layered_ranking,
)
from .lmm import GlobalState, LayeredMarkovModel, Phase, example_lmm, random_lmm
from .multilayer import (
    HierarchicalLeaf,
    HierarchicalNode,
    HierarchicalRankingResult,
    build_three_layer_model,
    hierarchical_ranking,
    lmm_to_hierarchical,
)
from .partition_theorem import (
    PartitionTheoremReport,
    check_lemma_1,
    check_lemma_2,
    check_theorem_1,
    verify_partition_theorem,
)
from .schemes import (
    HITSLocalScheme,
    InDegreeLocalScheme,
    InDegreeSiteScheme,
    LocalRankScheme,
    PageRankLocalScheme,
    PageRankSiteScheme,
    SiteRankScheme,
    SizeSiteScheme,
    UniformLocalScheme,
    UniformSiteScheme,
    default_scheme_catalog,
    layered_docrank_with_schemes,
)
from .personalization import (
    PersonalizationProfile,
    personalized_gatekeeper_vectors,
    personalized_layered_ranking,
    personalized_phase_weights,
    profile_preference_columns,
)

__all__ = [
    "GatekeeperVectors",
    "augment_with_gatekeeper",
    "gatekeeper_vector",
    "gatekeeper_vectors",
    "GlobalRankingResult",
    "approach_1",
    "approach_2",
    "build_global_matrix",
    "LayeredRankingResult",
    "all_approaches",
    "approach_3",
    "approach_4",
    "layered_ranking",
    "GlobalState",
    "LayeredMarkovModel",
    "Phase",
    "example_lmm",
    "random_lmm",
    "HierarchicalLeaf",
    "HierarchicalNode",
    "HierarchicalRankingResult",
    "build_three_layer_model",
    "hierarchical_ranking",
    "lmm_to_hierarchical",
    "PartitionTheoremReport",
    "check_lemma_1",
    "check_lemma_2",
    "check_theorem_1",
    "verify_partition_theorem",
    "HITSLocalScheme",
    "InDegreeLocalScheme",
    "InDegreeSiteScheme",
    "LocalRankScheme",
    "PageRankLocalScheme",
    "PageRankSiteScheme",
    "SiteRankScheme",
    "SizeSiteScheme",
    "UniformLocalScheme",
    "UniformSiteScheme",
    "default_scheme_catalog",
    "layered_docrank_with_schemes",
    "PersonalizationProfile",
    "personalized_gatekeeper_vectors",
    "personalized_layered_ranking",
    "personalized_phase_weights",
    "profile_preference_columns",
]
