"""Personalised layered rankings (Sections 1.3, 2.1 and 3.2 of the paper).

The LMM admits personalisation *at both layers*:

* at the **document layer**, each phase's local ranking can be computed with
  a personalised preference vector instead of the uniform one — this changes
  the gatekeeper vector ``π^I_G`` of that phase only;
* at the **site layer**, the phase weights can be computed with a
  personalised preference over phases (Approach 3 flavour) or the phase
  matrix itself can encode the user's site preferences.

:class:`PersonalizationProfile` carries the user's preferences;
:func:`personalized_layered_ranking` runs the Layered Method with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence

import numpy as np

from .._validation import normalize_distribution
from ..exceptions import ValidationError
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    stationary_distribution,
)
from ..markov.irreducibility import DEFAULT_DAMPING, maximal_irreducibility
from ..pagerank.pagerank import pagerank_from_stochastic
from .gatekeeper import GatekeeperVectors
from .layered_method import LayeredRankingResult, _compose
from .lmm import LayeredMarkovModel


@dataclass
class PersonalizationProfile:
    """A user's ranking preferences for a layered model.

    Attributes
    ----------
    phase_preferences:
        Mapping from phase name to a non-negative preference weight.  Phases
        not mentioned receive the *background* weight.  Empty mapping means
        "no site-layer personalisation".
    sub_state_preferences:
        Mapping from phase name to a per-sub-state weight vector (length
        ``n_I``).  Phases not mentioned use the phase's own initial
        distribution.  Empty mapping means "no document-layer
        personalisation".
    background:
        Weight given to unmentioned phases in the site-layer preference.
    """

    phase_preferences: Dict[Hashable, float] = field(default_factory=dict)
    sub_state_preferences: Dict[Hashable, np.ndarray] = field(
        default_factory=dict)
    background: float = 0.0

    def phase_preference_vector(self, model: LayeredMarkovModel) -> Optional[np.ndarray]:
        """Build the site-layer preference distribution (or ``None`` if unused)."""
        if not self.phase_preferences:
            return None
        vector = np.full(model.n_phases, float(self.background))
        for name, weight in self.phase_preferences.items():
            if weight < 0:
                raise ValidationError("phase preferences must be non-negative")
            vector[model.phase_index(name)] += float(weight)
        return normalize_distribution(vector, name="phase preference")

    def sub_state_preference_vector(self, model: LayeredMarkovModel,
                                    phase_index: int) -> Optional[np.ndarray]:
        """Preference vector for one phase's documents (or ``None`` if unused)."""
        phase = model.phases[phase_index]
        if phase.name not in self.sub_state_preferences:
            return None
        vector = np.asarray(self.sub_state_preferences[phase.name],
                            dtype=float)
        if vector.size != phase.n_sub_states:
            raise ValidationError(
                f"preference for phase {phase.name!r} has length "
                f"{vector.size}, expected {phase.n_sub_states}")
        if vector.min() < 0:
            raise ValidationError("sub-state preferences must be non-negative")
        return normalize_distribution(
            vector, name=f"sub-state preference of phase {phase.name!r}")


def profile_preference_columns(model: LayeredMarkovModel,
                               profiles: "Sequence[PersonalizationProfile]",
                               ) -> np.ndarray:
    """Stack K profiles' site-layer preferences into an ``(n_phases, K)`` matrix.

    One column per profile, uniform for profiles without phase preferences —
    the shape the fused multi-vector block solver consumes, so K user
    segments share every matrix sweep of the phase-transition solve.
    """
    if not len(profiles):
        raise ValidationError("need at least one personalization profile")
    matrix = np.empty((model.n_phases, len(profiles)), dtype=float)
    for index, profile in enumerate(profiles):
        vector = profile.phase_preference_vector(model)
        if vector is None:
            vector = np.full(model.n_phases, 1.0 / model.n_phases)
        matrix[:, index] = vector
    return matrix


def personalized_gatekeeper_vectors(model: LayeredMarkovModel,
                                    profile: PersonalizationProfile,
                                    alpha: float = DEFAULT_DAMPING, *,
                                    tol: float = DEFAULT_TOL,
                                    max_iter: int = DEFAULT_MAX_ITER,
                                    ) -> GatekeeperVectors:
    """Document-layer personalisation: per-phase rankings with preference vectors.

    Each phase named in the profile is ranked with its personalised
    preference; other phases keep their default (initial-distribution)
    preference — exactly the "different personalized vectors in the function
    body of M̂(G_d^s)" of the paper's Step 3.
    """
    vectors = []
    iterations = []
    for phase_index, phase in enumerate(model.phases):
        preference = profile.sub_state_preference_vector(model, phase_index)
        if preference is None:
            preference = phase.initial
        result = pagerank_from_stochastic(phase.transition, alpha, preference,
                                          tol=tol, max_iter=max_iter)
        vectors.append(result.scores)
        iterations.append(result.iterations)
    return GatekeeperVectors(vectors=vectors, method="maximal", alpha=alpha,
                             iterations=iterations)


def personalized_phase_weights(model: LayeredMarkovModel,
                               profile: PersonalizationProfile,
                               damping: float = DEFAULT_DAMPING, *,
                               tol: float = DEFAULT_TOL,
                               max_iter: int = DEFAULT_MAX_ITER,
                               ) -> tuple[np.ndarray, int]:
    """Site-layer personalisation: phase weights with a preference over phases.

    When the profile provides phase preferences the weights are the
    personalised PageRank of ``Y`` (the preference enters through the
    maximal-irreducibility teleportation term); otherwise the plain
    stationary distribution of ``Y`` is used, matching Approach 4.
    Returns the weight vector and the iterations used.
    """
    preference = profile.phase_preference_vector(model)
    if preference is None:
        result = stationary_distribution(model.phase_transition,
                                         start=model.phase_initial,
                                         tol=tol, max_iter=max_iter)
        return result.vector, result.iterations
    adjusted = maximal_irreducibility(model.phase_transition, damping,
                                      preference)
    result = stationary_distribution(adjusted, tol=tol, max_iter=max_iter)
    return result.vector, result.iterations


def personalized_layered_ranking(model: LayeredMarkovModel,
                                 profile: PersonalizationProfile,
                                 alpha: float = DEFAULT_DAMPING, *,
                                 damping: Optional[float] = None,
                                 tol: float = DEFAULT_TOL,
                                 max_iter: int = DEFAULT_MAX_ITER,
                                 ) -> LayeredRankingResult:
    """Run the Layered Method with personalisation at either or both layers.

    Parameters
    ----------
    alpha:
        Adjustable factor for the local (document-layer) rankings.
    damping:
        Damping factor for the site-layer personalised PageRank (defaults to
        *alpha*); only used when the profile personalises the site layer.
    """
    if damping is None:
        damping = alpha
    gatekeepers = personalized_gatekeeper_vectors(model, profile, alpha,
                                                  tol=tol, max_iter=max_iter)
    weights, phase_iterations = personalized_phase_weights(
        model, profile, damping, tol=tol, max_iter=max_iter)
    return _compose(model, weights, gatekeepers, "personalized-layered",
                    phase_iterations)
