"""Pluggable ranking schemes for the two layers of the LMM.

The paper stresses that its model "provides a foundation for a whole class
of ranking methods, e.g. by replacing the PageRank algorithm by any other
methods for the computation of DocRank and/or SiteRank at different layers"
(Section 1.2).  This module makes that generality concrete: a
:class:`LocalRankScheme` produces the per-site document weights and a
:class:`SiteRankScheme` the site weights, and
:func:`layered_docrank_with_schemes` composes any pair of them through the
usual Theorem-2 multiplication.

Provided local schemes: PageRank (the paper's choice), HITS authorities,
in-degree, and uniform.  Provided site schemes: PageRank on SiteLink counts
(the paper's SiteRank), weighted in-degree, site size, and uniform.  The
scheme-ablation benchmark compares them on the campus web.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

import numpy as np

from .._validation import normalize_distribution
from ..exceptions import GraphStructureError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.hits import hits
from ..pagerank.pagerank import pagerank
from ..web.docgraph import DocGraph
from ..web.pipeline import WebRankingResult
from ..web.sitegraph import SiteGraph, aggregate_sitegraph


class LocalRankScheme(ABC):
    """Strategy producing the local (within-site) document weights."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "local"

    @abstractmethod
    def rank(self, docgraph: DocGraph, site: str) -> np.ndarray:
        """Return a probability distribution over the site's documents,
        aligned with ``docgraph.documents_of_site(site)``."""


class SiteRankScheme(ABC):
    """Strategy producing the site-layer weights."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "site"

    @abstractmethod
    def rank(self, sitegraph: SiteGraph) -> np.ndarray:
        """Return a probability distribution over ``sitegraph.sites``."""


# --------------------------------------------------------------------- #
# Local (document-layer) schemes
# --------------------------------------------------------------------- #
class PageRankLocalScheme(LocalRankScheme):
    """The paper's choice: PageRank of the site's internal link graph."""

    name = "local-pagerank"

    def __init__(self, damping: float = DEFAULT_DAMPING,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER) -> None:
        self._damping = damping
        self._tol = tol
        self._max_iter = max_iter

    def rank(self, docgraph: DocGraph, site: str) -> np.ndarray:
        local_adjacency, doc_ids = docgraph.local_adjacency(site)
        result = pagerank(local_adjacency, damping=self._damping,
                          tol=self._tol, max_iter=self._max_iter,
                          method="dense" if len(doc_ids) <= 2000 else "sparse")
        return result.scores


class HITSLocalScheme(LocalRankScheme):
    """HITS authority scores of the site's internal link graph.

    Illustrates the paper's "any other method" claim; HITS may assign zero
    weight to poorly connected documents, so a small smoothing mass is mixed
    in to keep the gatekeeper probabilities positive (Lemma 2's hypothesis).
    """

    name = "local-hits"

    def __init__(self, smoothing: float = 0.05) -> None:
        if not 0.0 < smoothing < 1.0:
            raise GraphStructureError("smoothing must be in (0, 1)")
        self._smoothing = smoothing

    def rank(self, docgraph: DocGraph, site: str) -> np.ndarray:
        local_adjacency, doc_ids = docgraph.local_adjacency(site)
        n = len(doc_ids)
        if n == 1:
            return np.array([1.0])
        result = hits(local_adjacency, max_iter=500, tol=1e-10,
                      raise_on_failure=False)
        authorities = result.authorities
        uniform = np.full(n, 1.0 / n)
        return normalize_distribution(
            (1 - self._smoothing) * authorities + self._smoothing * uniform,
            name="HITS local scheme")


class InDegreeLocalScheme(LocalRankScheme):
    """Documents weighted by (1 + intra-site in-degree)."""

    name = "local-indegree"

    def rank(self, docgraph: DocGraph, site: str) -> np.ndarray:
        local_adjacency, _doc_ids = docgraph.local_adjacency(site)
        in_degree = np.asarray(local_adjacency.sum(axis=0)).ravel()
        return normalize_distribution(in_degree + 1.0,
                                      name="in-degree local scheme")


class UniformLocalScheme(LocalRankScheme):
    """Every document of a site weighted equally (pure SiteRank ranking)."""

    name = "local-uniform"

    def rank(self, docgraph: DocGraph, site: str) -> np.ndarray:
        n = len(docgraph.documents_of_site(site))
        return np.full(n, 1.0 / n)


# --------------------------------------------------------------------- #
# Site-layer schemes
# --------------------------------------------------------------------- #
class PageRankSiteScheme(SiteRankScheme):
    """The paper's SiteRank: PageRank on SiteLink counts."""

    name = "site-pagerank"

    def __init__(self, damping: float = DEFAULT_DAMPING,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER) -> None:
        self._damping = damping
        self._tol = tol
        self._max_iter = max_iter

    def rank(self, sitegraph: SiteGraph) -> np.ndarray:
        result = pagerank(sitegraph.adjacency, damping=self._damping,
                          tol=self._tol, max_iter=self._max_iter,
                          method="dense" if sitegraph.n_sites <= 2000
                          else "sparse")
        return result.scores


class InDegreeSiteScheme(SiteRankScheme):
    """Sites weighted by (1 + incoming SiteLink count)."""

    name = "site-indegree"

    def rank(self, sitegraph: SiteGraph) -> np.ndarray:
        in_degree = np.asarray(sitegraph.adjacency.sum(axis=0)).ravel()
        return normalize_distribution(in_degree + 1.0,
                                      name="in-degree site scheme")


class SizeSiteScheme(SiteRankScheme):
    """Sites weighted by their document count.

    This is the degenerate scheme that re-creates flat PageRank's weakness:
    a huge link farm gets a huge weight simply for being huge.
    """

    name = "site-size"

    def rank(self, sitegraph: SiteGraph) -> np.ndarray:
        return normalize_distribution(
            np.asarray(sitegraph.site_sizes, dtype=float),
            name="size site scheme")


class UniformSiteScheme(SiteRankScheme):
    """Every site weighted equally."""

    name = "site-uniform"

    def rank(self, sitegraph: SiteGraph) -> np.ndarray:
        return np.full(sitegraph.n_sites, 1.0 / sitegraph.n_sites)


# --------------------------------------------------------------------- #
# Composition
# --------------------------------------------------------------------- #
def layered_docrank_with_schemes(docgraph: DocGraph,
                                 local_scheme: LocalRankScheme,
                                 site_scheme: SiteRankScheme,
                                 ) -> WebRankingResult:
    """Compose arbitrary local and site schemes via the Theorem-2 product.

    With :class:`PageRankLocalScheme` and :class:`PageRankSiteScheme` this
    reproduces :func:`repro.web.pipeline.layered_docrank` exactly (a test
    checks that), and any other combination instantiates the paper's "whole
    class of ranking methods".
    """
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot rank an empty DocGraph")
    sitegraph = aggregate_sitegraph(docgraph)
    site_weights = site_scheme.rank(sitegraph)
    if site_weights.size != sitegraph.n_sites:
        raise GraphStructureError(
            f"site scheme {site_scheme.name!r} returned "
            f"{site_weights.size} weights for {sitegraph.n_sites} sites")

    doc_ids: List[int] = []
    blocks: List[np.ndarray] = []
    for site_index, site in enumerate(sitegraph.sites):
        members = docgraph.documents_of_site(site)
        local = local_scheme.rank(docgraph, site)
        if local.size != len(members):
            raise GraphStructureError(
                f"local scheme {local_scheme.name!r} returned {local.size} "
                f"weights for site {site!r} with {len(members)} documents")
        doc_ids.extend(members)
        blocks.append(site_weights[site_index] * local)
    scores = normalize_distribution(np.concatenate(blocks),
                                    name="scheme-composed DocRank")
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(
        doc_ids=doc_ids, urls=urls, scores=scores,
        method=f"layered[{local_scheme.name}+{site_scheme.name}]")


def default_scheme_catalog() -> Dict[str, tuple]:
    """A named catalogue of (local scheme, site scheme) pairs for ablations."""
    return {
        "paper (PageRank + SiteRank)": (PageRankLocalScheme(),
                                        PageRankSiteScheme()),
        "HITS locals + SiteRank": (HITSLocalScheme(), PageRankSiteScheme()),
        "in-degree locals + SiteRank": (InDegreeLocalScheme(),
                                        PageRankSiteScheme()),
        "PageRank locals + site in-degree": (PageRankLocalScheme(),
                                             InDegreeSiteScheme()),
        "PageRank locals + site size": (PageRankLocalScheme(),
                                        SizeSiteScheme()),
        "uniform locals + SiteRank": (UniformLocalScheme(),
                                      PageRankSiteScheme()),
    }
