"""Numerical verification utilities for the paper's formal results.

These helpers check, for a concrete :class:`LayeredMarkovModel`, the
hypotheses and conclusions of:

* **Lemma 1** — the global matrix ``W`` is row-stochastic;
* **Lemma 2** — ``W`` is primitive when ``Y`` is primitive and the
  gatekeeper values are positive;
* **Theorem 1** — the Layered Method's output is a probability distribution;
* **Theorem 2 / Corollary 1 (Partition Theorem)** — the Layered Method's
  output equals the stationary distribution of ``W`` (Approach 4 ==
  Approach 2), i.e. ``W' π̃ = π̃``.

They are used by the property-based test-suite (random LMMs) and by the
equivalence benchmark E4, and they are also useful to end users who want to
check the decomposability assumptions on their own models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..linalg.perron import is_primitive
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.stochastic import is_row_stochastic
from ..markov.irreducibility import DEFAULT_DAMPING
from .gatekeeper import GatekeeperVectors, gatekeeper_vectors
from .global_matrix import approach_2, build_global_matrix
from .layered_method import approach_4
from .lmm import LayeredMarkovModel


@dataclass
class PartitionTheoremReport:
    """Outcome of checking the Partition Theorem on one model.

    Attributes
    ----------
    phase_matrix_primitive:
        Whether ``Y`` is primitive (the theorem's hypothesis).
    w_row_stochastic:
        Lemma 1's conclusion.
    w_primitive:
        Lemma 2's conclusion.
    layered_is_distribution:
        Theorem 1's conclusion (the layered vector sums to 1, entries >= 0).
    fixed_point_residual:
        ``‖W' π̃ − π̃‖_1`` — how well the layered vector is a fixed point of
        ``W'`` (Theorem 2's defining equation).
    equivalence_residual:
        ``‖π̃ − stationary(W)‖_1`` — the gap between Approach 4 and
        Approach 2 (Corollary 1).
    holds:
        ``True`` when every check passed within *tolerance*.
    tolerance:
        The tolerance used for all checks.
    """

    phase_matrix_primitive: bool
    w_row_stochastic: bool
    w_primitive: bool
    layered_is_distribution: bool
    fixed_point_residual: float
    equivalence_residual: float
    holds: bool
    tolerance: float


def check_lemma_1(model: LayeredMarkovModel,
                  alpha: float = DEFAULT_DAMPING) -> bool:
    """Check that the induced global matrix ``W`` is row-stochastic."""
    w, _ = build_global_matrix(model, alpha)
    return is_row_stochastic(w)


def check_lemma_2(model: LayeredMarkovModel,
                  alpha: float = DEFAULT_DAMPING) -> bool:
    """Check that ``W`` is primitive when ``Y`` is primitive.

    Returns ``True`` vacuously when ``Y`` is not primitive (the lemma's
    hypothesis fails, so it asserts nothing).
    """
    if not is_primitive(model.phase_transition):
        return True
    w, _ = build_global_matrix(model, alpha)
    return is_primitive(w)


def check_theorem_1(model: LayeredMarkovModel, alpha: float = DEFAULT_DAMPING,
                    *, atol: float = 1e-8) -> bool:
    """Check the Layered Method's output is a probability distribution."""
    result = approach_4(model, alpha, require_primitive=False)
    scores = result.scores
    return bool(scores.min() >= -atol and abs(scores.sum() - 1.0) <= atol)


def verify_partition_theorem(model: LayeredMarkovModel,
                             alpha: float = DEFAULT_DAMPING, *,
                             tolerance: float = 1e-6,
                             tol: float = DEFAULT_TOL,
                             max_iter: int = DEFAULT_MAX_ITER,
                             gatekeepers: Optional[GatekeeperVectors] = None,
                             ) -> PartitionTheoremReport:
    """Run the full battery of checks for the Partition Theorem on *model*.

    Parameters
    ----------
    alpha:
        The adjustable factor used for the local rankings.
    tolerance:
        Maximum residual accepted for the fixed-point and equivalence checks
        (this is a *verification* tolerance, looser than the solver
        tolerance *tol*).
    """
    if gatekeepers is None:
        gatekeepers = gatekeeper_vectors(model, alpha, tol=tol,
                                         max_iter=max_iter)
    phase_primitive = is_primitive(model.phase_transition)

    w, _ = build_global_matrix(model, alpha, gatekeepers=gatekeepers,
                               tol=tol, max_iter=max_iter)
    w_stochastic = is_row_stochastic(w)
    w_primitive = is_primitive(w) if phase_primitive else False

    layered = approach_4(model, alpha, gatekeepers=gatekeepers,
                         require_primitive=False, tol=tol, max_iter=max_iter)
    scores = layered.scores
    is_distribution = bool(scores.min() >= -1e-9
                           and abs(scores.sum() - 1.0) <= 1e-8)

    # Theorem 2's defining equation: W' π̃ = π̃  (π̃ as a column vector), i.e.
    # π̃ W = π̃ when π̃ is a row vector.
    fixed_point_residual = float(np.abs(scores @ w - scores).sum())

    if phase_primitive:
        centralized = approach_2(model, alpha, tol=tol, max_iter=max_iter)
        equivalence_residual = float(
            np.abs(scores - centralized.scores).sum())
    else:
        equivalence_residual = float("nan")

    holds = bool(
        w_stochastic
        and is_distribution
        and (not phase_primitive or (
            w_primitive
            and fixed_point_residual <= tolerance
            and equivalence_residual <= tolerance))
    )
    return PartitionTheoremReport(
        phase_matrix_primitive=phase_primitive,
        w_row_stochastic=w_stochastic,
        w_primitive=w_primitive,
        layered_is_distribution=is_distribution,
        fixed_point_residual=fixed_point_residual,
        equivalence_residual=equivalence_residual,
        holds=holds,
        tolerance=tolerance,
    )
