"""Irreducibility adjustments for Markov/transition matrices.

PageRank does not compute the stationary distribution of the raw link matrix
``M`` — the web's chain is reducible — but of an adjusted matrix.  Two
adjustments appear in the paper (both from Langville & Meyer, "Deeper inside
PageRank", 2004):

* **maximal irreducibility** (Google's approach, Equation 1 of the paper)::

      M̂ = f · M + (1 - f) · e · v'

  every state teleports to the preference distribution ``v`` with
  probability ``1 - f``;

* **minimal irreducibility** (used to build the gatekeeper-augmented
  per-phase matrices ``Û^J`` in Section 2.3.2)::

      Û = [[ α·U        , (1-α)·e ],
           [ v'         ,    0    ]]

  a single extra state is appended, every original state moves to it with
  probability ``1 - α`` and it redistributes according to ``v``.

The paper (citing Langville & Meyer) notes the two are equivalent in theory
and in computational efficiency; the tests verify the equivalence of the
resulting rankings numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .._validation import (
    ensure_distribution,
    ensure_probability,
    ensure_row_stochastic,
    is_sparse,
    normalize_distribution,
)
from ..exceptions import ValidationError
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    PowerIterationResult,
    stationary_distribution,
)
from ..linalg.stochastic import uniform_distribution

#: Damping factor used throughout the paper's examples and by Google.
DEFAULT_DAMPING: float = 0.85


def maximal_irreducibility(transition, damping: float = DEFAULT_DAMPING,
                           preference: Optional[np.ndarray] = None) -> np.ndarray:
    """Return the maximally irreducible (Google) matrix ``M̂``.

    ``M̂ = f M + (1 - f) e v'`` — Equation (1) of the paper, with ``v``
    the personalisation distribution (uniform by default, reproducing
    ``(1 - f) / N_D · e e'``).

    The result is dense by construction (the rank-one teleportation term is
    dense); callers ranking large graphs should use the matrix-free solver
    :func:`repro.linalg.power_iteration.stationary_distribution_dangling_aware`
    instead of materialising this matrix.
    """
    ensure_row_stochastic(transition, name="transition")
    damping = ensure_probability(damping, name="damping")
    n = transition.shape[0]
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = ensure_distribution(preference, name="preference")
        if v.size != n:
            raise ValidationError(
                f"preference has length {v.size}, expected {n}")
    dense = np.asarray(transition.todense() if is_sparse(transition)
                       else transition, dtype=float)
    return damping * dense + (1.0 - damping) * np.outer(np.ones(n), v)


@dataclass
class MinimalIrreducibilityResult:
    """The pieces produced by the minimal-irreducibility construction.

    Attributes
    ----------
    augmented:
        The ``(n+1) x (n+1)`` augmented matrix ``Û`` (dense).
    stationary_full:
        Stationary distribution of ``Û`` including the virtual state (last
        position).
    stationary:
        Stationary distribution restricted to the original ``n`` states and
        renormalised to sum to 1 — this is the per-phase vector ``π^J_U`` of
        the paper, i.e. the gatekeeper transition probabilities ``u^J_Gj``.
    iterations:
        Power-iteration count used on the augmented matrix.
    """

    augmented: np.ndarray
    stationary_full: np.ndarray
    stationary: np.ndarray
    iterations: int


def minimal_irreducibility_matrix(transition, alpha: float = DEFAULT_DAMPING,
                                  preference: Optional[np.ndarray] = None,
                                  ) -> np.ndarray:
    """Build the minimally irreducible augmented matrix ``Û``.

    Parameters
    ----------
    transition:
        The original ``n x n`` row-stochastic matrix ``U`` (the paper allows
        it to be reducible; it only needs to be Markovian).
    alpha:
        The adjustable parameter ``0 < α < 1`` of Section 2.3.2.
    preference:
        The initial state distribution ``v_U`` of the phase, used as the
        virtual state's outgoing distribution (uniform by default).
    """
    ensure_row_stochastic(transition, name="transition")
    alpha = ensure_probability(alpha, name="alpha", inclusive=False)
    n = transition.shape[0]
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = ensure_distribution(preference, name="preference")
        if v.size != n:
            raise ValidationError(
                f"preference has length {v.size}, expected {n}")
    dense = np.asarray(transition.todense() if is_sparse(transition)
                       else transition, dtype=float)
    augmented = np.zeros((n + 1, n + 1), dtype=float)
    augmented[:n, :n] = alpha * dense
    augmented[:n, n] = 1.0 - alpha
    augmented[n, :n] = v
    augmented[n, n] = 0.0
    return augmented


def minimal_irreducibility(transition, alpha: float = DEFAULT_DAMPING,
                           preference: Optional[np.ndarray] = None,
                           *, tol: float = DEFAULT_TOL,
                           max_iter: int = DEFAULT_MAX_ITER,
                           ) -> MinimalIrreducibilityResult:
    """Apply the minimal-irreducibility construction and rank the real states.

    This performs the exact procedure of Section 2.3.2: build ``Û``, run the
    power method to its principal eigenvector, drop the virtual (gatekeeper)
    entry and renormalise.  The returned ``stationary`` vector is what the
    paper uses as the gatekeeper transition probabilities of a phase.
    """
    augmented = minimal_irreducibility_matrix(transition, alpha, preference)
    result: PowerIterationResult = stationary_distribution(
        augmented, tol=tol, max_iter=max_iter)
    full = result.vector
    restricted = normalize_distribution(full[:-1], name="restricted stationary")
    return MinimalIrreducibilityResult(
        augmented=augmented,
        stationary_full=full,
        stationary=restricted,
        iterations=result.iterations,
    )


def google_matrix(adjacency, damping: float = DEFAULT_DAMPING,
                  preference: Optional[np.ndarray] = None) -> np.ndarray:
    """Build the dense Google matrix straight from a raw adjacency matrix.

    Convenience composition of
    :func:`repro.linalg.stochastic.transition_matrix` (with uniform dangling
    handling) and :func:`maximal_irreducibility` — the ``M̂(G)`` function of
    the paper.
    """
    from ..linalg.stochastic import transition_matrix  # local import: avoid cycle

    stochastic = transition_matrix(adjacency, dangling="uniform")
    return maximal_irreducibility(stochastic, damping, preference)
