"""Structural classification of Markov chains.

These utilities analyse the *reducible* chains that arise from raw web link
structure: communicating classes, closed (recurrent) classes, transient
states, and absorbing states.  They are used by diagnostics and tests to
demonstrate why the unadjusted web chain fails to have a unique stationary
distribution — the motivation for the irreducibility adjustments of
:mod:`repro.markov.irreducibility`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from .._validation import ensure_nonnegative, ensure_square, is_sparse


@dataclass
class ChainClassification:
    """Decomposition of a chain's states into communicating classes.

    Attributes
    ----------
    n_classes:
        Number of communicating (strongly connected) classes.
    labels:
        Array mapping each state to its class id.
    classes:
        For each class id, the list of member state indices.
    closed:
        For each class id, whether the class is closed (no edges leave it);
        closed classes are the recurrent classes of a finite chain.
    transient_states:
        All states belonging to non-closed classes.
    absorbing_states:
        States with a self-loop probability of 1.
    """

    n_classes: int
    labels: np.ndarray
    classes: List[List[int]]
    closed: List[bool]
    transient_states: List[int]
    absorbing_states: List[int]

    @property
    def is_irreducible(self) -> bool:
        """A chain is irreducible when it has exactly one communicating class."""
        return self.n_classes == 1

    @property
    def recurrent_classes(self) -> List[List[int]]:
        """The closed communicating classes."""
        return [members for members, is_closed in zip(self.classes, self.closed)
                if is_closed]


def classify_chain(transition) -> ChainClassification:
    """Classify the states of a (possibly reducible) non-negative matrix.

    The input does not need to be stochastic — only the zero/non-zero
    structure matters — so this can be applied directly to raw adjacency
    matrices of web graphs.
    """
    ensure_square(transition, name="transition")
    ensure_nonnegative(transition, name="transition")
    n = transition.shape[0]
    structure = (transition.tocsr() if is_sparse(transition)
                 else sp.csr_matrix(np.asarray(transition, dtype=float)))
    structure = structure.copy()
    structure.data = np.ones_like(structure.data)
    structure.eliminate_zeros()

    n_classes, labels = connected_components(structure, directed=True,
                                             connection="strong")
    classes: List[List[int]] = [[] for _ in range(n_classes)]
    for state, label in enumerate(labels):
        classes[int(label)].append(state)

    # A class is closed iff no edge leaves it.
    closed = [True] * n_classes
    rows, cols = structure.nonzero()
    for u, v in zip(rows, cols):
        if labels[u] != labels[v]:
            closed[int(labels[u])] = False

    transient_states = [state for state in range(n)
                        if not closed[int(labels[state])]]

    absorbing_states = []
    csr = structure
    dense_diag = (transition.tocsr().diagonal() if is_sparse(transition)
                  else np.diag(np.asarray(transition, dtype=float)))
    row_counts = np.diff(csr.indptr)
    for state in range(n):
        if row_counts[state] == 1 and dense_diag[state] > 0:
            absorbing_states.append(state)
        elif row_counts[state] == 0:
            # A state with no out-edges at all is absorbing once the dangling
            # repair adds its self-loop under the "self" policy; we report it
            # as absorbing because it traps probability mass structurally.
            absorbing_states.append(state)

    return ChainClassification(
        n_classes=n_classes,
        labels=labels,
        classes=classes,
        closed=closed,
        transient_states=transient_states,
        absorbing_states=absorbing_states,
    )


def rank_sinks(adjacency) -> List[List[int]]:
    """Return the "rank sinks" of a raw link graph.

    A rank sink is a closed communicating class that is not the whole graph:
    a group of pages that accumulate random-surfer probability and never give
    it back.  Their existence is the classical justification for PageRank's
    teleportation and shows up in the paper's discussion of why the raw web
    chain is reducible.
    """
    classification = classify_chain(adjacency)
    n = adjacency.shape[0]
    return [members for members in classification.recurrent_classes
            if len(members) < n]
