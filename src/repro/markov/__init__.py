"""Markov-chain substrate: chains, classification, irreducibility adjustments."""

from .chain import MarkovChain
from .classification import ChainClassification, classify_chain, rank_sinks
from .irreducibility import (
    DEFAULT_DAMPING,
    MinimalIrreducibilityResult,
    google_matrix,
    maximal_irreducibility,
    minimal_irreducibility,
    minimal_irreducibility_matrix,
)

__all__ = [
    "MarkovChain",
    "ChainClassification",
    "classify_chain",
    "rank_sinks",
    "DEFAULT_DAMPING",
    "MinimalIrreducibilityResult",
    "google_matrix",
    "maximal_irreducibility",
    "minimal_irreducibility",
    "minimal_irreducibility_matrix",
]
