"""A small, explicit Markov-chain abstraction.

:class:`MarkovChain` wraps a row-stochastic transition matrix together with
optional state labels and exposes the operations the ranking layers need:
stationary distributions, structural predicates (irreducible / aperiodic /
primitive), k-step evolution and simulation of trajectories.  It is the
common currency between the generic numerics in :mod:`repro.linalg` and the
web-specific layers.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from .._validation import (
    ensure_distribution,
    ensure_row_stochastic,
    is_sparse,
)
from ..exceptions import ValidationError
from ..linalg.perron import is_aperiodic, is_irreducible, is_primitive, period
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    PowerIterationResult,
    stationary_distribution,
)
from ..linalg.stochastic import uniform_distribution
from .irreducibility import DEFAULT_DAMPING, maximal_irreducibility


class MarkovChain:
    """A finite, discrete-time Markov chain with named states.

    Parameters
    ----------
    transition:
        Row-stochastic ``n x n`` matrix (dense or scipy sparse).
    states:
        Optional sequence of ``n`` hashable state labels; defaults to
        ``range(n)``.
    initial:
        Optional initial distribution; uniform when omitted.
    """

    def __init__(self, transition, states: Optional[Sequence[Hashable]] = None,
                 initial: Optional[np.ndarray] = None) -> None:
        ensure_row_stochastic(transition, name="transition")
        self._transition = transition
        n = transition.shape[0]
        if states is None:
            states = list(range(n))
        else:
            states = list(states)
            if len(states) != n:
                raise ValidationError(
                    f"got {len(states)} state labels for a {n}-state chain")
            if len(set(states)) != n:
                raise ValidationError("state labels must be unique")
        self._states: List[Hashable] = states
        self._index = {state: i for i, state in enumerate(states)}
        if initial is None:
            self._initial = uniform_distribution(n)
        else:
            self._initial = ensure_distribution(initial, name="initial")
            if self._initial.size != n:
                raise ValidationError(
                    f"initial distribution has length {self._initial.size}, "
                    f"expected {n}")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def transition(self):
        """The row-stochastic transition matrix (as supplied)."""
        return self._transition

    @property
    def states(self) -> List[Hashable]:
        """The state labels, in matrix order."""
        return list(self._states)

    @property
    def initial(self) -> np.ndarray:
        """The initial distribution."""
        return self._initial.copy()

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._transition.shape[0]

    def __len__(self) -> int:
        return self.n_states

    def index_of(self, state: Hashable) -> int:
        """Return the matrix index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ValidationError(f"unknown state {state!r}") from None

    def probability(self, source: Hashable, target: Hashable) -> float:
        """Return the one-step transition probability ``P(source -> target)``."""
        i, j = self.index_of(source), self.index_of(target)
        if is_sparse(self._transition):
            return float(self._transition.tocsr()[i, j])
        return float(np.asarray(self._transition)[i, j])

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def is_irreducible(self) -> bool:
        """Whether the chain's graph is strongly connected."""
        return is_irreducible(self._transition)

    def is_aperiodic(self) -> bool:
        """Whether the (irreducible) chain has period 1."""
        return is_aperiodic(self._transition)

    def is_primitive(self) -> bool:
        """Whether the transition matrix is primitive (irreducible + aperiodic)."""
        return is_primitive(self._transition)

    def period(self) -> int:
        """The period of the (irreducible) chain."""
        return period(self._transition)

    # ------------------------------------------------------------------ #
    # Distributions
    # ------------------------------------------------------------------ #
    def evolve(self, distribution: Optional[np.ndarray] = None,
               steps: int = 1) -> np.ndarray:
        """Propagate a distribution ``steps`` times through the chain."""
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if distribution is None:
            x = self._initial.copy()
        else:
            x = ensure_distribution(distribution, name="distribution").copy()
            if x.size != self.n_states:
                raise ValidationError(
                    f"distribution has length {x.size}, expected {self.n_states}")
        for _ in range(steps):
            if is_sparse(self._transition):
                x = np.asarray(x @ self._transition).ravel()
            else:
                x = x @ self._transition
        return x

    def stationary(self, *, tol: float = DEFAULT_TOL,
                   max_iter: int = DEFAULT_MAX_ITER) -> PowerIterationResult:
        """Stationary distribution of the chain via power iteration.

        The chain should be primitive for the result to be unique and
        independent of the starting vector; that is exactly the condition the
        paper's Approach 2 / Approach 4 rely on for the phase matrix ``Y``.
        """
        return stationary_distribution(self._transition, start=self._initial,
                                       tol=tol, max_iter=max_iter)

    def pagerank(self, damping: float = DEFAULT_DAMPING,
                 preference: Optional[np.ndarray] = None, *,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER) -> PowerIterationResult:
        """Stationary distribution after the maximal-irreducibility adjustment.

        This is "apply the PageRank algorithm to this chain" in the paper's
        sense (Approach 1 / Approach 3).
        """
        adjusted = maximal_irreducibility(self._transition, damping, preference)
        return stationary_distribution(adjusted, start=self._initial,
                                       tol=tol, max_iter=max_iter)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(self, steps: int, *, start: Optional[Hashable] = None,
                 rng: Optional[np.random.Generator] = None) -> List[Hashable]:
        """Sample a trajectory of ``steps`` transitions.

        Returns the list of visited state labels, of length ``steps + 1``.
        Mainly used by tests to check empirical visit frequencies against the
        analytical stationary distribution.
        """
        if steps < 0:
            raise ValidationError("steps must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        dense = (np.asarray(self._transition.todense())
                 if is_sparse(self._transition)
                 else np.asarray(self._transition, dtype=float))
        if start is None:
            current = int(rng.choice(self.n_states, p=self._initial))
        else:
            current = self.index_of(start)
        path = [self._states[current]]
        for _ in range(steps):
            current = int(rng.choice(self.n_states, p=dense[current]))
            path.append(self._states[current])
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MarkovChain(n_states={self.n_states}, "
                f"irreducible={self.is_irreducible()})")
