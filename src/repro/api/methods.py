"""Built-in ranking methods, registered as plugins.

Importing this module (which :mod:`repro.api` does eagerly) populates the
registry with the four methods the package ships:

* ``"layered"`` — the paper's 5-step Layered Method, scheduled through the
  execution engine; the facade's default and the only method that supports
  warm starts and parallel backends (its work decomposes per site);
* ``"flat"`` (alias ``"pagerank"``) — classical PageRank over the whole
  DocGraph, the paper's Figure 3 baseline;
* ``"blockrank"`` — Kamvar et al.'s BlockRank with sites as blocks, the
  closest prior work the paper contrasts against;
* ``"hits"`` — Kleinberg's HITS, ranking by authority scores.

Every method maps a ``(docgraph, config)`` pair to a
:class:`~repro.web.pipeline.WebRankingResult`; single-vector methods
(flat / blockrank / hits) have no decomposable work, so they ignore the
engine keywords and run on the calling thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..pagerank.blockrank import blockrank
from ..pagerank.hits import hits
from ..web.docgraph import DocGraph
from ..web.pipeline import (
    WebRankingResult,
    _flat_pagerank_ranking,
    _layered_docrank,
)
from .config import RankingConfig
from .registry import register_method


@register_method("layered")
def layered_method(docgraph: DocGraph, config: RankingConfig, *,
                   executor=None, n_jobs=None, warm=None,
                   site_preference: Optional[np.ndarray] = None,
                   document_preferences: Optional[Dict[str, np.ndarray]] = None,
                   ) -> WebRankingResult:
    """The 5-step Layered Method (the facade's default)."""
    return _layered_docrank(
        docgraph, config.damping,
        site_damping=config.site_damping,
        site_preference=site_preference,
        document_preferences=document_preferences,
        include_site_self_links=config.include_site_self_links,
        tol=config.tol, max_iter=config.max_iter,
        executor=executor, n_jobs=n_jobs, warm=warm,
        batch_sites=config.batch_sites,
        personalization=config.personalization)


@register_method("flat", aliases=("pagerank",), uses_engine=False)
def flat_method(docgraph: DocGraph, config: RankingConfig, *,
                executor=None, n_jobs=None, warm=None,
                preference: Optional[np.ndarray] = None) -> WebRankingResult:
    """Classical PageRank over the whole DocGraph (Figure 3 baseline)."""
    return _flat_pagerank_ranking(docgraph, config.damping,
                                  preference=preference, tol=config.tol,
                                  max_iter=config.max_iter)


def _site_blocks(docgraph: DocGraph) -> List[int]:
    """Block id (site index) of every document, in document-id order."""
    index_of_site = {site: i for i, site in enumerate(docgraph.sites())}
    return [index_of_site[docgraph.site_of_document(doc_id)]
            for doc_id in range(docgraph.n_documents)]


@register_method("blockrank", uses_engine=False)
def blockrank_method(docgraph: DocGraph, config: RankingConfig, *,
                     executor=None, n_jobs=None, warm=None,
                     refine: bool = True) -> WebRankingResult:
    """BlockRank with web sites as blocks (the paper's closest prior work).

    *refine* runs step 5 (global refinement from the approximate vector);
    disable it to get the pure aggregate-of-local-ranks approximation the
    E12 ablation compares against the layered method.
    """
    result = blockrank(docgraph.adjacency(), _site_blocks(docgraph),
                       damping=config.damping, tol=config.tol,
                       max_iter=config.max_iter, refine=refine)
    doc_ids = list(range(docgraph.n_documents))
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls,
                            scores=result.global_scores, method="blockrank",
                            iterations=result.refinement_iterations)


@register_method("hits", uses_engine=False)
def hits_method(docgraph: DocGraph, config: RankingConfig, *,
                executor=None, n_jobs=None, warm=None) -> WebRankingResult:
    """HITS over the whole DocGraph, ranking by authority scores.

    HITS has its own convergence behaviour (the mutual-reinforcement
    iteration may oscillate on degenerate graphs), so non-convergence
    within the configured ``max_iter`` budget degrades to the last
    iterate instead of raising.
    """
    result = hits(docgraph.adjacency(), tol=config.tol,
                  max_iter=config.max_iter,
                  raise_on_failure=False)
    doc_ids = list(range(docgraph.n_documents))
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls,
                            scores=result.authorities, method="hits",
                            iterations=result.iterations)
