"""The unified :class:`RankingResult` every facade run returns.

All four deployment modes already produce a
:class:`~repro.web.pipeline.WebRankingResult`; this wrapper adds what the
facade is in a position to know and the raw result is not — the exact
config that produced the scores, the wall-clock of the run, and a
provenance record (method, executor, how payloads reached the engine's
workers — ``transport`` (``"in-process"`` / ``"pickle"`` / ``"arena"`` /
``"inline"``) and the ``dispatch_bytes`` that shipment serialised — and
the package version) — so a result can be logged, compared, and
re-produced without reverse-engineering call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..web.pipeline import WebRankingResult
from .config import RankingConfig


@dataclass
class RankingResult:
    """A ranking plus the configuration and provenance that produced it.

    The score-reading surface delegates to the wrapped
    :class:`~repro.web.pipeline.WebRankingResult`, so anything that
    consumed the 1.x result type (metrics, serialisation, the serving
    store) keeps working on ``result.ranking``.
    """

    ranking: WebRankingResult
    config: RankingConfig
    wall_seconds: float = 0.0
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds per phase, keyed by the canonical phase names of
    #: :mod:`repro.obs` (``plan.build`` / ``plan.execute`` /
    #: ``plan.compose`` plus ``fit.total`` for the whole call).
    #: ``wall_seconds`` is the back-compat alias of ``timings["fit.total"]``.
    timings: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Delegated score-reading surface
    # ------------------------------------------------------------------ #
    @property
    def scores(self) -> np.ndarray:
        """The global ranking distribution."""
        return self.ranking.scores

    @property
    def doc_ids(self) -> List[int]:
        """Document ids aligned with :attr:`scores`."""
        return self.ranking.doc_ids

    @property
    def urls(self) -> List[str]:
        """URLs aligned with :attr:`scores`."""
        return self.ranking.urls

    @property
    def method(self) -> str:
        """Method tag of the underlying ranking."""
        return self.ranking.method

    @property
    def iterations(self) -> int:
        """Total power iterations of the run."""
        return self.ranking.iterations

    @property
    def n_documents(self) -> int:
        """Number of ranked documents."""
        return self.ranking.n_documents

    def score_of(self, doc_id: int) -> float:
        """Global score of one document id."""
        return self.ranking.score_of(doc_id)

    def scores_by_doc_id(self) -> np.ndarray:
        """Scores re-indexed by document id."""
        return self.ranking.scores_by_doc_id()

    def top_k(self, k: int, *, segment: str | None = None) -> List[int]:
        """The ``k`` best document ids, best first.

        *segment* ranks by that personalisation segment's score column
        instead of the base distribution.
        """
        return self.ranking.top_k(k, segment=segment)

    def top_k_urls(self, k: int, *, segment: str | None = None) -> List[str]:
        """The ``k`` best document URLs, best first."""
        return self.ranking.top_k_urls(k, segment=segment)

    @property
    def segments(self) -> tuple:
        """Personalisation segment names of the run (``()`` when none)."""
        return self.ranking.segments

    def segment_scores(self, segment: str) -> np.ndarray:
        """The named segment's score column, aligned with :attr:`doc_ids`."""
        return self.ranking.segment_scores(segment)

    # ------------------------------------------------------------------ #
    def to_dict(self, *, top_k: int | None = None) -> Dict[str, Any]:
        """A JSON-serialisable record: scores + config + provenance.

        *top_k* truncates the score listing as in
        :func:`repro.io.ranking_to_dict`.
        """
        from ..io.serialization import ranking_to_dict

        return {
            "ranking": ranking_to_dict(self.ranking, top_k=top_k),
            "config": self.config.to_dict(),
            "wall_seconds": self.wall_seconds,
            "timings": dict(self.timings),
            "provenance": dict(self.provenance),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RankingResult(method={self.method!r}, "
                f"n_documents={self.n_documents}, "
                f"iterations={self.iterations}, "
                f"wall_seconds={self.wall_seconds:.3f})")
