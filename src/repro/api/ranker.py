"""The :class:`Ranker` facade: one entry point for every deployment mode.

Wu & Aberer's method is one model with many deployment modes — one-shot
pipeline, incremental refresh, decentralised peers, online serving.  After
the 1.x releases each mode had its own entry point and keyword soup; the
facade folds them back into one object driven by one declarative
:class:`~repro.api.RankingConfig`::

    from repro.api import Ranker, RankingConfig

    config = RankingConfig(method="layered", executor="auto")
    result = Ranker(config).fit(docgraph)     # unified RankingResult
    result.top_k(10)

    ranker = Ranker(config)
    live = ranker.incremental(docgraph)       # IncrementalLayeredRanker
    report = ranker.distributed(docgraph)     # peer-simulation report
    service = ranker.serve(docgraph=docgraph) # RankingService

All four adapters construct today's specialised machinery from the same
config, so scores agree across modes exactly as the Partition Theorem
prescribes.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple, Union

from .. import obs
from ..engine.executor import Executor, default_n_jobs, make_executor
from ..engine.warm import WarmStartState
from ..exceptions import ValidationError
from ..web.docgraph import DocGraph
from .config import RankingConfig
from .registry import resolve_method_name
from .result import RankingResult


class Ranker:
    """Fits ranking methods and adapts them to every deployment mode.

    Parameters
    ----------
    config:
        The declarative configuration (defaults to ``RankingConfig()``,
        i.e. the serial layered method).
    **overrides:
        Field overrides applied on top of *config* — ``Ranker(method="hits")``
        is shorthand for ``Ranker(RankingConfig().replace(method="hits"))``.
    """

    def __init__(self, config: Optional[RankingConfig] = None,
                 **overrides: Any) -> None:
        if config is None:
            config = RankingConfig()
        elif not isinstance(config, RankingConfig):
            raise ValidationError(
                f"config must be a RankingConfig, got {type(config).__name__}")
        if overrides:
            config = config.replace(**overrides)
        self.config = config
        self._warm: Optional[WarmStartState] = (
            WarmStartState() if config.warm_start else None)
        self._docgraph: Optional[DocGraph] = None
        self._result: Optional[RankingResult] = None

    # ------------------------------------------------------------------ #
    # Engine backend resolution
    # ------------------------------------------------------------------ #
    def _engine_spec(self) -> Tuple[Optional[Executor],
                                    Optional[Union[int, str]], bool]:
        """Translate the config into the engine's ``(executor, n_jobs)`` pair.

        Returns ``(executor, n_jobs, owned)``; when *owned* is true the
        caller created *executor* here and must close it after use.
        """
        if self.config.wants_auto_backend:
            from ..engine.adaptive import AutoExecutor

            # Built here (not via the n_jobs="auto" spelling) so the
            # config's worker cap reaches the adaptive pools.
            cap = (self.config.n_jobs
                   if isinstance(self.config.n_jobs, int) else None)
            return AutoExecutor(cap), None, True
        if self.config.executor == "serial":
            return None, None, False
        n_jobs = self.config.n_jobs or default_n_jobs()
        return make_executor(self.config.executor, n_jobs), None, True

    # ------------------------------------------------------------------ #
    # One-shot fitting
    # ------------------------------------------------------------------ #
    def fit(self, docgraph: DocGraph, *, trace: Optional[str] = None,
            **method_options: Any) -> RankingResult:
        """Rank *docgraph* with the configured method.

        *method_options* are forwarded to the registered method — e.g.
        ``site_preference=`` / ``document_preferences=`` for the layered
        method, ``refine=False`` for BlockRank.

        *trace* opts into span-history collection for this call and writes
        the trace JSON (:mod:`repro.obs.trace` schema) to that path when
        the fit finishes.  Tracing state active before the call is
        restored afterwards.

        Returns the unified :class:`~repro.api.RankingResult`; the same
        object is retained on the ranker (:attr:`result_`) so the
        adapters below can reuse it.
        """
        method = self.config.require_method()
        uses_engine = getattr(method, "uses_engine", True)
        if uses_engine:
            executor, n_jobs, owned = self._engine_spec()
        else:
            # Single-vector methods run inline: building a pool for them
            # would waste a spawn and misdescribe the run's provenance.
            executor, n_jobs, owned = None, None, False
        previous_tracer = obs.current_tracer()
        tracer = obs.enable_tracing() if trace is not None else None
        started = time.perf_counter()
        try:
            with obs.span(obs.PHASE_FIT):
                ranking = method(docgraph, self.config, executor=executor,
                                 n_jobs=n_jobs, warm=self._warm,
                                 **method_options)
        finally:
            if owned:
                executor.close()
            if tracer is not None:
                if previous_tracer is not None:
                    obs.enable_tracing(previous_tracer)
                else:
                    obs.disable_tracing()
        wall_seconds = time.perf_counter() - started
        if tracer is not None:
            tracer.export(trace)
        timings = dict(getattr(ranking, "timings", None) or {})
        timings[obs.PHASE_FIT] = wall_seconds
        result = RankingResult(
            ranking=ranking, config=self.config, wall_seconds=wall_seconds,
            timings=timings,
            provenance=self._provenance(docgraph, uses_engine=uses_engine,
                                        engine_executor=executor))
        self._docgraph = docgraph
        self._result = result
        return result

    def _provenance(self, docgraph: DocGraph, *,
                    uses_engine: bool = True,
                    engine_executor=None) -> Dict[str, Any]:
        from .. import __version__

        if not uses_engine:
            transport, dispatched = "inline", 0
        elif engine_executor is None:  # serial reference backend
            transport, dispatched = "in-process", 0
        else:
            # What the run *actually* shipped to engine workers: 0 bytes
            # for in-process backends, the pickled payloads or (tiny)
            # arena refs for the process pool — the number the transport
            # benchmarks compare.
            transport = str(getattr(engine_executor, "last_transport",
                                    "in-process"))
            dispatched = int(getattr(engine_executor,
                                     "total_dispatch_bytes", 0))
        provenance = {
            "method": resolve_method_name(self.config.method),
            # Inline methods never touch the engine, whatever the config
            # says — record how the scores were actually produced.
            "executor": self.config.executor if uses_engine else "inline",
            "n_jobs": self.config.n_jobs if uses_engine else None,
            "warm_start": self.config.warm_start,
            "transport": transport,
            "dispatch_bytes": dispatched,
            "n_documents": docgraph.n_documents,
            "n_sites": docgraph.n_sites,
            "repro_version": __version__,
        }
        # The adaptive backend's decision records (backend chosen, priced
        # flops, measured wall) make the calibration model auditable from
        # the result alone.
        decisions = getattr(engine_executor, "decisions", None)
        if decisions:
            provenance["auto_decisions"] = [dict(d) for d in decisions]
        if obs.enabled():
            provenance["metrics"] = obs.snapshot(include_collected=False)
        return provenance

    @property
    def result_(self) -> RankingResult:
        """The most recent :meth:`fit` result."""
        if self._result is None:
            raise ValidationError("this Ranker has not been fitted yet; "
                                  "call fit(docgraph) first")
        return self._result

    @property
    def docgraph_(self) -> DocGraph:
        """The most recently fitted DocGraph."""
        if self._docgraph is None:
            raise ValidationError("this Ranker has not been fitted yet; "
                                  "call fit(docgraph) first")
        return self._docgraph

    def _graph_or_fitted(self, docgraph: Optional[DocGraph]) -> DocGraph:
        if docgraph is not None:
            return docgraph
        return self.docgraph_

    def _require_layered(self, operation: str) -> None:
        if resolve_method_name(self.config.method) != "layered":
            raise ValidationError(
                f"{operation} requires the layered method (it relies on the "
                f"per-site decomposition), but this config selects "
                f"{self.config.method!r}")

    # ------------------------------------------------------------------ #
    # Warm-start persistence
    # ------------------------------------------------------------------ #
    @property
    def warm_state(self) -> Optional[WarmStartState]:
        """The warm-start state carried across fits (``None`` when disabled)."""
        return self._warm

    def save_state(self, path) -> None:
        """Persist the warm-start state so a restarted process can resume.

        The file is the JSON format of :func:`repro.io.save_warm_state`;
        requires ``warm_start=True`` in the config (or a prior
        :meth:`load_state`) so there is state to save.
        """
        from ..io.serialization import save_warm_state

        if self._warm is None:
            raise ValidationError(
                "no warm-start state to save; construct the Ranker with "
                "RankingConfig(warm_start=True)")
        save_warm_state(self._warm, path)

    def load_state(self, path) -> "Ranker":
        """Resume from a :meth:`save_state` file.

        Subsequent :meth:`fit` calls warm-start their power iterations
        from the loaded vectors (and keep recording into the same state),
        regardless of the config's ``warm_start`` flag — loading state is
        itself the opt-in.  Returns ``self`` for chaining.
        """
        from ..io.serialization import load_warm_state

        self._warm = load_warm_state(path)
        return self

    # ------------------------------------------------------------------ #
    # Deployment-mode adapters
    # ------------------------------------------------------------------ #
    def incremental(self, docgraph: Optional[DocGraph] = None):
        """An :class:`~repro.web.incremental.IncrementalLayeredRanker` from this config.

        Uses the given *docgraph* (or the last fitted one) and the
        config's damping / tolerance / backend settings.  The returned
        ranker owns its executor; close it (or use it as a context
        manager) when done.
        """
        from ..web.incremental import IncrementalLayeredRanker

        self._require_layered("incremental maintenance")
        graph = self._graph_or_fitted(docgraph)
        executor, n_jobs, owned = self._engine_spec()
        try:
            ranker = IncrementalLayeredRanker(
                graph, self.config.damping,
                site_damping=self.config.site_damping,
                include_site_self_links=self.config.include_site_self_links,
                tol=self.config.tol, max_iter=self.config.max_iter,
                executor=executor, n_jobs=n_jobs,
                batch_sites=self.config.batch_sites,
                personalization=self.config.personalization)
        except BaseException:
            if owned:
                executor.close()
            raise
        if owned:
            # The executor was created here on the ranker's behalf; hand
            # over ownership so ranker.close() shuts the pool down.
            ranker._owns_executor = True
        return ranker

    def distributed(self, docgraph: Optional[DocGraph] = None, *,
                    n_peers: Optional[int] = None,
                    architecture: Optional[str] = None,
                    partition_policy: Optional[str] = None,
                    network=None):
        """Run the simulated P2P deployment and return its report.

        Constructs a :class:`~repro.distributed.DistributedRankingCoordinator`
        from the config (``n_peers`` / ``architecture`` /
        ``partition_policy`` default to the config's values) and executes
        the protocol; the returned
        :class:`~repro.distributed.SimulationReport` carries the ranking
        plus traffic and makespan accounting.
        """
        from ..distributed.coordinator import DistributedRankingCoordinator

        self._require_layered("the distributed deployment")
        if self.config.include_site_self_links:
            # The protocol's SiteLink summaries count inter-site links
            # only; honoring the flag would need a protocol change, and
            # ignoring it would silently diverge from fit().
            raise ValidationError(
                "include_site_self_links=True is not supported by the "
                "distributed protocol (peers summarise inter-site links "
                "only); use fit() or incremental() for this config")
        graph = self._graph_or_fitted(docgraph)
        executor, n_jobs, owned = self._engine_spec()
        try:
            coordinator = DistributedRankingCoordinator(
                graph,
                n_peers=self.config.n_peers if n_peers is None else n_peers,
                architecture=(self.config.architecture if architecture is None
                              else architecture),
                partition_policy=(self.config.partition_policy
                                  if partition_policy is None
                                  else partition_policy),
                network=network,
                damping=self.config.damping,
                site_damping=self.config.site_damping,
                tol=self.config.tol, max_iter=self.config.max_iter,
                executor=executor, n_jobs=n_jobs)
            return coordinator.run()
        finally:
            if owned:
                executor.close()

    def serve(self, *, docgraph: Optional[DocGraph] = None,
              corpus: Optional[Dict[int, str]] = None,
              index=None, incremental=False, replicas: int = 1,
              drain_grace: float = 0.0):
        """A :class:`~repro.serving.RankingService` over this config's ranking.

        Parameters
        ----------
        docgraph:
            Graph to serve (defaults to the last fitted one; fitted on
            demand when no result is cached yet).
        corpus / index:
            Optional text corpus (or pre-built index) enabling free-text
            queries.
        incremental:
            ``True`` builds an incremental ranker under the service so
            live graph updates repair shards in place — the service owns
            that ranker, so call ``service.close()`` (or use the service
            as a context manager) to release it and any worker pool it
            holds.  Pass an existing
            :class:`~repro.web.incremental.IncrementalLayeredRanker` to
            attach to it instead (you keep ownership).
        replicas:
            Above ``1``, returns a
            :class:`~repro.serving.replicas.ReplicaSet` of that many
            service replicas behind a consistent-hash router instead of a
            single service; incremental updates then roll across the
            replicas one drain at a time, so queries keep flowing during
            rebuilds.  The set has the same query surface as a service.
        drain_grace:
            Seconds a draining replica lingers before its rebuild during
            rolling updates (``replicas > 1`` only) — a hold-off for
            load balancers polling ``/readyz``.
        """
        from ..serving.replicas import ReplicaSet
        from ..serving.service import RankingService
        from ..web.incremental import IncrementalLayeredRanker

        if replicas < 1:
            raise ValidationError("replicas must be at least 1")

        serving_kwargs = dict(cache_size=self.config.cache_size,
                              rule=self.config.rule,
                              weight=self.config.weight,
                              batch_sites=self.config.batch_sites)
        # A pooled config also parallelises the service's shard rebuilds
        # (the window during which queries block on the service lock).
        # Distinct from any executor fit()/incremental() builds below, but
        # not a double spawn: pools start their workers lazily, and this
        # one only runs when an incremental update actually arrives.  Any
        # pooled config gets a *thread* pool here: the per-shard work is a
        # GIL-releasing numpy multiply whose payload (ids, URLs, vectors)
        # is not worth pickling to worker processes, and the adaptive cost
        # model cannot price shard tuples (it would always pick serial).
        if self.config.executor == "serial" and not self.config.wants_auto_backend:
            shard_executor, owns_executor = None, False
        else:
            cap = (self.config.n_jobs
                   if isinstance(self.config.n_jobs, int) else None)
            shard_executor, owns_executor = make_executor("threaded",
                                                          cap), True
        if shard_executor is not None:
            serving_kwargs["executor"] = shard_executor

        def _adopt(service: "RankingService") -> "RankingService":
            service._owns_executor = owns_executor
            return service

        def _adopt_set(replica_set: "ReplicaSet") -> "ReplicaSet":
            # All replicas share one rebuild pool; the set (not any one
            # replica's service) owns it, so it survives until close().
            replica_set._shared_executor = shard_executor
            replica_set._owns_executor = owns_executor
            return replica_set

        replica_kwargs = dict(serving_kwargs, n_replicas=replicas,
                              drain_grace=drain_grace)

        try:
            if incremental is not False and index is not None:
                # from_incremental builds its index from a corpus only;
                # dropping a caller-supplied index silently would strand
                # text queries.
                raise ValidationError(
                    "an incremental service builds its text index from a "
                    "corpus; pass corpus= instead of index= (index= is "
                    "only supported when serving a fitted result)")
            if isinstance(incremental, IncrementalLayeredRanker):
                if docgraph is not None and docgraph is not incremental.docgraph:
                    raise ValidationError(
                        "the passed incremental ranker maintains a "
                        "different DocGraph than docgraph=; an attached "
                        "service always serves the ranker's graph, so "
                        "pass one or the other")
                if replicas > 1:
                    return _adopt_set(ReplicaSet.from_incremental(
                        incremental, corpus=corpus, **replica_kwargs))
                return _adopt(RankingService.from_incremental(
                    incremental, corpus=corpus, **serving_kwargs))
            if incremental:
                ranker = self.incremental(docgraph)
                try:
                    if replicas > 1:
                        served = ReplicaSet.from_incremental(
                            ranker, corpus=corpus, **replica_kwargs)
                    else:
                        served = RankingService.from_incremental(
                            ranker, corpus=corpus, **serving_kwargs)
                except BaseException:
                    ranker.close()  # nobody else holds this ranker's pool
                    raise
                # The service (or set) is the only handle to this ranker
                # (and to any worker pool it owns): close() releases both.
                served._owns_ranker = True
                return _adopt_set(served) if replicas > 1 else _adopt(served)
            graph = self._graph_or_fitted(docgraph)
            if self._result is None or graph is not self._docgraph:
                self.fit(graph)
            if replicas > 1:
                return _adopt_set(ReplicaSet.from_ranking(
                    self.result_.ranking, graph, corpus=corpus,
                    index=index, **replica_kwargs))
            return _adopt(RankingService.from_ranking(
                self.result_.ranking, graph, corpus=corpus, index=index,
                **serving_kwargs))
        except BaseException:
            if owns_executor:
                shard_executor.close()
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self._result is not None
        return (f"Ranker(method={self.config.method!r}, "
                f"executor={self.config.executor!r}, fitted={fitted})")
