"""The declarative, serialisable :class:`RankingConfig`.

One frozen dataclass describes a whole ranking deployment — which method to
run, its numeric knobs, the engine backend, the warm-start policy, and the
serving / distributed options — so the same object can drive a one-shot
pipeline run, an incremental ranker, a peer simulation, or a query service,
and can be written to disk (JSON or TOML) and handed to
``repro rank --config``.

Every field is validated at construction: a config object that exists is a
config object that can run.  The one check deferred to run time is whether
``method`` names a *registered* method — plugins may register methods after
a config mentioning them was created — which :meth:`RankingConfig.require_method`
performs on demand.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Union

from ..exceptions import ValidationError
from ..io.config_io import load_config_mapping, save_config_mapping
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING

#: Engine backends a config may name; ``"auto"`` defers to the cost model.
EXECUTOR_CHOICES = ("serial", "threaded", "process", "auto")

#: Query/link combination rules of the serving layer.
RULE_CHOICES = ("linear", "rrf")

#: Deployment flavours of the distributed protocol.
ARCHITECTURE_CHOICES = ("flat", "super-peer")

#: Site-to-peer assignment policies of the distributed protocol.
PARTITION_POLICY_CHOICES = ("round-robin", "balanced", "one-per-site")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


#: Keys a personalisation segment may carry.
_SEGMENT_KEYS = ("sites", "documents", "background")


def _validate_personalization(spec: Any) -> None:
    """Validate the declarative ``personalization`` section.

    Structure only — site names and document URLs are resolved against the
    DocGraph at fit time; weights are checked here for the NaN / negative
    failures the preference builders would reject anyway, so a config that
    exists is a config that can run.
    """
    import math

    _require(isinstance(spec, dict) and bool(spec),
             "personalization must be a non-empty mapping of segment "
             "names to segment specs")
    for name, segment in spec.items():
        _require(isinstance(name, str) and bool(name),
                 f"segment names must be non-empty strings, got {name!r}")
        _require(isinstance(segment, dict),
                 f"segment {name!r} must be a mapping, "
                 f"got {type(segment).__name__}")
        unknown = sorted(set(segment) - set(_SEGMENT_KEYS))
        _require(not unknown,
                 f"segment {name!r} has unknown key"
                 f"{'s' if len(unknown) > 1 else ''}: {', '.join(unknown)}; "
                 f"known keys: {', '.join(_SEGMENT_KEYS)}")
        for group in ("sites", "documents"):
            weights = segment.get(group)
            if weights is None:
                continue
            _require(isinstance(weights, dict),
                     f"segment {name!r} {group} must be a mapping of "
                     f"identifiers to weights")
            for key, weight in weights.items():
                _require(isinstance(key, str) and bool(key),
                         f"segment {name!r} {group} keys must be "
                         f"non-empty strings, got {key!r}")
                _require(isinstance(weight, (int, float))
                         and not isinstance(weight, bool)
                         and math.isfinite(weight) and weight >= 0,
                         f"segment {name!r} {group}[{key!r}] must be a "
                         f"finite non-negative number, got {weight!r}")
        background = segment.get("background", 0.0)
        _require(isinstance(background, (int, float))
                 and not isinstance(background, bool)
                 and math.isfinite(background) and background >= 0,
                 f"segment {name!r} background must be a finite "
                 f"non-negative number, got {background!r}")


@dataclass(frozen=True)
class RankingConfig:
    """Everything needed to rank a web graph, in one immutable value.

    Attributes
    ----------
    method:
        Registered ranking method (``"layered"``, ``"flat"``,
        ``"blockrank"``, ``"hits"``, or any plugin name; ``"pagerank"`` is
        accepted as an alias of ``"flat"``).
    damping:
        Damping factor of the (local) rank computations.
    site_damping:
        Damping factor of the SiteRank (defaults to *damping*).
    tol, max_iter:
        Convergence tolerance and iteration budget of the power methods.
    include_site_self_links:
        Whether intra-site links count in the SiteGraph aggregation.
    batch_sites:
        Whether the engine fuses small sites into block-diagonal batched
        tasks solved by one power iteration with per-site convergence
        freezing (:mod:`repro.linalg.block_solver`) — the default;
        ``False`` opts out to the historical one-task-per-site path.
    executor:
        Engine backend: ``"serial"`` (reference), ``"threaded"``,
        ``"process"``, or ``"auto"`` (cost-model selection per batch).
    n_jobs:
        Worker count for pooled backends (``None`` = one per CPU), or
        ``"auto"`` as a shorthand for ``executor="auto"``.
    warm_start:
        Whether a :class:`~repro.api.Ranker` carries
        :class:`~repro.engine.WarmStartState` across fits (and can persist
        it with ``save_state`` / ``load_state``).
    cache_size, rule, weight:
        Serving options: result-cache capacity and the query/link
        combination rule and its λ.
    n_peers, architecture, partition_policy:
        Distributed-deployment options consumed by
        :meth:`~repro.api.Ranker.distributed`.
    personalization:
        Optional declarative personalisation segments: a mapping from
        segment name to ``{"sites": {site: weight}, "documents":
        {url: weight}, "background": float}``.  The layered method solves
        all segments as one fused multi-vector pass and the serving layer
        answers ``segment=``-qualified queries from the resulting score
        columns.  ``None`` (the default) disables personalisation.
    """

    method: str = "layered"
    damping: float = DEFAULT_DAMPING
    site_damping: Optional[float] = None
    tol: float = DEFAULT_TOL
    max_iter: int = DEFAULT_MAX_ITER
    include_site_self_links: bool = False
    batch_sites: bool = True
    executor: str = "serial"
    n_jobs: Optional[Union[int, str]] = None
    warm_start: bool = False
    cache_size: int = 1024
    rule: str = "linear"
    weight: float = 0.5
    n_peers: int = 8
    architecture: str = "flat"
    partition_policy: str = "balanced"
    personalization: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        from .._validation import ensure_damping

        _require(isinstance(self.method, str) and bool(self.method),
                 "method must be a non-empty string")
        _require(isinstance(self.damping, (int, float)),
                 f"damping must be a number, got {self.damping!r}")
        ensure_damping(self.damping, name="damping")
        if self.site_damping is not None:
            _require(isinstance(self.site_damping, (int, float)),
                     f"site_damping must be a number, got {self.site_damping!r}")
            ensure_damping(self.site_damping, name="site_damping")
        _require(isinstance(self.tol, (int, float)) and 0.0 < self.tol < 1.0,
                 f"tol must be in (0, 1), got {self.tol!r}")
        _require(isinstance(self.max_iter, int)
                 and not isinstance(self.max_iter, bool)
                 and self.max_iter >= 1,
                 f"max_iter must be a positive integer, got {self.max_iter!r}")
        _require(isinstance(self.include_site_self_links, bool),
                 "include_site_self_links must be a boolean")
        _require(isinstance(self.batch_sites, bool),
                 "batch_sites must be a boolean")
        _require(self.executor in EXECUTOR_CHOICES,
                 f"executor must be one of {EXECUTOR_CHOICES}, "
                 f"got {self.executor!r}")
        if self.n_jobs is not None:
            from ..engine.executor import normalize_n_jobs

            normalize_n_jobs(self.n_jobs)
            # Contradictory combinations fail loudly instead of silently
            # winning one way or the other: a worker count on the serial
            # backend would be ignored, and n_jobs='auto' would override
            # an explicitly chosen pooled backend.
            _require(self.n_jobs == "auto" or self.executor != "serial"
                     or self.n_jobs == 1,
                     f"n_jobs={self.n_jobs} has no effect with "
                     f"executor='serial'; pick executor='threaded', "
                     f"'process' or 'auto'")
            _require(self.n_jobs != "auto"
                     or self.executor in ("serial", "auto"),
                     f"n_jobs='auto' selects the adaptive backend and "
                     f"cannot be combined with executor="
                     f"{self.executor!r}; set executor='auto' with an "
                     f"integer n_jobs to cap the adaptive pools")
        _require(isinstance(self.warm_start, bool),
                 "warm_start must be a boolean")
        _require(isinstance(self.cache_size, int)
                 and not isinstance(self.cache_size, bool)
                 and self.cache_size >= 1,
                 f"cache_size must be a positive integer, "
                 f"got {self.cache_size!r}")
        _require(self.rule in RULE_CHOICES,
                 f"rule must be one of {RULE_CHOICES}, got {self.rule!r}")
        _require(isinstance(self.weight, (int, float))
                 and 0.0 <= self.weight <= 1.0,
                 f"weight must be in [0, 1], got {self.weight!r}")
        _require(isinstance(self.n_peers, int)
                 and not isinstance(self.n_peers, bool) and self.n_peers >= 1,
                 f"n_peers must be a positive integer, got {self.n_peers!r}")
        _require(self.architecture in ARCHITECTURE_CHOICES,
                 f"architecture must be one of {ARCHITECTURE_CHOICES}, "
                 f"got {self.architecture!r}")
        _require(self.partition_policy in PARTITION_POLICY_CHOICES,
                 f"partition_policy must be one of {PARTITION_POLICY_CHOICES}, "
                 f"got {self.partition_policy!r}")
        if self.personalization is not None:
            _validate_personalization(self.personalization)

    @property
    def segment_names(self) -> tuple:
        """Declared personalisation segment names, in declaration order."""
        if not self.personalization:
            return ()
        return tuple(self.personalization.keys())

    def require_method(self):
        """The registered method callable this config names.

        Raises :class:`ValidationError` (listing what is available) when
        the method is unknown — the run-time half of validation, deferred
        so plugins can register methods after configs referencing them
        were built.
        """
        from .registry import get_method

        return get_method(self.method)

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    @property
    def effective_site_damping(self) -> float:
        """``site_damping``, defaulted to ``damping``."""
        return self.damping if self.site_damping is None else self.site_damping

    @property
    def wants_auto_backend(self) -> bool:
        """Whether the engine should pick the backend per batch."""
        return self.executor == "auto" or self.n_jobs == "auto"

    def replace(self, **changes: Any) -> "RankingConfig":
        """A copy of this config with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The config as a plain ``{field: value}`` dict (all scalars)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, mapping: Dict[str, Any]) -> "RankingConfig":
        """Build (and validate) a config from a plain mapping.

        Unknown keys are rejected rather than ignored: a typo like
        ``dampling = 0.9`` must fail loudly, not silently fall back to the
        default.
        """
        if not isinstance(mapping, dict):
            raise ValidationError(
                f"config must be a mapping, got {type(mapping).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValidationError(
                f"unknown config key{'s' if len(unknown) > 1 else ''}: "
                f"{', '.join(unknown)}; known keys: {', '.join(sorted(known))}")
        return cls(**mapping)

    def save(self, path: str | os.PathLike) -> None:
        """Write the config to *path* (``.json`` or ``.toml`` by suffix)."""
        save_config_mapping(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RankingConfig":
        """Read and validate a config file (``.json`` or ``.toml``)."""
        return cls.from_dict(load_config_mapping(path))

    def to_toml(self) -> str:
        """The config as a TOML document (``None`` fields omitted)."""
        from ..io.config_io import dumps_toml

        return dumps_toml(self.to_dict())
