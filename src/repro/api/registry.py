"""The pluggable ranking-method registry.

Ranking algorithms used to be hard-coded call sites: the CLI dispatched on
``--method`` strings, the benchmarks imported each algorithm by hand, and
adding a scheme meant touching every layer.  The registry turns them into
discoverable plugins with one shared signature::

    @register_method("my-scheme")
    def my_scheme(docgraph, config, *, executor=None, n_jobs=None,
                  warm=None, **options):
        ...
        return WebRankingResult(...)

Every method receives the :class:`~repro.web.docgraph.DocGraph` to rank and
the :class:`~repro.api.RankingConfig` driving the run; the keyword
arguments carry the engine backend (resolved by the caller from the
config), optional warm-start state, and any method-specific extras the
caller forwarded (e.g. personalisation vectors for the layered method).
Methods that have no use for a given keyword simply ignore it.

The built-in methods — ``"layered"``, ``"flat"`` (alias ``"pagerank"``),
``"blockrank"``, ``"hits"`` — are registered by :mod:`repro.api.methods`
at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ValidationError

#: Signature every registered method implements:
#: ``fn(docgraph, config, *, executor=None, n_jobs=None, warm=None, **options)``
#: returning a :class:`~repro.web.pipeline.WebRankingResult`.
RankingMethod = Callable[..., object]

_REGISTRY: Dict[str, RankingMethod] = {}

#: Alias name -> canonical name (e.g. ``"pagerank"`` -> ``"flat"``).
_ALIASES: Dict[str, str] = {}


def register_method(name: str, *, aliases: tuple = (),
                    uses_engine: bool = True
                    ) -> Callable[[RankingMethod], RankingMethod]:
    """Class of decorators that add a ranking method to the registry.

    Parameters
    ----------
    name:
        Canonical method name (the value of ``RankingConfig.method``).
    aliases:
        Additional names resolving to the same method.
    uses_engine:
        Whether the method schedules work through the execution engine
        (i.e. honours the ``executor``/``n_jobs`` keywords).  Single-
        vector methods that run inline should pass ``False`` so the
        facade neither builds an executor for them nor records one in
        the result's provenance.

    Raises
    ------
    ValidationError
        If *name* (or an alias) is already registered — shadowing an
        existing method silently is exactly the kind of action-at-a-
        distance the registry exists to prevent.
    """
    if not name or not isinstance(name, str):
        raise ValidationError("method name must be a non-empty string")

    def decorator(fn: RankingMethod) -> RankingMethod:
        for candidate in (name, *aliases):
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ValidationError(
                    f"ranking method {candidate!r} is already registered; "
                    f"unregister it first to replace it")
        fn.uses_engine = uses_engine
        _REGISTRY[name] = fn
        for alias in aliases:
            _ALIASES[alias] = name
        return fn

    return decorator


def unregister_method(name: str) -> None:
    """Remove a method or alias name; no-op when absent.

    Exists so tests and downstream plugins can replace a method without
    tripping the duplicate-registration guard.  Given a canonical name,
    the method and every alias pointing at it are removed; given an alias,
    only that alias is removed (the canonical method survives).
    """
    if name in _ALIASES:
        del _ALIASES[name]
        return
    _REGISTRY.pop(name, None)
    for alias in [a for a, target in _ALIASES.items() if target == name]:
        del _ALIASES[alias]


def resolve_method_name(name: str) -> str:
    """Canonicalise *name* through the alias table (no existence check)."""
    return _ALIASES.get(name, name)


def get_method(name: str) -> RankingMethod:
    """Look up a registered method by name or alias.

    Raises
    ------
    ValidationError
        If no such method exists; the message lists what is available so a
        typo in a config file is a one-glance fix.
    """
    canonical = resolve_method_name(name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise ValidationError(
            f"unknown ranking method {name!r}; available methods: "
            f"{', '.join(available_methods())}") from None


def available_methods() -> List[str]:
    """Sorted canonical names of every registered method."""
    return sorted(_REGISTRY)
