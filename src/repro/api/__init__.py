"""The unified public API: declarative config, method registry, one facade.

The package's primary surface as of 1.2.  Three pieces:

* :class:`RankingConfig` — a validated, frozen, serialisable description
  of a whole ranking deployment (method, damping, tolerance, executor
  backend, warm-start policy, serving/distributed options) with JSON and
  TOML round-trip via :mod:`repro.io`;
* the **method registry** — ranking algorithms as discoverable plugins
  (:func:`register_method` / :func:`available_methods`); the built-ins
  ``"layered"``, ``"flat"`` (alias ``"pagerank"``), ``"blockrank"`` and
  ``"hits"`` register themselves on import;
* :class:`Ranker` — the fluent facade: ``Ranker(config).fit(docgraph)``
  returns a unified :class:`RankingResult` (scores, ``top_k``,
  provenance, timings), and the ``.incremental()`` / ``.distributed()`` /
  ``.serve()`` adapters construct the incremental ranker, the peer
  simulation, and the query service from the same config.

Quickstart::

    from repro.api import Ranker, RankingConfig
    from repro.graphgen import generate_synthetic_web

    web = generate_synthetic_web(n_sites=10, n_documents=500)
    result = Ranker(RankingConfig(method="layered", executor="auto")).fit(web)
    print(result.top_k_urls(5))

The pre-1.2 entry points (``repro.web.layered_docrank`` and friends) were
removed in 1.4 after one deprecation cycle; this facade is the only
supported way in.
"""

from .config import (
    ARCHITECTURE_CHOICES,
    EXECUTOR_CHOICES,
    PARTITION_POLICY_CHOICES,
    RULE_CHOICES,
    RankingConfig,
)
from .registry import (
    RankingMethod,
    available_methods,
    get_method,
    register_method,
    resolve_method_name,
    unregister_method,
)
from . import methods as _builtin_methods  # noqa: F401  (registers built-ins)
from .ranker import Ranker
from .result import RankingResult

__all__ = [
    "ARCHITECTURE_CHOICES",
    "EXECUTOR_CHOICES",
    "PARTITION_POLICY_CHOICES",
    "RULE_CHOICES",
    "RankingConfig",
    "RankingMethod",
    "available_methods",
    "get_method",
    "register_method",
    "resolve_method_name",
    "unregister_method",
    "Ranker",
    "RankingResult",
]
