"""PageRank as a linear system: Jacobi and Gauss–Seidel solvers.

Langville & Meyer ("Deeper inside PageRank", cited by the paper for the
maximal/minimal-irreducibility equivalence) observe that the PageRank vector
also solves the linear system

    ``x (I − f·M) = (1 − f) v``      (up to normalisation)

which opens the door to classical stationary iterative solvers.  We provide
Jacobi (mathematically identical to the damped power iteration, kept for the
equivalence test and as a didactic baseline) and Gauss–Seidel (which uses
already-updated components within a sweep; whether that beats the power
method depends on the chain's sub-dominant eigenvalue and on the sweep
ordering — both behaviours are exercised by the tests).  The solvers return
the same vector as the power method on the maximally-irreducible matrix, a
property verified for random inputs.

These solvers operate on the *dangling-patched* row-stochastic matrix ``M``;
for graphs with dangling nodes use
:func:`repro.linalg.stochastic.transition_matrix` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .._validation import (
    ensure_distribution,
    ensure_probability,
    ensure_row_stochastic,
    is_sparse,
)
from ..exceptions import ConvergenceError, ValidationError
from .power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from .stochastic import uniform_distribution


@dataclass
class LinearSolveResult:
    """Result of a linear-system PageRank solve."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    method: str = "jacobi"

    def top_k(self, k: int) -> List[int]:
        """The ``k`` highest-scoring indices, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [int(i) for i in order[:k]]


def _prepare(transition, damping, preference):
    ensure_row_stochastic(transition, name="transition")
    damping = ensure_probability(damping, name="damping")
    n = transition.shape[0]
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = ensure_distribution(preference, name="preference")
        if v.size != n:
            raise ValidationError(
                f"preference has length {v.size}, expected {n}")
    matrix = (transition.tocsc() if is_sparse(transition)
              else np.asarray(transition, dtype=float))
    return matrix, damping, v, n


def jacobi_pagerank(transition, damping: float = 0.85,
                    preference: Optional[np.ndarray] = None, *,
                    tol: float = DEFAULT_TOL,
                    max_iter: int = DEFAULT_MAX_ITER) -> LinearSolveResult:
    """Solve ``x = f·xM + (1−f)·v`` with Jacobi iteration.

    Every component of the new iterate is computed from the *previous*
    iterate, which makes each sweep identical to one damped power-method
    step — a fact the test suite verifies.
    """
    matrix, damping, v, n = _prepare(transition, damping, preference)
    x = v.copy()
    residuals: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if is_sparse(matrix):
            new_x = damping * np.asarray(x @ matrix).ravel() + (1 - damping) * v
        else:
            new_x = damping * (x @ matrix) + (1 - damping) * v
        residual = float(np.abs(new_x - x).sum())
        residuals.append(residual)
        x = new_x
        if residual < tol:
            converged = True
            break
    if not converged:
        raise ConvergenceError(
            f"Jacobi iteration did not converge within {max_iter} sweeps",
            iterations=iterations, residual=residuals[-1])
    total = x.sum()
    return LinearSolveResult(scores=x / total if total > 0 else x,
                             iterations=iterations, converged=converged,
                             residuals=residuals, method="jacobi")


def gauss_seidel_pagerank(transition, damping: float = 0.85,
                          preference: Optional[np.ndarray] = None, *,
                          tol: float = DEFAULT_TOL,
                          max_iter: int = DEFAULT_MAX_ITER,
                          ) -> LinearSolveResult:
    """Solve the PageRank linear system with Gauss–Seidel sweeps.

    Component ``j`` of the new iterate uses the already-updated components
    ``0..j-1`` of the current sweep:

        ``x_j ← [ (1−f)·v_j + f·Σ_{i≠j} x_i M_{ij} ] / (1 − f·M_{jj})``

    Convergence is guaranteed because ``I − f·M'`` is strictly diagonally
    dominant by columns for ``f < 1``.
    """
    matrix, damping, v, n = _prepare(transition, damping, preference)
    if damping >= 1.0:
        raise ValidationError("Gauss-Seidel requires damping < 1")
    # Column access: we need, for each j, the column M[:, j].
    columns = matrix if is_sparse(matrix) else np.asarray(matrix)
    x = v.copy()
    residuals: List[float] = []
    converged = False
    iterations = 0
    diag = (columns.diagonal() if is_sparse(columns)
            else np.diag(columns)).astype(float)
    for iterations in range(1, max_iter + 1):
        previous = x.copy()
        for j in range(n):
            if is_sparse(columns):
                column = columns.getcol(j)
                dot = float(column.T @ x) - diag[j] * x[j]
            else:
                dot = float(columns[:, j] @ x) - diag[j] * x[j]
            x[j] = ((1 - damping) * v[j] + damping * dot) \
                / (1.0 - damping * diag[j])
        residual = float(np.abs(x - previous).sum())
        residuals.append(residual)
        if residual < tol:
            converged = True
            break
    if not converged:
        raise ConvergenceError(
            f"Gauss-Seidel did not converge within {max_iter} sweeps",
            iterations=iterations, residual=residuals[-1])
    total = x.sum()
    return LinearSolveResult(scores=x / total if total > 0 else x,
                             iterations=iterations, converged=converged,
                             residuals=residuals, method="gauss-seidel")
