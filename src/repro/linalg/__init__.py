"""Stochastic linear-algebra substrate.

Everything in this subpackage is generic Markov-chain numerics with no
knowledge of the web: stochastic-matrix construction, power iteration, and
Perron–Frobenius structure tests.  Higher layers (:mod:`repro.pagerank`,
:mod:`repro.core`, :mod:`repro.web`) build on these primitives.
"""

from .block_solver import (
    BlockSolveResult,
    PackedBlocks,
    pack_block_vectors,
    pack_blocks,
    solve_blocks,
)
from .layout import (
    ALIGNMENT,
    CSR_FAMILY,
    BumpLayout,
    align_offset,
    family_nbytes,
)
from .linear_solvers import (
    LinearSolveResult,
    gauss_seidel_pagerank,
    jacobi_pagerank,
)
from .power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    PowerIterationResult,
    principal_eigenvector_dense,
    stationary_distribution,
    stationary_distribution_dangling_aware,
)
from .perron import (
    is_aperiodic,
    is_irreducible,
    is_positive,
    is_primitive,
    period,
    spectral_gap,
)
from .sparse_utils import (
    block_diagonal,
    coo_from_edges,
    empty_adjacency,
    in_degrees,
    nnz,
    out_degrees,
    submatrix,
)
from .stochastic import (
    dangling_nodes,
    is_row_stochastic,
    is_sub_stochastic,
    random_stochastic_matrix,
    row_normalize,
    to_column_stochastic,
    transition_matrix,
    uniform_distribution,
)

__all__ = [
    "BlockSolveResult",
    "PackedBlocks",
    "pack_block_vectors",
    "pack_blocks",
    "solve_blocks",
    "ALIGNMENT",
    "CSR_FAMILY",
    "BumpLayout",
    "align_offset",
    "family_nbytes",
    "LinearSolveResult",
    "gauss_seidel_pagerank",
    "jacobi_pagerank",
    "DEFAULT_MAX_ITER",
    "DEFAULT_TOL",
    "PowerIterationResult",
    "principal_eigenvector_dense",
    "stationary_distribution",
    "stationary_distribution_dangling_aware",
    "is_aperiodic",
    "is_irreducible",
    "is_positive",
    "is_primitive",
    "period",
    "spectral_gap",
    "block_diagonal",
    "coo_from_edges",
    "empty_adjacency",
    "in_degrees",
    "nnz",
    "out_degrees",
    "submatrix",
    "dangling_nodes",
    "is_row_stochastic",
    "is_sub_stochastic",
    "random_stochastic_matrix",
    "row_normalize",
    "to_column_stochastic",
    "transition_matrix",
    "uniform_distribution",
]
