"""Perron–Frobenius structure tests: irreducibility, aperiodicity, primitivity.

The paper's theory rests on primitivity: Lemma 2 shows the global matrix
``W`` is primitive when the phase matrix ``Y`` is primitive and the
gatekeeper transition values are positive, and Theorem 2 requires ``Y``
primitive.  These predicates let both the library and its tests check the
hypotheses explicitly instead of assuming them.

A non-negative square matrix is

* **irreducible** when its directed adjacency graph is strongly connected;
* **aperiodic** when the gcd of its cycle lengths is 1;
* **primitive** when it is irreducible *and* aperiodic — equivalently
  (Meyer, 2000) when some power ``M^p`` is strictly positive.
"""

from __future__ import annotations

from math import gcd
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from .._validation import ensure_nonnegative, ensure_square, is_sparse
from ..exceptions import ValidationError


def _boolean_sparse(matrix) -> sp.csr_matrix:
    """Return the boolean structure of *matrix* as CSR."""
    if is_sparse(matrix):
        structure = matrix.tocsr().copy()
    else:
        structure = sp.csr_matrix(np.asarray(matrix, dtype=float))
    structure.data = np.ones_like(structure.data)
    structure.eliminate_zeros()
    return structure


def is_irreducible(matrix) -> bool:
    """Return ``True`` when the matrix's directed graph is strongly connected."""
    ensure_square(matrix, name="matrix")
    ensure_nonnegative(matrix, name="matrix")
    n = matrix.shape[0]
    if n == 1:
        # A 1x1 matrix is irreducible iff its single entry is non-zero
        # (the single state must be able to reach itself).
        value = matrix[0, 0] if not is_sparse(matrix) else matrix.tocsr()[0, 0]
        return float(value) > 0.0
    structure = _boolean_sparse(matrix)
    n_components, _ = connected_components(structure, directed=True,
                                           connection="strong")
    return n_components == 1


def period(matrix) -> int:
    """Return the period of an irreducible non-negative matrix.

    The period is the gcd of the lengths of all directed cycles.  It is
    computed with a breadth-first labelling: assign every node a level from a
    root, and fold ``level(u) + 1 - level(v)`` into a running gcd for every
    edge ``u -> v``.

    Raises
    ------
    ValidationError
        If the matrix is not irreducible (the period of a reducible matrix is
        not well defined as a single number).
    """
    if not is_irreducible(matrix):
        raise ValidationError("period is only defined for irreducible matrices")
    structure = _boolean_sparse(matrix)
    n = structure.shape[0]
    indptr, indices = structure.indptr, structure.indices

    levels = np.full(n, -1, dtype=np.int64)
    levels[0] = 0
    queue = [0]
    current_gcd = 0
    while queue:
        next_queue = []
        for u in queue:
            for v in indices[indptr[u]:indptr[u + 1]]:
                if levels[v] < 0:
                    levels[v] = levels[u] + 1
                    next_queue.append(int(v))
                else:
                    current_gcd = gcd(current_gcd,
                                      int(levels[u] + 1 - levels[v]))
        queue = next_queue
    # Every edge must be folded in, including those discovered after BFS
    # finished labelling (tree edges contribute 0 which gcd ignores).
    rows, cols = structure.nonzero()
    for u, v in zip(rows, cols):
        current_gcd = gcd(current_gcd, int(levels[u] + 1 - levels[v]))
    return abs(current_gcd) if current_gcd != 0 else 1


def is_aperiodic(matrix) -> bool:
    """Return ``True`` when an irreducible matrix has period 1."""
    return period(matrix) == 1


def is_primitive(matrix, *, method: str = "structure",
                 max_power: Optional[int] = None) -> bool:
    """Test primitivity of a non-negative square matrix.

    Parameters
    ----------
    matrix:
        Non-negative square matrix (dense or sparse).
    method:
        ``"structure"`` (default) tests irreducibility + aperiodicity via the
        graph structure, which is exact and cheap.  ``"power"`` uses the
        textbook characterisation ``M^p > 0 for some p`` with the Wielandt
        bound ``p <= n^2 - 2n + 2``; only sensible for small dense matrices.
    max_power:
        Override for the power bound when ``method="power"``.
    """
    ensure_square(matrix, name="matrix")
    ensure_nonnegative(matrix, name="matrix")
    if method == "structure":
        if not is_irreducible(matrix):
            return False
        return is_aperiodic(matrix)
    if method == "power":
        n = matrix.shape[0]
        bound = max_power if max_power is not None else n * n - 2 * n + 2
        bound = max(bound, 1)
        dense = np.asarray(matrix.todense() if is_sparse(matrix) else matrix,
                           dtype=float)
        power = np.eye(n)
        structure = (dense > 0).astype(float)
        current = np.eye(n)
        for _ in range(bound):
            current = (current @ structure > 0).astype(float)
            if np.all(current > 0):
                return True
        del power
        return False
    raise ValidationError(f"unknown primitivity test method {method!r}")


def is_positive(matrix) -> bool:
    """Return ``True`` when every entry of *matrix* is strictly positive.

    A positive matrix is always primitive (paper, footnote 2), so this is the
    quick sufficient check used on the Google-style adjusted matrices.
    """
    ensure_square(matrix, name="matrix")
    if is_sparse(matrix):
        dense = np.asarray(matrix.todense(), dtype=float)
    else:
        dense = np.asarray(matrix, dtype=float)
    return bool(np.all(dense > 0.0))


def spectral_gap(matrix) -> float:
    """Return ``1 - |lambda_2|`` for a small dense stochastic matrix.

    The spectral gap governs the power method's convergence rate; the
    convergence benchmark (E11) reports it alongside iteration counts.  Only
    intended for matrices small enough for a dense eigendecomposition.
    """
    dense = np.asarray(matrix.todense() if is_sparse(matrix) else matrix,
                       dtype=float)
    values = np.linalg.eigvals(dense)
    magnitudes = np.sort(np.abs(values))[::-1]
    if magnitudes.size < 2:
        return 1.0
    return float(1.0 - magnitudes[1])
