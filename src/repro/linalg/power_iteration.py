"""Power iteration for stationary distributions of Markov chains.

This is the numerical workhorse of the whole package: PageRank, SiteRank,
local DocRanks, and the stationary distribution of the global LMM matrix
``W`` are all computed by iterating ``x_{k+1} = x_k @ P`` until the change
between successive iterates falls below a tolerance.

The solver reports a :class:`PowerIterationResult` carrying the full residual
history so that convergence benchmarks (experiment E11 in DESIGN.md) can be
produced without re-instrumenting the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from .. import obs
from .._validation import ensure_distribution, is_sparse
from ..exceptions import ConvergenceError, ValidationError
from .stochastic import uniform_distribution

#: Default convergence tolerance on the L1 norm of successive iterates.
DEFAULT_TOL: float = 1e-10

#: Default iteration budget.
DEFAULT_MAX_ITER: int = 1000


@dataclass
class PowerIterationResult:
    """Outcome of a power-iteration run.

    Attributes
    ----------
    vector:
        The converged probability distribution (L1-normalised).
    iterations:
        Number of iterations actually performed.
    converged:
        Whether the tolerance was met within the iteration budget.
    residuals:
        L1 distance between successive iterates, one entry per iteration
        (empty when the run recorded no history —
        ``record_residuals=False`` — in which case only the final residual
        is kept, in :attr:`last_residual`).
    tolerance:
        The tolerance the run targeted.
    """

    vector: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    tolerance: float = DEFAULT_TOL
    #: Residual of the final iteration, tracked even when the per-iteration
    #: history is not recorded (``record_residuals=False``).
    last_residual: float = float("inf")

    def __post_init__(self) -> None:
        if self.residuals and not np.isfinite(self.last_residual):
            self.last_residual = self.residuals[-1]

    @property
    def final_residual(self) -> float:
        """Residual of the last iteration (``inf`` when no iteration ran)."""
        return self.last_residual

    def __iter__(self):
        # Allow ``vector, iterations = result`` style unpacking.
        yield self.vector
        yield self.iterations


def stationary_distribution(transition, *, start: Optional[np.ndarray] = None,
                            tol: float = DEFAULT_TOL,
                            max_iter: int = DEFAULT_MAX_ITER,
                            raise_on_failure: bool = True,
                            callback: Optional[Callable[[int, float], None]] = None,
                            record_residuals: bool = True,
                            ) -> PowerIterationResult:
    """Compute the stationary distribution of a row-stochastic matrix.

    The iteration is ``x_{k+1} = x_k P`` where ``x`` is a row vector, i.e.
    the left principal eigenvector of ``P`` (equivalently the right principal
    eigenvector of ``P'`` used in the paper's Theorem 2 proof).

    Parameters
    ----------
    transition:
        Row-stochastic matrix (dense or sparse).
    start:
        Initial distribution; uniform when omitted.
    tol:
        L1 convergence tolerance on successive iterates.
    max_iter:
        Iteration budget.
    raise_on_failure:
        When ``True`` (default) a :class:`ConvergenceError` is raised if the
        budget is exhausted; when ``False`` the best iterate is returned with
        ``converged=False``.
    callback:
        Optional ``callback(iteration, residual)`` hook invoked after every
        iteration; used by the convergence benchmarks.
    record_residuals:
        Whether to keep the full residual history (default).  The engine's
        hot paths — which only consume the converged vector and the
        iteration count — pass ``False`` to skip the per-iteration list
        append; the final residual is always tracked either way.
    """
    n = transition.shape[0]
    if transition.shape[0] != transition.shape[1]:
        raise ValidationError(
            f"transition matrix must be square, got {transition.shape!r}")
    if max_iter < 1:
        raise ValidationError("max_iter must be at least 1")
    if tol <= 0:
        raise ValidationError("tol must be positive")

    if start is None:
        x = uniform_distribution(n)
    else:
        x = ensure_distribution(start, name="start").copy()
        if x.size != n:
            raise ValidationError(
                f"start vector has length {x.size}, expected {n}")

    matrix = transition.tocsr() if is_sparse(transition) else np.asarray(
        transition, dtype=float)

    residuals: List[float] = []
    residual = float("inf")
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if is_sparse(matrix):
            new_x = np.asarray(x @ matrix).ravel()
        else:
            new_x = x @ matrix
        # Guard against floating point drift away from the simplex.
        total = new_x.sum()
        if total > 0:
            new_x = new_x / total
        residual = float(np.abs(new_x - x).sum())
        if record_residuals:
            residuals.append(residual)
        x = new_x
        if callback is not None:
            callback(iterations, residual)
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"power iteration did not converge within {max_iter} iterations "
            f"(last residual {residual:.3e}, tol {tol:.3e})",
            iterations=iterations, residual=residual)

    # Telemetry is recorded once per run, after the loop — the hot loop
    # itself carries no instrumentation.
    obs.record_solver("power", iterations, residual, converged)
    return PowerIterationResult(vector=x, iterations=iterations,
                                converged=converged, residuals=residuals,
                                tolerance=tol, last_residual=residual)


def stationary_distribution_dangling_aware(
        link_matrix, damping: float, preference: Optional[np.ndarray] = None,
        *, dangling_weights: Optional[np.ndarray] = None,
        tol: float = DEFAULT_TOL, max_iter: int = DEFAULT_MAX_ITER,
        start: Optional[np.ndarray] = None,
        callback: Optional[Callable[[int, float], None]] = None,
        record_residuals: bool = True,
        ) -> PowerIterationResult:
    """Power iteration in the *matrix-free* PageRank form.

    Rather than materialising the dense Google matrix
    ``M̂ = f M + (1 - f) e v'`` this routine keeps only the sparse
    link-derived matrix and applies the rank-one teleportation and the
    dangling-node correction analytically each iteration:

    ``x_{k+1} = f x_k M + f (x_k · d) w + (1 - f) v``

    where ``d`` is the dangling indicator, ``w`` the dangling redistribution
    distribution and ``v`` the teleportation preference.  This is the form
    used for the large campus-web benchmarks; for small matrices it agrees
    with building ``M̂`` explicitly (a property exercised by the tests).

    Parameters
    ----------
    link_matrix:
        Row-normalised link matrix where dangling rows are *all zero*
        (i.e. the output of
        :func:`repro.linalg.stochastic.row_normalize` on the raw adjacency).
    damping:
        The damping factor ``f``.
    preference:
        Teleportation distribution ``v`` (uniform when omitted).
    dangling_weights:
        Distribution used to redistribute the mass of dangling rows
        (defaults to *preference*).
    """
    n = link_matrix.shape[0]
    if not 0.0 <= damping <= 1.0:
        raise ValidationError("damping must be in [0, 1]")
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = ensure_distribution(preference, name="preference")
        if v.size != n:
            raise ValidationError(
                f"preference has length {v.size}, expected {n}")
    if dangling_weights is None:
        w = v
    else:
        w = ensure_distribution(dangling_weights, name="dangling_weights")
        if w.size != n:
            raise ValidationError(
                f"dangling_weights has length {w.size}, expected {n}")

    matrix = link_matrix.tocsr() if is_sparse(link_matrix) else np.asarray(
        link_matrix, dtype=float)
    sums = (np.asarray(matrix.sum(axis=1)).ravel() if is_sparse(matrix)
            else matrix.sum(axis=1))
    dangling_mask = (sums == 0.0).astype(float)

    if start is None:
        x = uniform_distribution(n)
    else:
        x = ensure_distribution(start, name="start").copy()

    residuals: List[float] = []
    residual = float("inf")
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if is_sparse(matrix):
            linked = np.asarray(x @ matrix).ravel()
        else:
            linked = x @ matrix
        dangling_mass = float(x @ dangling_mask)
        new_x = damping * (linked + dangling_mass * w) + (1.0 - damping) * v
        total = new_x.sum()
        if total > 0:
            new_x = new_x / total
        residual = float(np.abs(new_x - x).sum())
        if record_residuals:
            residuals.append(residual)
        x = new_x
        if callback is not None:
            callback(iterations, residual)
        if residual < tol:
            converged = True
            break

    if not converged:
        raise ConvergenceError(
            f"matrix-free power iteration did not converge within {max_iter} "
            f"iterations (last residual {residual:.3e})",
            iterations=iterations, residual=residual)

    obs.record_solver("power_dangling", iterations, residual, converged)
    return PowerIterationResult(vector=x, iterations=iterations,
                                converged=converged, residuals=residuals,
                                tolerance=tol, last_residual=residual)


def principal_eigenvector_dense(matrix) -> np.ndarray:
    """Exact left principal eigenvector of a small dense stochastic matrix.

    Solves the eigenproblem with :func:`numpy.linalg.eig` and normalises the
    eigenvector associated with the eigenvalue closest to 1.  Intended only
    for small matrices in tests and for verifying the iterative solvers.
    """
    dense = np.asarray(matrix.todense() if sp.issparse(matrix) else matrix,
                       dtype=float)
    values, vectors = np.linalg.eig(dense.T)
    index = int(np.argmin(np.abs(values - 1.0)))
    vector = np.real(vectors[:, index])
    # The eigenvector sign is arbitrary; flip so the entries are non-negative.
    if vector.sum() < 0:
        vector = -vector
    vector = np.clip(vector, 0.0, None)
    total = vector.sum()
    if total == 0.0:
        raise ConvergenceError("principal eigenvector collapsed to zero")
    return vector / total
