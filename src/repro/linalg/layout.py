"""Buffer-family layout codec shared by arena segments and disk blocks.

The engine's shared-memory transport (:mod:`repro.engine.arena`) and the
on-disk graph store (:mod:`repro.io.diskgraph`) persist the same thing: the
``(data, indices, indptr)`` CSR buffer families and flat vectors of a web,
laid back to back into one contiguous byte span with every array start
aligned.  This module is the single home of that offset arithmetic — a
:class:`BumpLayout` places arrays the same way whether the span is a
``SharedMemory`` segment or a ``blocks.bin`` file, and the sizing helpers
budget the aligned form so a span sized from them can never overflow.

Keeping the codec in :mod:`repro.linalg` (a leaf package) lets both the
engine and the io layers import it without cycles.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import ValidationError

#: Byte alignment of every array start inside a laid-out span.
ALIGNMENT = 16

#: Canonical write order of a CSR buffer family inside a span.  Both the
#: arena (:meth:`repro.engine.arena.GraphArena.add_csr`) and the disk
#: format emit the three arrays in this order.
CSR_FAMILY = ("data", "indices", "indptr")


def align_offset(offset: int, alignment: int = ALIGNMENT) -> int:
    """Round *offset* up to the next multiple of *alignment*."""
    if alignment <= 0:
        raise ValidationError("alignment must be positive")
    return (offset + alignment - 1) // alignment * alignment


def family_nbytes(*payload_nbytes: int, alignment: int = ALIGNMENT) -> int:
    """Span bytes needed for a family of array payloads.

    Each payload is budgeted as its byte size plus one *alignment* of
    slack (the worst-case padding a :class:`BumpLayout` can insert before
    it), so a span sized with this helper always fits the family
    regardless of where the cursor currently sits.
    """
    return sum(int(nbytes) + alignment for nbytes in payload_nbytes)


class BumpLayout:
    """Bump allocator assigning aligned offsets inside one byte span.

    The layout is pure arithmetic: it never touches memory, it only
    answers "where does the next *nbytes*-sized array start?".  Callers
    copy their bytes to the returned offset — into a shared-memory buffer,
    a file, or anything else byte-addressable.

    With a *capacity* the layout also enforces bounds, raising
    :class:`~repro.exceptions.ValidationError` before the caller would
    write past the end of the span.
    """

    def __init__(self, capacity: Optional[int] = None, *,
                 alignment: int = ALIGNMENT, name: str = "layout") -> None:
        if alignment <= 0:
            raise ValidationError("alignment must be positive")
        if capacity is not None and capacity < 0:
            raise ValidationError("capacity must be non-negative")
        self._alignment = alignment
        self._capacity = capacity
        self._name = name
        self._cursor = 0

    @property
    def alignment(self) -> int:
        """Byte alignment of every placed array."""
        return self._alignment

    @property
    def capacity(self) -> Optional[int]:
        """Span size in bytes, or ``None`` when unbounded."""
        return self._capacity

    @property
    def used(self) -> int:
        """Bytes consumed so far (end offset of the last placed array)."""
        return self._cursor

    def place(self, nbytes: int) -> int:
        """Reserve *nbytes* at the next aligned offset; return that offset."""
        if nbytes < 0:
            raise ValidationError("array size must be non-negative")
        offset = align_offset(self._cursor, self._alignment)
        end = offset + int(nbytes)
        if self._capacity is not None and end > self._capacity:
            raise ValidationError(
                f"{self._name} overflow: need {end} bytes, "
                f"have {self._capacity}")
        self._cursor = end
        return offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BumpLayout(used={self.used}, capacity={self.capacity}, "
                f"alignment={self.alignment})")


__all__ = [
    "ALIGNMENT",
    "CSR_FAMILY",
    "BumpLayout",
    "align_offset",
    "family_nbytes",
]
