"""Helpers for building and inspecting scipy sparse matrices.

The web graphs used in the benchmarks contain up to a few hundred thousand
documents, so the adjacency and transition matrices must stay sparse.  These
utilities centralise the few sparse idioms the rest of the package needs so
that individual modules do not each grow their own scipy-format juggling.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import ValidationError
from .layout import ALIGNMENT, family_nbytes


def coo_from_edges(edges: Iterable[Tuple[int, int]], n: int,
                   *, weights: Sequence[float] | None = None,
                   sum_duplicates: bool = True) -> sp.csr_matrix:
    """Build an ``n x n`` CSR adjacency matrix from an iterable of edges.

    Parameters
    ----------
    edges:
        Iterable of ``(source, target)`` integer pairs; indices must lie in
        ``[0, n)``.
    n:
        Number of nodes.
    weights:
        Optional per-edge weights (defaults to 1.0 for every edge).
    sum_duplicates:
        When ``True`` (default) duplicate edges accumulate their weights,
        which is exactly the SiteLink-counting behaviour the paper requires
        when aggregating a DocGraph into a SiteGraph.
    """
    edge_list = list(edges)
    if n < 0:
        raise ValidationError("n must be non-negative")
    if weights is None:
        data = np.ones(len(edge_list), dtype=float)
    else:
        data = np.asarray(list(weights), dtype=float)
        if data.size != len(edge_list):
            raise ValidationError(
                f"got {len(edge_list)} edges but {data.size} weights")
    if edge_list:
        rows = np.fromiter((e[0] for e in edge_list), dtype=np.int64,
                           count=len(edge_list))
        cols = np.fromiter((e[1] for e in edge_list), dtype=np.int64,
                           count=len(edge_list))
        if rows.size and (rows.min() < 0 or cols.min() < 0
                          or rows.max() >= n or cols.max() >= n):
            raise ValidationError("edge endpoints must lie in [0, n)")
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    if sum_duplicates:
        matrix.sum_duplicates()
    return matrix.tocsr()


def out_degrees(adjacency) -> np.ndarray:
    """Return the (weighted) out-degree of every node."""
    if sp.issparse(adjacency):
        return np.asarray(adjacency.sum(axis=1)).ravel()
    return np.asarray(adjacency, dtype=float).sum(axis=1)


def in_degrees(adjacency) -> np.ndarray:
    """Return the (weighted) in-degree of every node."""
    if sp.issparse(adjacency):
        return np.asarray(adjacency.sum(axis=0)).ravel()
    return np.asarray(adjacency, dtype=float).sum(axis=0)


def nnz(matrix) -> int:
    """Return the number of structurally non-zero entries of a matrix."""
    if sp.issparse(matrix):
        return int(matrix.nnz)
    return int(np.count_nonzero(matrix))


def submatrix(matrix, indices: Sequence[int]):
    """Return the principal submatrix of *matrix* restricted to *indices*.

    Used to extract the per-site local link matrix ``G^s_d`` from the global
    DocGraph adjacency matrix.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if sp.issparse(matrix):
        return matrix.tocsr()[idx, :][:, idx]
    return np.asarray(matrix)[np.ix_(idx, idx)]


def csr_from_buffers(data, indices, indptr,
                     shape: Tuple[int, int]) -> sp.csr_matrix:
    """Build a CSR matrix over *externally owned* buffers, without copying.

    This is the attach side of the engine's shared-memory graph transport
    (:mod:`repro.engine.arena`): ``data`` / ``indices`` / ``indptr`` are
    numpy views over a mapped :class:`~multiprocessing.shared_memory.SharedMemory`
    segment, and the returned matrix reads them in place.  The caller owns
    the buffers' lifetime; scipy operations that would mutate the matrix
    copy first (the views are handed over read-only).

    The three arrays must already be in canonical CSR form — this function
    validates consistency (lengths, monotone ``indptr``) but never sorts
    or deduplicates, since that would write into memory it does not own.
    """
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if n_rows < 0 or n_cols < 0:
        raise ValidationError("shape must be non-negative")
    data = np.asarray(data)
    indices = np.asarray(indices)
    indptr = np.asarray(indptr)
    if indptr.size != n_rows + 1:
        raise ValidationError(
            f"indptr has length {indptr.size}, expected {n_rows + 1}")
    if data.size != indices.size:
        raise ValidationError(
            f"data ({data.size}) and indices ({indices.size}) must align")
    if indptr.size and int(indptr[-1]) != data.size:
        raise ValidationError(
            f"indptr[-1] is {int(indptr[-1])} but there are {data.size} "
            f"stored entries")
    return sp.csr_matrix((data, indices, indptr), shape=(n_rows, n_cols),
                         copy=False)


def csr_arena_nbytes(matrix, *, alignment: int = ALIGNMENT) -> int:
    """Bytes a CSR matrix's buffer family occupies in an aligned span.

    The sum of the three CSR array payloads plus one *alignment* slack per
    array (:func:`repro.linalg.layout.family_nbytes`).  Used to size arena
    segments and disk blocks, and as the by-value cost of shipping the
    matrix through pickle instead.
    """
    csr = matrix.tocsr()
    return family_nbytes(csr.data.nbytes, csr.indices.nbytes,
                         csr.indptr.nbytes, alignment=alignment)


def block_diagonal(blocks: Sequence) -> sp.csr_matrix:
    """Assemble square blocks into a block-diagonal sparse matrix.

    The LMM's collection of per-phase sub-state matrices ``U = {U^1..U^NP}``
    is naturally represented this way when a single global object is needed.
    """
    if not blocks:
        raise ValidationError("blocks must not be empty")
    return sp.block_diag([sp.csr_matrix(b) for b in blocks], format="csr")


def empty_adjacency(n: int) -> sp.csr_matrix:
    """Return an ``n x n`` all-zero CSR matrix."""
    if n < 0:
        raise ValidationError("n must be non-negative")
    return sp.csr_matrix((n, n), dtype=float)
