"""Batched power iteration over a block-diagonal matrix of small chains.

The layered method's step 3 solves one tiny PageRank problem per web site.
Each of those problems is cheap; what is expensive on a realistic web is
running *thousands* of them through a Python-level power-iteration loop —
per-site interpreter overhead dominates the linear algebra by an order of
magnitude.  This module removes that overhead by exploiting a trivial
identity: the power iteration of ``B`` mutually independent chains is the
power iteration of their block-diagonal direct sum.  Packing the per-site
``(adjacency, start, preference)`` triples into one block-diagonal CSR
turns ``B`` interpreter loops of tiny sparse products into a handful of
large fused SpMVs per sweep, with the per-block teleportation, dangling
correction, normalisation and residual computed vectorised via
:func:`numpy.add.reduceat` over the block offsets.

Convergence is still *per block*: each sweep computes every block's own L1
residual, and blocks that have met the tolerance are **frozen** — their
vector is fixed at its converged value and their rows are compacted out of
the active matrix, so late-converging sites never drag the whole batch.
This is the adaptive-PageRank idea (:mod:`repro.pagerank.adaptive`) applied
across sites instead of across pages.

Numerics match the per-site solvers: every block runs the damped update

``x⁺_b = f·(x_b·L_b + (x_b·d_b)·u_b) + (1 − f)·v_b``

(``L_b`` the row-normalised link matrix, ``d_b`` the dangling indicator,
``u_b`` the uniform dangling redistribution — the per-site dense path's
``dangling="uniform"`` policy — and ``v_b`` the teleport preference),
followed by per-block renormalisation and the per-block L1 residual test,
exactly the operations :func:`repro.linalg.power_iteration.stationary_distribution`
performs on the materialised Google matrix of each block.  The two code
paths therefore track each other to floating-point rounding; at a solver
tolerance of ``tol`` either path stops within ``tol·f/(1-f)`` of the true
stationary vector, so equality assertions between them are made at a
tolerance a couple of orders looser than ``tol`` (the batched-equivalence
tests and benchmark E15 run both paths at ``1e-13`` and assert agreement
within ``1e-12``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .. import obs
from .._validation import ensure_distribution, ensure_probability
from ..exceptions import ConvergenceError, ValidationError
from .power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from .stochastic import row_normalize


@dataclass
class PackedBlocks:
    """A batch of independent chains packed into one block-diagonal CSR.

    Attributes
    ----------
    matrix:
        Block-diagonal raw adjacency (weights, not yet normalised); block
        ``b`` occupies rows/columns ``offsets[b]:offsets[b+1]``.
    offsets:
        ``int64`` block boundaries, length ``n_blocks + 1``.
    start:
        Optional concatenated start distributions (each block's slice sums
        to 1); uniform per block when ``None``.
    preference:
        Optional concatenated teleport distributions; uniform per block
        when ``None``.
    """

    matrix: sp.csr_matrix
    offsets: np.ndarray
    start: Optional[np.ndarray] = None
    preference: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 2:
            raise ValidationError("offsets must hold at least one block")
        if int(self.offsets[0]) != 0:
            raise ValidationError("offsets must start at 0")
        if np.any(np.diff(self.offsets) <= 0):
            raise ValidationError("blocks must be non-empty and offsets "
                                  "strictly increasing")
        n = int(self.offsets[-1])
        if self.matrix.shape != (n, n):
            raise ValidationError(
                f"packed matrix has shape {self.matrix.shape!r}, expected "
                f"({n}, {n}) from the offsets")
        for name in ("start", "preference"):
            vector = getattr(self, name)
            if vector is not None and np.asarray(vector).size != n:
                raise ValidationError(
                    f"{name} has length {np.asarray(vector).size}, "
                    f"expected {n}")

    @property
    def n_blocks(self) -> int:
        """Number of packed blocks."""
        return self.offsets.size - 1

    @property
    def n_rows(self) -> int:
        """Total rows across all blocks."""
        return int(self.offsets[-1])

    @property
    def sizes(self) -> np.ndarray:
        """Per-block row counts."""
        return np.diff(self.offsets)

    def block_slice(self, block: int) -> slice:
        """The row range of one block."""
        return slice(int(self.offsets[block]), int(self.offsets[block + 1]))


def pack_blocks(blocks: Sequence) -> PackedBlocks:
    """Pack per-chain ``(adjacency, start, preference)`` triples.

    Each element of *blocks* is either a square adjacency matrix or a
    ``(adjacency, start, preference)`` triple whose ``start`` /
    ``preference`` entries may be ``None`` (uniform).  Start and preference
    vectors are validated per block exactly like the per-site solvers
    validate theirs, then concatenated; when no block supplies one the
    concatenated vector is omitted entirely.
    """
    if not blocks:
        raise ValidationError("blocks must not be empty")
    matrices: List[sp.csr_matrix] = []
    starts: List[Optional[np.ndarray]] = []
    preferences: List[Optional[np.ndarray]] = []
    sizes: List[int] = []
    for index, block in enumerate(blocks):
        if isinstance(block, tuple):
            if len(block) != 3:
                raise ValidationError(
                    f"block {index} must be (adjacency, start, preference), "
                    f"got a {len(block)}-tuple")
            adjacency, start, preference = block
        else:
            adjacency, start, preference = block, None, None
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValidationError(
                f"block {index} adjacency must be square, "
                f"got {adjacency.shape!r}")
        n = int(adjacency.shape[0])
        if n == 0:
            raise ValidationError(f"block {index} is empty")
        matrices.append(sp.csr_matrix(adjacency, dtype=float))
        sizes.append(n)
        for store, vector, name in ((starts, start, "start"),
                                    (preferences, preference, "preference")):
            if vector is None:
                store.append(None)
                continue
            vector = ensure_distribution(vector, name=f"block {index} {name}")
            if vector.size != n:
                raise ValidationError(
                    f"block {index} {name} has length {vector.size}, "
                    f"expected {n}")
            store.append(vector)

    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    matrix = (matrices[0] if len(matrices) == 1
              else sp.block_diag(matrices, format="csr"))
    return PackedBlocks(matrix=matrix.tocsr(), offsets=offsets,
                        start=_concat_optional(starts, sizes),
                        preference=_concat_optional(preferences, sizes))


def _concat_optional(vectors: Sequence[Optional[np.ndarray]],
                     sizes: Sequence[int]) -> Optional[np.ndarray]:
    """Concatenate optional per-block vectors (uniform fill; None when all absent)."""
    if all(vector is None for vector in vectors):
        return None
    return np.concatenate([
        np.full(size, 1.0 / size) if vector is None else vector
        for vector, size in zip(vectors, sizes)])


@dataclass
class BlockSolveResult:
    """Outcome of one fused multi-block power-iteration run.

    Attributes
    ----------
    vectors:
        Per-block stationary distributions, in block order.
    iterations:
        Sweep index at which each block froze (its individual iteration
        count — the fused run performs ``max(iterations)`` sweeps).
    converged:
        Whether each block met the tolerance within the budget.
    final_residuals:
        Each block's L1 residual at its last update.
    sweeps:
        Fused iterations the batch executed.
    active_history:
        Number of still-active (unfrozen) blocks entering each sweep —
        the freezing diagnostic benchmark E15 plots.
    residuals:
        Per-block residual histories; only populated when the solver ran
        with ``record_residuals=True`` (off by default: the engine's hot
        paths need no per-iteration appends).
    tolerance:
        The tolerance the run targeted.
    """

    vectors: List[np.ndarray]
    iterations: np.ndarray
    converged: np.ndarray
    final_residuals: np.ndarray
    sweeps: int
    active_history: List[int] = field(default_factory=list)
    residuals: Optional[List[List[float]]] = None
    tolerance: float = DEFAULT_TOL

    @property
    def n_blocks(self) -> int:
        """Number of solved blocks."""
        return len(self.vectors)

    @property
    def total_iterations(self) -> int:
        """Per-block iteration counts summed (comparable to per-site runs)."""
        return int(self.iterations.sum())


def solve_blocks(packed: PackedBlocks, damping: float, *,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER,
                 record_residuals: bool = False,
                 raise_on_failure: bool = True) -> BlockSolveResult:
    """Run one fused damped power iteration over every packed block.

    Parameters
    ----------
    packed:
        The block-diagonal batch (see :func:`pack_blocks`).
    damping:
        Damping factor ``f`` shared by every block.
    tol:
        Per-block L1 convergence tolerance; a block freezes (stops being
        updated, and is compacted out of the active matrix) the sweep its
        own residual first drops below this.
    max_iter:
        Sweep budget; blocks still active when it is exhausted are
        reported unconverged (or raise, per *raise_on_failure*).
    record_residuals:
        Keep each block's full residual history.  Off by default — the
        history is a per-sweep list append the engine's hot paths do not
        want to pay; benchmarks switch it on.
    raise_on_failure:
        Raise :class:`~repro.exceptions.ConvergenceError` when any block
        exhausts the budget (mirrors the per-site solvers); when false the
        best iterate is returned with ``converged=False`` for that block.
    """
    damping = ensure_probability(damping, name="damping")
    if tol <= 0:
        raise ValidationError("tol must be positive")
    if max_iter < 1:
        raise ValidationError("max_iter must be at least 1")

    n_blocks = packed.n_blocks
    n_total = packed.n_rows
    sizes = packed.sizes.copy()
    offsets = packed.offsets.copy()

    link = row_normalize(packed.matrix).tocsr()
    row_sums = np.asarray(link.sum(axis=1)).ravel()
    dangling = (row_sums == 0.0).astype(float)
    # Uniform-within-block dangling redistribution and (default) teleport —
    # the same policies the per-site dense path applies.
    uniform = np.repeat(1.0 / sizes, sizes)
    teleport = (uniform if packed.preference is None
                else np.asarray(packed.preference, dtype=float).copy())
    if packed.start is None:
        x = uniform.copy()
    else:
        x = np.asarray(packed.start, dtype=float).copy()

    # Frozen blocks are compacted out of the active row set, but columns
    # keep their original positions (CSR row gathering is cheap; column
    # slicing is not): each sweep's SpMV produces a full-width vector and
    # ``entry_ids`` gathers the active entries back out of it.
    entry_ids = np.arange(n_total, dtype=np.int64)
    block_ids = np.arange(n_blocks, dtype=np.int64)

    vectors: List[Optional[np.ndarray]] = [None] * n_blocks
    iterations = np.zeros(n_blocks, dtype=np.int64)
    converged = np.zeros(n_blocks, dtype=bool)
    final_residuals = np.full(n_blocks, np.inf)
    history: Optional[List[List[float]]] = (
        [[] for _ in range(n_blocks)] if record_residuals else None)
    active_history: List[int] = []

    sweeps = 0
    while block_ids.size and sweeps < max_iter:
        sweeps += 1
        active_history.append(int(block_ids.size))
        starts = offsets[:-1]

        linked = np.asarray(x @ link).ravel()[entry_ids]
        dangling_mass = np.add.reduceat(x * dangling, starts)
        new_x = (damping * (linked + np.repeat(dangling_mass, sizes) * uniform)
                 + (1.0 - damping) * teleport)
        totals = np.add.reduceat(new_x, starts)
        # Guard against floating point drift away from the simplex (a
        # per-block echo of the per-site solver's ``total > 0`` guard).
        new_x = new_x / np.repeat(np.where(totals > 0.0, totals, 1.0), sizes)
        residuals = np.add.reduceat(np.abs(new_x - x), starts)
        x = new_x

        if history is not None:
            for block, residual in zip(block_ids, residuals):
                history[block].append(float(residual))
        final_residuals[block_ids] = residuals
        iterations[block_ids] = sweeps

        frozen = residuals < tol
        if not frozen.any():
            continue
        for position in np.flatnonzero(frozen):
            block = int(block_ids[position])
            converged[block] = True
            vectors[block] = x[offsets[position]:offsets[position + 1]].copy()
        # Compact every still-active block's rows (and per-entry state) so
        # the next sweep's SpMV only touches unconverged sites.
        keep_blocks = ~frozen
        keep_entries = np.repeat(keep_blocks, sizes)
        block_ids = block_ids[keep_blocks]
        sizes = sizes[keep_blocks]
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        x = x[keep_entries]
        dangling = dangling[keep_entries]
        uniform = uniform[keep_entries]
        teleport = teleport[keep_entries]
        entry_ids = entry_ids[keep_entries]
        link = link[keep_entries]

    # Blocks that never froze keep their best iterate.
    for position, block in enumerate(block_ids):
        vectors[int(block)] = x[offsets[position]:offsets[position + 1]].copy()

    if block_ids.size and raise_on_failure:
        worst = int(block_ids[int(np.argmax(
            final_residuals[block_ids]))])
        raise ConvergenceError(
            f"{block_ids.size} of {n_blocks} blocks did not converge within "
            f"{max_iter} iterations (worst: block {worst} at residual "
            f"{final_residuals[worst]:.3e}, tol {tol:.3e})",
            iterations=max_iter, residual=float(final_residuals[worst]))

    # Telemetry is recorded once per run, after the sweep loop — the fused
    # kernel itself carries no instrumentation.
    if obs.enabled():
        worst_residual = (float(final_residuals.max())
                          if final_residuals.size else 0.0)
        obs.record_solver("block", int(iterations.sum()), worst_residual,
                          bool(converged.all()))
        obs.inc("block_solver_runs_total")
        obs.inc("block_solver_blocks_total", float(n_blocks))
        obs.inc("block_solver_sweeps_total", float(sweeps))
        obs.observe("block_solver_sweeps", float(sweeps))
        # Sites frozen during each sweep: the drop in active-block count
        # between consecutive sweep entries (the last sweep freezes down
        # to whatever remained unconverged).
        remaining = [*active_history[1:], int(block_ids.size)]
        for entering, left in zip(active_history, remaining):
            obs.observe("block_solver_frozen_per_sweep",
                        float(entering - left))

    return BlockSolveResult(
        vectors=[vector for vector in vectors],  # type: ignore[misc]
        iterations=iterations, converged=converged,
        final_residuals=final_residuals, sweeps=sweeps,
        active_history=active_history, residuals=history, tolerance=tol)


__all__ = [
    "BlockSolveResult",
    "PackedBlocks",
    "pack_blocks",
    "solve_blocks",
]
