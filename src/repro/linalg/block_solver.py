"""Batched power iteration over a block-diagonal matrix of small chains.

The layered method's step 3 solves one tiny PageRank problem per web site.
Each of those problems is cheap; what is expensive on a realistic web is
running *thousands* of them through a Python-level power-iteration loop —
per-site interpreter overhead dominates the linear algebra by an order of
magnitude.  This module removes that overhead by exploiting a trivial
identity: the power iteration of ``B`` mutually independent chains is the
power iteration of their block-diagonal direct sum.  Packing the per-site
``(adjacency, start, preference)`` triples into one block-diagonal CSR
turns ``B`` interpreter loops of tiny sparse products into a handful of
large fused SpMVs per sweep, with the per-block teleportation, dangling
correction, normalisation and residual computed vectorised via
:func:`numpy.add.reduceat` over the block offsets.

Convergence is still *per block*: each sweep computes every block's own L1
residual, and blocks that have met the tolerance are **frozen** — their
vector is fixed at its converged value and their rows are compacted out of
the active matrix, so late-converging sites never drag the whole batch.
This is the adaptive-PageRank idea (:mod:`repro.pagerank.adaptive`) applied
across sites instead of across pages.

Numerics match the per-site solvers: every block runs the damped update

``x⁺_b = f·(x_b·L_b + (x_b·d_b)·u_b) + (1 − f)·v_b``

(``L_b`` the row-normalised link matrix, ``d_b`` the dangling indicator,
``u_b`` the uniform dangling redistribution — the per-site dense path's
``dangling="uniform"`` policy — and ``v_b`` the teleport preference),
followed by per-block renormalisation and the per-block L1 residual test,
exactly the operations :func:`repro.linalg.power_iteration.stationary_distribution`
performs on the materialised Google matrix of each block.  The two code
paths therefore track each other to floating-point rounding; at a solver
tolerance of ``tol`` either path stops within ``tol·f/(1-f)`` of the true
stationary vector, so equality assertions between them are made at a
tolerance a couple of orders looser than ``tol`` (the batched-equivalence
tests and benchmark E15 run both paths at ``1e-13`` and assert agreement
within ``1e-12``).

Multi-vector solves (SpMM)
--------------------------

Personalisation changes only the teleport vector, never the matrix, so K
preference vectors can share every matrix traversal: ``start`` and
``preference`` may be ``(n_rows, K)`` matrices, in which case each sweep
performs one sparse-matrix × dense-matrix product (SpMM) that advances all
``K`` columns at once.  Convergence freezing generalises to per-(block,
column) granularity — a converged column is pinned at its value while its
siblings keep iterating, and a block's rows compact out of the active
matrix only once *all* of its columns have converged.  Benchmark E17
measures the amortisation against K sequential single-vector solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .. import obs
from .._validation import ensure_distribution, ensure_probability
from ..exceptions import ConvergenceError, ValidationError
from .power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from .stochastic import row_normalize


@dataclass
class PackedBlocks:
    """A batch of independent chains packed into one block-diagonal CSR.

    Attributes
    ----------
    matrix:
        Block-diagonal raw adjacency (weights, not yet normalised); block
        ``b`` occupies rows/columns ``offsets[b]:offsets[b+1]``.
    offsets:
        ``int64`` block boundaries, length ``n_blocks + 1``.
    start:
        Optional concatenated start distributions (each block's slice sums
        to 1); uniform per block when ``None``.  May be an ``(n_rows, K)``
        matrix carrying one start column per preference vector.
    preference:
        Optional concatenated teleport distributions; uniform per block
        when ``None``.  May be an ``(n_rows, K)`` matrix — one teleport
        column per personalisation segment — in which case
        :func:`solve_blocks` runs the fused multi-vector (SpMM) path.
    """

    matrix: sp.csr_matrix
    offsets: np.ndarray
    start: Optional[np.ndarray] = None
    preference: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 2:
            raise ValidationError("offsets must hold at least one block")
        if int(self.offsets[0]) != 0:
            raise ValidationError("offsets must start at 0")
        if np.any(np.diff(self.offsets) <= 0):
            raise ValidationError("blocks must be non-empty and offsets "
                                  "strictly increasing")
        n = int(self.offsets[-1])
        if self.matrix.shape != (n, n):
            raise ValidationError(
                f"packed matrix has shape {self.matrix.shape!r}, expected "
                f"({n}, {n}) from the offsets")
        widths = []
        for name in ("start", "preference"):
            vector = getattr(self, name)
            if vector is None:
                continue
            array = np.asarray(vector)
            if array.ndim == 1:
                if array.size != n:
                    raise ValidationError(
                        f"{name} has length {array.size}, expected {n}")
            elif array.ndim == 2:
                if array.shape[0] != n:
                    raise ValidationError(
                        f"{name} has {array.shape[0]} rows, expected {n}")
                if array.shape[1] < 1:
                    raise ValidationError(f"{name} must have at least one "
                                          f"column")
                widths.append(int(array.shape[1]))
            else:
                raise ValidationError(
                    f"{name} must be a vector or (n_rows, K) matrix, got "
                    f"{array.ndim} dimensions")
        if len(widths) == 2 and widths[0] != widths[1]:
            raise ValidationError(
                f"start and preference disagree on the number of vectors "
                f"({widths[0]} vs {widths[1]})")

    @property
    def n_blocks(self) -> int:
        """Number of packed blocks."""
        return self.offsets.size - 1

    @property
    def n_rows(self) -> int:
        """Total rows across all blocks."""
        return int(self.offsets[-1])

    @property
    def sizes(self) -> np.ndarray:
        """Per-block row counts."""
        return np.diff(self.offsets)

    @property
    def n_vectors(self) -> int:
        """Number of solve columns K (1 for the classic single-vector batch)."""
        for vector in (self.preference, self.start):
            if vector is not None:
                array = np.asarray(vector)
                if array.ndim == 2:
                    return int(array.shape[1])
        return 1

    def block_slice(self, block: int) -> slice:
        """The row range of one block."""
        return slice(int(self.offsets[block]), int(self.offsets[block + 1]))


def pack_blocks(blocks: Sequence) -> PackedBlocks:
    """Pack per-chain ``(adjacency, start, preference)`` triples.

    Each element of *blocks* is either a square adjacency matrix or a
    ``(adjacency, start, preference)`` triple whose ``start`` /
    ``preference`` entries may be ``None`` (uniform).  Start and preference
    vectors are validated per block exactly like the per-site solvers
    validate theirs, then concatenated; when no block supplies one the
    concatenated vector is omitted entirely.

    A block's ``start`` / ``preference`` may also be an ``(n, K)`` matrix
    (one column per personalisation segment; every column validated as a
    distribution).  All matrix-valued blocks must agree on ``K``;
    vector-valued and ``None`` blocks are broadcast across the K columns.
    """
    if not blocks:
        raise ValidationError("blocks must not be empty")
    matrices: List[sp.csr_matrix] = []
    starts: List[Optional[np.ndarray]] = []
    preferences: List[Optional[np.ndarray]] = []
    sizes: List[int] = []
    for index, block in enumerate(blocks):
        if isinstance(block, tuple):
            if len(block) != 3:
                raise ValidationError(
                    f"block {index} must be (adjacency, start, preference), "
                    f"got a {len(block)}-tuple")
            adjacency, start, preference = block
        else:
            adjacency, start, preference = block, None, None
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValidationError(
                f"block {index} adjacency must be square, "
                f"got {adjacency.shape!r}")
        n = int(adjacency.shape[0])
        if n == 0:
            raise ValidationError(f"block {index} is empty")
        matrices.append(sp.csr_matrix(adjacency, dtype=float))
        sizes.append(n)
        starts.append(start)
        preferences.append(preference)

    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    matrix = (matrices[0] if len(matrices) == 1
              else sp.block_diag(matrices, format="csr"))
    return PackedBlocks(matrix=matrix.tocsr(), offsets=offsets,
                        start=pack_block_vectors(starts, sizes, name="start"),
                        preference=pack_block_vectors(preferences, sizes,
                                                      name="preference"))


def pack_block_vectors(vectors: Sequence[Optional[np.ndarray]],
                       sizes: Sequence[int], *,
                       name: str) -> Optional[np.ndarray]:
    """Validate and concatenate per-block start/preference payloads.

    One optional entry per block: a length-``size`` distribution, a
    ``(size, K)`` column matrix, or ``None`` (uniform).  This is the vector
    half of :func:`pack_blocks`, exposed separately so a cached packed
    matrix can be re-teleported without repacking the CSR (the incremental
    ranker's refresh pack cache).  Returns ``None`` when every entry is.
    """
    validated: List[Optional[np.ndarray]] = []
    for index, (vector, n) in enumerate(zip(vectors, sizes)):
        if vector is None:
            validated.append(None)
            continue
        array = np.asarray(vector, dtype=float)
        if array.ndim == 2:
            if array.shape[0] != n:
                raise ValidationError(
                    f"block {index} {name} has {array.shape[0]} rows, "
                    f"expected {n}")
            for column in range(array.shape[1]):
                ensure_distribution(
                    array[:, column],
                    name=f"block {index} {name} column {column}")
            validated.append(array)
            continue
        array = ensure_distribution(vector, name=f"block {index} {name}")
        if array.size != n:
            raise ValidationError(
                f"block {index} {name} has length {array.size}, "
                f"expected {n}")
        validated.append(array)
    return _concat_optional(validated, sizes)


def _concat_optional(vectors: Sequence[Optional[np.ndarray]],
                     sizes: Sequence[int]) -> Optional[np.ndarray]:
    """Concatenate optional per-block vectors (uniform fill; None when all absent)."""
    if all(vector is None for vector in vectors):
        return None
    widths = {int(vector.shape[1]) for vector in vectors
              if vector is not None and vector.ndim == 2}
    if len(widths) > 1:
        raise ValidationError(
            f"blocks disagree on the number of preference columns: "
            f"{sorted(widths)}")
    if not widths:
        return np.concatenate([
            np.full(size, 1.0 / size) if vector is None else vector
            for vector, size in zip(vectors, sizes)])
    n_vectors = widths.pop()
    columns = []
    for vector, size in zip(vectors, sizes):
        if vector is None:
            vector = np.full(size, 1.0 / size)
        if vector.ndim == 1:
            vector = np.broadcast_to(vector[:, None], (size, n_vectors))
        columns.append(vector)
    return np.concatenate(columns, axis=0)


@dataclass
class BlockSolveResult:
    """Outcome of one fused multi-block power-iteration run.

    Attributes
    ----------
    vectors:
        Per-block stationary distributions, in block order.  For a
        multi-vector solve each entry is an ``(size_b, K)`` matrix of
        per-segment columns.
    iterations:
        Sweep index at which each block froze (its individual iteration
        count — the fused run performs ``max(iterations)`` sweeps).  Shape
        ``(n_blocks,)``, or ``(n_blocks, K)`` for a multi-vector solve
        (per-(block, column) freeze sweeps).
    converged:
        Whether each block met the tolerance within the budget (per
        (block, column) for a multi-vector solve).
    final_residuals:
        Each block's L1 residual at its last update (per (block, column)
        for a multi-vector solve).
    sweeps:
        Fused iterations the batch executed.
    active_history:
        Number of still-active (unfrozen) blocks entering each sweep —
        the freezing diagnostic benchmark E15 plots.
    residuals:
        Per-block residual histories; only populated when the solver ran
        with ``record_residuals=True`` (off by default: the engine's hot
        paths need no per-iteration appends).
    tolerance:
        The tolerance the run targeted.
    """

    vectors: List[np.ndarray]
    iterations: np.ndarray
    converged: np.ndarray
    final_residuals: np.ndarray
    sweeps: int
    active_history: List[int] = field(default_factory=list)
    residuals: Optional[List[List[float]]] = None
    tolerance: float = DEFAULT_TOL

    @property
    def n_blocks(self) -> int:
        """Number of solved blocks."""
        return len(self.vectors)

    @property
    def n_vectors(self) -> int:
        """Solve columns per block (1 for the classic single-vector run)."""
        return 1 if self.iterations.ndim == 1 else int(
            self.iterations.shape[1])

    @property
    def total_iterations(self) -> int:
        """Per-block iteration counts summed (comparable to per-site runs).

        For a multi-vector run each block contributes the sweeps its
        slowest column took (the block's actual residence in the batch).
        """
        if self.iterations.ndim == 1:
            return int(self.iterations.sum())
        return int(self.iterations.max(axis=1).sum())


def solve_blocks(packed: PackedBlocks, damping: float, *,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER,
                 record_residuals: bool = False,
                 raise_on_failure: bool = True,
                 freeze_columns: bool = True) -> BlockSolveResult:
    """Run one fused damped power iteration over every packed block.

    Parameters
    ----------
    packed:
        The block-diagonal batch (see :func:`pack_blocks`).
    damping:
        Damping factor ``f`` shared by every block.
    tol:
        Per-block L1 convergence tolerance; a block freezes (stops being
        updated, and is compacted out of the active matrix) the sweep its
        own residual first drops below this.
    max_iter:
        Sweep budget; blocks still active when it is exhausted are
        reported unconverged (or raise, per *raise_on_failure*).
    record_residuals:
        Keep each block's full residual history.  Off by default — the
        history is a per-sweep list append the engine's hot paths do not
        want to pay; benchmarks switch it on.
    raise_on_failure:
        Raise :class:`~repro.exceptions.ConvergenceError` when any block
        exhausts the budget (mirrors the per-site solvers); when false the
        best iterate is returned with ``converged=False`` for that block.
    freeze_columns:
        Multi-vector batches only: pin each (block, column) at its value
        the sweep it converges.  When false every column of a block keeps
        updating until the whole block converges — numerically equivalent
        (power iteration is a contraction; the property tests assert it),
        but without the per-column early-out.  Ignored for single-vector
        batches, whose per-block freezing is always on.
    """
    damping = ensure_probability(damping, name="damping")
    if tol <= 0:
        raise ValidationError("tol must be positive")
    if max_iter < 1:
        raise ValidationError("max_iter must be at least 1")

    if packed.n_vectors > 1:
        return _solve_blocks_multi(
            packed, damping, tol=tol, max_iter=max_iter,
            record_residuals=record_residuals,
            raise_on_failure=raise_on_failure,
            freeze_columns=freeze_columns)

    n_blocks = packed.n_blocks
    n_total = packed.n_rows
    sizes = packed.sizes.copy()
    offsets = packed.offsets.copy()

    link = row_normalize(packed.matrix).tocsr()
    row_sums = np.asarray(link.sum(axis=1)).ravel()
    dangling = (row_sums == 0.0).astype(float)
    # Uniform-within-block dangling redistribution and (default) teleport —
    # the same policies the per-site dense path applies.
    uniform = np.repeat(1.0 / sizes, sizes)
    teleport = (uniform if packed.preference is None
                else np.asarray(packed.preference,
                                dtype=float).ravel().copy())
    if packed.start is None:
        x = uniform.copy()
    else:
        x = np.asarray(packed.start, dtype=float).ravel().copy()

    # Frozen blocks are compacted out of the active row set, but columns
    # keep their original positions (CSR row gathering is cheap; column
    # slicing is not): each sweep's SpMV produces a full-width vector and
    # ``entry_ids`` gathers the active entries back out of it.
    entry_ids = np.arange(n_total, dtype=np.int64)
    block_ids = np.arange(n_blocks, dtype=np.int64)

    vectors: List[Optional[np.ndarray]] = [None] * n_blocks
    iterations = np.zeros(n_blocks, dtype=np.int64)
    converged = np.zeros(n_blocks, dtype=bool)
    final_residuals = np.full(n_blocks, np.inf)
    history: Optional[List[List[float]]] = (
        [[] for _ in range(n_blocks)] if record_residuals else None)
    active_history: List[int] = []

    sweeps = 0
    while block_ids.size and sweeps < max_iter:
        sweeps += 1
        active_history.append(int(block_ids.size))
        starts = offsets[:-1]

        linked = np.asarray(x @ link).ravel()[entry_ids]
        dangling_mass = np.add.reduceat(x * dangling, starts)
        new_x = (damping * (linked + np.repeat(dangling_mass, sizes) * uniform)
                 + (1.0 - damping) * teleport)
        totals = np.add.reduceat(new_x, starts)
        # Guard against floating point drift away from the simplex (a
        # per-block echo of the per-site solver's ``total > 0`` guard).
        new_x = new_x / np.repeat(np.where(totals > 0.0, totals, 1.0), sizes)
        residuals = np.add.reduceat(np.abs(new_x - x), starts)
        x = new_x

        if history is not None:
            for block, residual in zip(block_ids, residuals):
                history[block].append(float(residual))
        final_residuals[block_ids] = residuals
        iterations[block_ids] = sweeps

        frozen = residuals < tol
        if not frozen.any():
            continue
        for position in np.flatnonzero(frozen):
            block = int(block_ids[position])
            converged[block] = True
            vectors[block] = x[offsets[position]:offsets[position + 1]].copy()
        # Compact every still-active block's rows (and per-entry state) so
        # the next sweep's SpMV only touches unconverged sites.
        keep_blocks = ~frozen
        keep_entries = np.repeat(keep_blocks, sizes)
        block_ids = block_ids[keep_blocks]
        sizes = sizes[keep_blocks]
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        x = x[keep_entries]
        dangling = dangling[keep_entries]
        uniform = uniform[keep_entries]
        teleport = teleport[keep_entries]
        entry_ids = entry_ids[keep_entries]
        link = link[keep_entries]

    # Blocks that never froze keep their best iterate.
    for position, block in enumerate(block_ids):
        vectors[int(block)] = x[offsets[position]:offsets[position + 1]].copy()

    if block_ids.size and raise_on_failure:
        worst = int(block_ids[int(np.argmax(
            final_residuals[block_ids]))])
        raise ConvergenceError(
            f"{block_ids.size} of {n_blocks} blocks did not converge within "
            f"{max_iter} iterations (worst: block {worst} at residual "
            f"{final_residuals[worst]:.3e}, tol {tol:.3e})",
            iterations=max_iter, residual=float(final_residuals[worst]))

    # Telemetry is recorded once per run, after the sweep loop — the fused
    # kernel itself carries no instrumentation.
    if obs.enabled():
        worst_residual = (float(final_residuals.max())
                          if final_residuals.size else 0.0)
        obs.record_solver("block", int(iterations.sum()), worst_residual,
                          bool(converged.all()), vectors=1)
        obs.inc("block_solver_runs_total")
        obs.inc("block_solver_blocks_total", float(n_blocks))
        obs.inc("block_solver_sweeps_total", float(sweeps))
        obs.observe("block_solver_sweeps", float(sweeps))
        # Sites frozen during each sweep: the drop in active-block count
        # between consecutive sweep entries (the last sweep freezes down
        # to whatever remained unconverged).
        remaining = [*active_history[1:], int(block_ids.size)]
        for entering, left in zip(active_history, remaining):
            obs.observe("block_solver_frozen_per_sweep",
                        float(entering - left))

    return BlockSolveResult(
        vectors=[vector for vector in vectors],  # type: ignore[misc]
        iterations=iterations, converged=converged,
        final_residuals=final_residuals, sweeps=sweeps,
        active_history=active_history, residuals=history, tolerance=tol)


def _as_columns(vector: Optional[np.ndarray], uniform: np.ndarray,
                n_vectors: int) -> np.ndarray:
    """Materialise a (n, K) column matrix from a vector/matrix/None input."""
    base = uniform if vector is None else np.asarray(vector, dtype=float)
    if base.ndim == 1:
        return np.broadcast_to(
            base[:, None], (base.size, n_vectors)).copy()
    return base.copy()


def _block_aggregators(sizes: np.ndarray, offsets: np.ndarray,
                       dangling: np.ndarray):
    """Segment-sum operators for one active set, as CSR matrices.

    ``agg @ M`` sums the rows of each block (exactly what
    ``np.add.reduceat(M, offsets[:-1], axis=0)`` computes, in the same
    sequential element order, so results are bitwise identical) but runs
    through the ``csr_matvecs`` C kernel — the 2-D ``reduceat`` has no
    fast path in numpy and dominated the sweep cost on many-block
    batches.  ``agg_dangling`` folds the dangling indicator into the
    operator so the dangling-mass reduction needs no ``X * dangling``
    temporary.
    """
    cols = np.arange(int(offsets[-1]), dtype=np.int64)
    shape = (sizes.size, cols.size)
    agg = sp.csr_matrix((np.ones(cols.size), cols, offsets), shape=shape)
    agg_dangling = sp.csr_matrix((dangling, cols, offsets), shape=shape)
    return agg, agg_dangling


def _solve_blocks_multi(packed: PackedBlocks, damping: float, *,
                        tol: float, max_iter: int,
                        record_residuals: bool, raise_on_failure: bool,
                        freeze_columns: bool) -> BlockSolveResult:
    """The fused K-column (SpMM) variant of :func:`solve_blocks`.

    Identical numerics per column — each column runs exactly the damped
    update the single-vector loop runs — but one ``link.T @ X`` product
    per sweep advances all K columns, and the per-block bookkeeping
    (dangling mass, normalisation, residuals) runs as sparse
    aggregation products (:func:`_block_aggregators`) so every reduction
    shares the SpMM's C kernels.  Unlike the single-vector loop this
    path compacts *columns* of the link matrix too: blocks leave the
    batch whole, so the active matrix stays square and the SpMM output
    needs no gather.
    """
    n_blocks = packed.n_blocks
    n_vectors = packed.n_vectors
    sizes = packed.sizes.copy()
    offsets = packed.offsets.copy()

    link = row_normalize(packed.matrix).tocsr()
    row_sums = np.asarray(link.sum(axis=1)).ravel()
    dangling = (row_sums == 0.0).astype(float)
    uniform = np.repeat(1.0 / sizes, sizes)
    teleport = _as_columns(packed.preference, uniform, n_vectors)
    teleport_term = (1.0 - damping) * teleport
    X = _as_columns(packed.start, uniform, n_vectors)

    block_ids = np.arange(n_blocks, dtype=np.int64)
    block_index = np.repeat(block_ids, sizes)
    agg, agg_dangling = _block_aggregators(sizes, offsets, dangling)
    has_dangling = bool(dangling.any())

    vectors: List[Optional[np.ndarray]] = [None] * n_blocks
    iterations = np.zeros((n_blocks, n_vectors), dtype=np.int64)
    converged = np.zeros((n_blocks, n_vectors), dtype=bool)
    final_residuals = np.full((n_blocks, n_vectors), np.inf)
    # Per-(block, column) freeze registry, indexed by *global* block id so
    # it survives compaction of the active set.
    column_done = np.zeros((n_blocks, n_vectors), dtype=bool)
    history: Optional[List[List[float]]] = (
        [[] for _ in range(n_blocks)] if record_residuals else None)
    active_history: List[int] = []

    sweeps = 0
    while block_ids.size and sweeps < max_iter:
        sweeps += 1
        active_history.append(int(block_ids.size))

        # One SpMM advances every column: (n_active, n_active)·(n_active, K);
        # the damped update runs in place on its output (same per-element
        # expression the single-vector loop evaluates).
        new_X = np.asarray(link.T @ X)
        if has_dangling:
            # Entry-wise exact zeros when nothing dangles, so the whole
            # term can be skipped without changing a single bit.
            mass = (agg_dangling @ X)[block_index]
            mass *= uniform[:, None]
            new_X += mass
        new_X *= damping
        new_X += teleport_term
        totals = agg @ new_X
        new_X /= np.where(totals > 0.0, totals, 1.0)[block_index]

        frozen = column_done[block_ids]
        pinning = freeze_columns and bool(frozen.any())
        if pinning:
            # Pin converged columns at their frozen value *before* the
            # residual read: a pinned entry's |new - old| is then exactly
            # zero, so the block residuals come out identical to zeroing
            # the frozen columns afterwards.
            pinned = frozen[block_index]
            new_X[pinned] = X[pinned]
        # Residuals in place through X's buffer — X's next value is new_X.
        np.subtract(new_X, X, out=X)
        np.abs(X, out=X)
        residuals = agg @ X
        if pinning:
            residuals[frozen] = 0.0
        X = new_X

        if history is not None:
            worst_by_block = residuals.max(axis=1)
            for block, residual in zip(block_ids, worst_by_block):
                history[block].append(float(residual))
        live = ~frozen
        final_residuals[block_ids] = np.where(
            live, residuals, final_residuals[block_ids])
        iterations[block_ids] = np.where(
            live, sweeps, iterations[block_ids])

        below = residuals < tol
        if freeze_columns:
            column_done[block_ids] |= below
            converged[block_ids] |= below
            block_done = column_done[block_ids].all(axis=1)
        else:
            # No per-column pinning: a block exits only the sweep every
            # column is simultaneously below tolerance.
            block_done = below.all(axis=1)
            done_ids = block_ids[block_done]
            converged[done_ids] = True
            column_done[done_ids] = True
        if not block_done.any():
            continue
        for position in np.flatnonzero(block_done):
            block = int(block_ids[position])
            vectors[block] = X[offsets[position]:offsets[position + 1]].copy()
        keep_blocks = ~block_done
        keep_entries = np.repeat(keep_blocks, sizes)
        block_ids = block_ids[keep_blocks]
        sizes = sizes[keep_blocks]
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        X = X[keep_entries]
        dangling = dangling[keep_entries]
        uniform = uniform[keep_entries]
        teleport_term = teleport_term[keep_entries]
        # Blocks leave whole, so dropping their columns keeps the matrix
        # square (cross-block entries never existed in a block-diagonal
        # batch) and the next sweep's SpMM emits only active rows.
        link = link[keep_entries][:, keep_entries]
        block_index = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
        agg, agg_dangling = _block_aggregators(sizes, offsets, dangling)
        has_dangling = bool(dangling.any())

    for position, block in enumerate(block_ids):
        vectors[int(block)] = X[offsets[position]:offsets[position + 1]].copy()

    if block_ids.size and raise_on_failure:
        worst_by_block = final_residuals[block_ids].max(axis=1)
        worst = int(block_ids[int(np.argmax(worst_by_block))])
        raise ConvergenceError(
            f"{block_ids.size} of {n_blocks} blocks did not converge within "
            f"{max_iter} iterations (worst: block {worst} at residual "
            f"{float(final_residuals[worst].max()):.3e}, tol {tol:.3e})",
            iterations=max_iter,
            residual=float(final_residuals[worst].max()))

    if obs.enabled():
        worst_residual = (float(final_residuals.max())
                          if final_residuals.size else 0.0)
        obs.record_solver("block", int(iterations.max(axis=1).sum()),
                          worst_residual, bool(converged.all()),
                          vectors=n_vectors)
        obs.inc("block_solver_runs_total")
        obs.inc("block_solver_blocks_total", float(n_blocks))
        obs.inc("block_solver_sweeps_total", float(sweeps))
        obs.observe("block_solver_sweeps", float(sweeps))
        remaining = [*active_history[1:], int(block_ids.size)]
        for entering, left in zip(active_history, remaining):
            obs.observe("block_solver_frozen_per_sweep",
                        float(entering - left))

    return BlockSolveResult(
        vectors=[vector for vector in vectors],  # type: ignore[misc]
        iterations=iterations, converged=converged,
        final_residuals=final_residuals, sweeps=sweeps,
        active_history=active_history, residuals=history, tolerance=tol)


__all__ = [
    "BlockSolveResult",
    "PackedBlocks",
    "pack_block_vectors",
    "pack_blocks",
    "solve_blocks",
]
