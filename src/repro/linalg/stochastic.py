"""Construction and manipulation of row-stochastic matrices.

The web-ranking algorithms in this package all start from a directed graph's
adjacency matrix and turn it into a row-stochastic *transition* matrix of a
random surfer.  This module contains those conversions, including the
standard treatments of dangling nodes (rows with no out-links):

* ``"uniform"``   — a dangling node jumps to a uniformly random node
                    (the classical PageRank convention);
* ``"self"``      — a dangling node stays put (adds a self loop);
* ``"preference"``— a dangling node jumps according to a supplied
                    preference/personalisation distribution;
* ``"error"``     — dangling nodes are not allowed and raise.

All functions accept dense numpy arrays or scipy sparse matrices and preserve
sparsity where possible.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np
import scipy.sparse as sp

from .._validation import (
    as_dense,
    ensure_distribution,
    ensure_nonnegative,
    ensure_square,
    is_sparse,
    row_sums,
)
from ..exceptions import ValidationError

DanglingPolicy = Literal["uniform", "self", "preference", "error"]


def dangling_nodes(adjacency) -> np.ndarray:
    """Return the indices of rows of *adjacency* with zero out-weight."""
    sums = row_sums(adjacency)
    return np.where(sums == 0.0)[0]


def transition_matrix(adjacency, *, dangling: DanglingPolicy = "uniform",
                      preference: Optional[np.ndarray] = None):
    """Build the row-stochastic transition matrix ``M`` from an adjacency matrix.

    Parameters
    ----------
    adjacency:
        Square non-negative matrix; entry ``(i, j)`` is the weight (usually
        the link count) of the edge ``i -> j``.
    dangling:
        How rows without out-links are handled; see the module docstring.
    preference:
        Probability distribution used when ``dangling == "preference"``.

    Returns
    -------
    A matrix of the same sparsity class as the input whose rows each sum to 1.

    Notes
    -----
    This is the function called ``M(G)`` in the paper (Section 2.1): it only
    normalises rows and patches dangling nodes.  It does **not** apply the
    damping/teleportation adjustment; see
    :func:`repro.markov.irreducibility.maximal_irreducibility` (``M̂(G)``)
    for that.
    """
    ensure_square(adjacency, name="adjacency")
    ensure_nonnegative(adjacency, name="adjacency")
    n = adjacency.shape[0]
    if n == 0:
        raise ValidationError("adjacency must have at least one node")

    sums = row_sums(adjacency)
    dangling_idx = np.where(sums == 0.0)[0]

    if dangling_idx.size and dangling == "error":
        raise ValidationError(
            f"adjacency has {dangling_idx.size} dangling node(s) "
            f"(first: {int(dangling_idx[0])}) and dangling policy is 'error'")

    if dangling == "preference":
        if preference is None:
            raise ValidationError(
                "dangling policy 'preference' requires a preference vector")
        preference = ensure_distribution(preference, name="preference")
        if preference.size != n:
            raise ValidationError(
                f"preference vector has length {preference.size}, expected {n}")

    if is_sparse(adjacency):
        return _sparse_transition(adjacency, sums, dangling_idx, dangling,
                                  preference)
    return _dense_transition(np.asarray(adjacency, dtype=float), sums,
                             dangling_idx, dangling, preference)


def _dense_transition(adjacency: np.ndarray, sums: np.ndarray,
                      dangling_idx: np.ndarray, dangling: DanglingPolicy,
                      preference: Optional[np.ndarray]) -> np.ndarray:
    n = adjacency.shape[0]
    matrix = adjacency.astype(float, copy=True)
    safe = sums.copy()
    safe[safe == 0.0] = 1.0
    matrix /= safe[:, None]
    for i in dangling_idx:
        if dangling == "uniform":
            matrix[i, :] = 1.0 / n
        elif dangling == "self":
            matrix[i, i] = 1.0
        elif dangling == "preference":
            matrix[i, :] = preference
    return matrix


def _sparse_transition(adjacency, sums: np.ndarray, dangling_idx: np.ndarray,
                       dangling: DanglingPolicy,
                       preference: Optional[np.ndarray]):
    n = adjacency.shape[0]
    csr = adjacency.tocsr().astype(float)
    safe = sums.copy()
    safe[safe == 0.0] = 1.0
    inv = sp.diags(1.0 / safe)
    matrix = (inv @ csr).tolil()
    for i in dangling_idx:
        if dangling == "uniform":
            matrix[i, :] = 1.0 / n
        elif dangling == "self":
            matrix[i, i] = 1.0
        elif dangling == "preference":
            matrix[i, :] = preference
    return matrix.tocsr()


def row_normalize(matrix):
    """Normalise the rows of a non-negative matrix to sum to 1.

    Rows that sum to zero are left untouched (they remain all-zero), which
    makes this helper suitable for *sub-stochastic* matrices; use
    :func:`transition_matrix` when dangling rows must be repaired.
    """
    ensure_nonnegative(matrix, name="matrix")
    sums = row_sums(matrix)
    safe = sums.copy()
    safe[safe == 0.0] = 1.0
    if is_sparse(matrix):
        return (sp.diags(1.0 / safe) @ matrix.tocsr().astype(float)).tocsr()
    return np.asarray(matrix, dtype=float) / safe[:, None]


def is_row_stochastic(matrix, *, atol: float = 1e-8) -> bool:
    """Return ``True`` when *matrix* is square, non-negative and row-stochastic."""
    try:
        ensure_square(matrix)
    except ValidationError:
        return False
    if is_sparse(matrix):
        if matrix.data.size and float(matrix.data.min()) < 0:
            return False
    else:
        if np.asarray(matrix).size and float(np.min(matrix)) < 0:
            return False
    sums = row_sums(matrix)
    return bool(np.all(np.abs(sums - 1.0) <= atol))


def is_sub_stochastic(matrix, *, atol: float = 1e-8) -> bool:
    """Return ``True`` when rows of a non-negative *matrix* sum to at most 1."""
    try:
        ensure_square(matrix)
        ensure_nonnegative(matrix)
    except ValidationError:
        return False
    sums = row_sums(matrix)
    return bool(np.all(sums <= 1.0 + atol))


def uniform_distribution(n: int) -> np.ndarray:
    """Return the uniform probability distribution over ``n`` states."""
    if n <= 0:
        raise ValidationError("n must be positive")
    return np.full(n, 1.0 / n)


def random_stochastic_matrix(n: int, *, rng: Optional[np.random.Generator] = None,
                             density: float = 1.0,
                             ensure_positive_diagonal: bool = False) -> np.ndarray:
    """Sample a dense random row-stochastic matrix (useful for tests/benchmarks).

    Parameters
    ----------
    n:
        Matrix size.
    rng:
        Numpy random generator; a fresh default generator is used when omitted.
    density:
        Fraction of entries that are non-zero *before* the dangling repair;
        each row is guaranteed at least one non-zero entry.
    ensure_positive_diagonal:
        When ``True`` each diagonal entry is forced positive, which makes the
        resulting chain aperiodic (useful when a primitive matrix is needed).
    """
    if rng is None:
        rng = np.random.default_rng()
    if n <= 0:
        raise ValidationError("n must be positive")
    if not 0.0 < density <= 1.0:
        raise ValidationError("density must be in (0, 1]")
    weights = rng.random((n, n))
    if density < 1.0:
        mask = rng.random((n, n)) < density
        weights = weights * mask
    # Guarantee every row has at least one non-zero entry.
    empty_rows = np.where(weights.sum(axis=1) == 0.0)[0]
    for i in empty_rows:
        weights[i, rng.integers(0, n)] = rng.random() + 0.1
    if ensure_positive_diagonal:
        weights[np.diag_indices(n)] += rng.random(n) + 0.05
    return weights / weights.sum(axis=1, keepdims=True)


def to_column_stochastic(matrix):
    """Return the transpose of a row-stochastic matrix (column-stochastic form).

    Some PageRank formulations work with column-stochastic matrices; the
    library keeps everything row-stochastic internally and exposes this helper
    for interoperability.
    """
    if is_sparse(matrix):
        return matrix.T.tocsr()
    return as_dense(matrix).T
