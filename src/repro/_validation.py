"""Shared validation helpers used across the package.

These helpers normalise the many "is this a proper stochastic object?"
checks into a small set of functions with consistent error messages.  They
accept dense :class:`numpy.ndarray` objects as well as any scipy sparse
matrix and always return the validated object unchanged, so they can be used
inline::

    matrix = ensure_square(matrix, name="transition matrix")
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .exceptions import (
    DimensionMismatchError,
    NotADistributionError,
    NotStochasticError,
    ValidationError,
)

#: Default absolute tolerance used when checking stochasticity and
#: distribution sums.  Loose enough for accumulated floating point error in
#: large sparse matrices, tight enough to catch genuinely broken inputs.
DEFAULT_ATOL: float = 1e-8


def is_sparse(matrix) -> bool:
    """Return ``True`` when *matrix* is any scipy sparse container."""
    return sp.issparse(matrix)


def as_dense(matrix) -> np.ndarray:
    """Return *matrix* as a dense :class:`numpy.ndarray` (copying sparse input)."""
    if is_sparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


def ensure_square(matrix, *, name: str = "matrix"):
    """Validate that *matrix* is 2-D and square, returning it unchanged."""
    if matrix is None:
        raise ValidationError(f"{name} must not be None")
    shape = matrix.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise DimensionMismatchError(
            f"{name} must be square, got shape {shape!r}")
    return matrix


def ensure_nonnegative(matrix, *, name: str = "matrix"):
    """Validate that every entry of *matrix* is >= 0, returning it unchanged."""
    if is_sparse(matrix):
        data = matrix.data
    else:
        data = np.asarray(matrix)
    if data.size and float(np.min(data)) < 0.0:
        raise ValidationError(f"{name} must be non-negative")
    return matrix


def row_sums(matrix) -> np.ndarray:
    """Return the vector of row sums of a dense or sparse matrix."""
    if is_sparse(matrix):
        return np.asarray(matrix.sum(axis=1)).ravel()
    return np.asarray(matrix, dtype=float).sum(axis=1)


def ensure_row_stochastic(matrix, *, atol: float = DEFAULT_ATOL,
                          name: str = "matrix"):
    """Validate that *matrix* is square, non-negative and row-stochastic."""
    ensure_square(matrix, name=name)
    ensure_nonnegative(matrix, name=name)
    sums = row_sums(matrix)
    bad = np.where(np.abs(sums - 1.0) > atol)[0]
    if bad.size:
        raise NotStochasticError(
            f"{name} is not row-stochastic: row {int(bad[0])} sums to "
            f"{float(sums[bad[0]]):.12f} (and {bad.size - 1} more rows)")
    return matrix


def ensure_distribution(vector, *, atol: float = DEFAULT_ATOL,
                        name: str = "vector") -> np.ndarray:
    """Validate that *vector* is a 1-D probability distribution.

    Returns the vector as a dense float array.
    """
    arr = np.asarray(vector, dtype=float).ravel()
    if arr.size == 0:
        raise NotADistributionError(f"{name} must not be empty")
    if float(arr.min()) < -atol:
        raise NotADistributionError(f"{name} has negative entries")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, atol * arr.size):
        raise NotADistributionError(
            f"{name} must sum to 1, got {total:.12f}")
    return arr


def ensure_damping(value, *, name: str = "damping") -> float:
    """Validate a damping factor: a number strictly between 0 and 1.

    Shared by the CLI (``--damping``) and the declarative config
    (``RankingConfig.damping``/``site_damping``).  Adds non-numeric-input
    coercion on top of :func:`ensure_probability`, which owns the actual
    open-interval range rule.
    """
    try:
        damping = float(value)
    except (TypeError, ValueError):
        raise ValidationError(
            f"{name} must be a number strictly between 0 and 1, "
            f"got {value!r}") from None
    try:
        return ensure_probability(damping, name=name, inclusive=False)
    except ValidationError:
        raise ValidationError(
            f"{name} must be strictly between 0 and 1, got {value!r}"
        ) from None


def ensure_probability(value: float, *, name: str = "value",
                       inclusive: bool = True) -> float:
    """Validate that a scalar lies in [0, 1] (or (0, 1) when not inclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def ensure_same_length(a: Sequence, b: Sequence, *, name_a: str = "a",
                       name_b: str = "b") -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise DimensionMismatchError(
            f"{name_a} (length {len(a)}) and {name_b} (length {len(b)}) "
            "must have the same length")


def normalize_distribution(vector, *, name: str = "vector") -> np.ndarray:
    """Return *vector* scaled so its entries sum to 1.

    Raises :class:`NotADistributionError` when the vector is all zeros or has
    negative entries, since such a vector cannot be normalised into a
    distribution.
    """
    arr = np.asarray(vector, dtype=float).ravel()
    if arr.size == 0:
        raise NotADistributionError(f"{name} must not be empty")
    if float(arr.min()) < 0.0:
        raise NotADistributionError(f"{name} has negative entries")
    total = float(arr.sum())
    if total <= 0.0:
        raise NotADistributionError(f"{name} sums to zero; cannot normalise")
    return arr / total
