"""Launching peer processes and whole localhost clusters.

Tests, benchmark E18 and the CI smoke job all need the same thing: a
coordinator in this process plus N genuine peer *processes* (separate
interpreters, real sockets) ranking one web.  :func:`spawn_peer` starts a
single peer through the ``repro cluster peer`` CLI entry point;
:func:`run_live_cluster` wires up the full round — write the graph to
disk, start the coordinator, spawn the peers against its ephemeral port,
await the report, reap every child — and guarantees no orphaned process
survives it (peers are terminated, then killed, on any exit path).
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from ..distributed.coordinator import DeploymentReport
from ..distributed.partitioning import PartitionPolicy
from ..exceptions import ProtocolError
from ..io import read_docgraph, write_docgraph
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..web.docgraph import DocGraph
from .coordinator import ClusterCoordinator
from .protocol import DEFAULT_HEARTBEAT_SECONDS, DEFAULT_ROUND_TIMEOUT


def peer_environment() -> dict:
    """A child environment whose ``PYTHONPATH`` can import :mod:`repro`.

    The peer runs ``python -m repro …`` in a fresh interpreter; when the
    package is used straight from a source tree (tests, CI) its parent
    directory must be on the child's path.
    """
    import repro

    package_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_dir + os.pathsep + existing
                             if existing else package_dir)
    return env


def peer_command(address: str, graph_path: str, *, name: str = "",
                 fail_after: Optional[int] = None) -> List[str]:
    """The ``repro cluster peer`` argv for one peer process."""
    command = [sys.executable, "-m", "repro", "cluster", "peer",
               "--connect", address, "--input", graph_path,
               "--format", "docgraph"]
    if name:
        command += ["--name", name]
    if fail_after is not None:
        command += ["--fail-after", str(fail_after)]
    return command


def spawn_peer(address: str, graph_path: str, *, name: str = "",
               fail_after: Optional[int] = None) -> subprocess.Popen:
    """Start one peer process against a coordinator *address* (host:port)."""
    return subprocess.Popen(
        peer_command(address, graph_path, name=name, fail_after=fail_after),
        env=peer_environment(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def reap(processes: Sequence[subprocess.Popen],
         timeout: float = 5.0) -> List[Optional[int]]:
    """Terminate-then-kill every child; returns their exit codes."""
    for process in processes:
        if process.poll() is None:
            process.terminate()
    codes: List[Optional[int]] = []
    for process in processes:
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            process.kill()
            process.wait(timeout=timeout)
        codes.append(process.returncode)
    return codes


async def run_live_cluster(docgraph: DocGraph, workdir: str, *,
                           n_peers: int = 3,
                           partition_policy: PartitionPolicy = "balanced",
                           damping: float = DEFAULT_DAMPING,
                           site_damping: Optional[float] = None,
                           tol: float = DEFAULT_TOL,
                           max_iter: int = DEFAULT_MAX_ITER,
                           batch_sites: bool = False,
                           ledger_path: Optional[str] = None,
                           heartbeat_seconds: float =
                           DEFAULT_HEARTBEAT_SECONDS,
                           round_timeout: float = DEFAULT_ROUND_TIMEOUT,
                           fail_after: Optional[dict] = None,
                           ) -> DeploymentReport:
    """One complete live round on localhost: coordinator here, peers forked.

    The graph is round-tripped through :func:`repro.io.write_docgraph` so
    the coordinator ranks the *same file* the peers load — the digest
    handshake then guarantees all parties agree on the web.  *fail_after*
    optionally maps peer index → ``--fail-after`` count for deterministic
    crash injection (the fault-tolerance benchmark kills peer 0 after its
    first result this way).
    """
    graph_path = os.path.join(workdir, "cluster-web.docgraph")
    write_docgraph(docgraph, graph_path)
    shared = read_docgraph(graph_path)

    coordinator = ClusterCoordinator(
        shared, n_peers=n_peers, partition_policy=partition_policy,
        damping=damping, site_damping=site_damping, tol=tol,
        max_iter=max_iter, batch_sites=batch_sites, ledger_path=ledger_path,
        heartbeat_seconds=heartbeat_seconds, round_timeout=round_timeout)
    await coordinator.start()

    processes: List[subprocess.Popen] = []
    try:
        for index in range(n_peers):
            processes.append(spawn_peer(
                coordinator.address, graph_path, name=f"launch-{index}",
                fail_after=(fail_after or {}).get(index)))
        report = await coordinator.wait()
    except BaseException:
        await asyncio.to_thread(reap, processes)
        raise
    # A clean round lets every surviving peer exit on RoundComplete; give
    # them a moment before the terminate-then-kill sweep.
    await asyncio.to_thread(_drain_children, processes)
    return report


def _drain_children(processes: Sequence[subprocess.Popen],
                    grace: float = 5.0) -> None:
    deadline = grace
    for process in processes:
        try:
            process.wait(timeout=max(0.1, deadline))
        except subprocess.TimeoutExpired:
            pass
    reap(processes, timeout=grace)


def ensure_round_completed(report: DeploymentReport) -> DeploymentReport:
    """Sanity guard used by the CLI/benchmarks after a live round."""
    if report.mode != "live":
        raise ProtocolError(
            f"expected a live-mode report, got {report.mode!r}")
    return report
