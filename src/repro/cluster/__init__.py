"""Live deployment of the distributed layered ranking protocol.

Where :mod:`repro.distributed` *simulates* the peer network in-process
(modeled clocks, accounted bytes), this package runs the identical
protocol for real: peers are separate OS processes, every message crosses
a TCP socket through the :mod:`repro.distributed.codec` wire format, and
the coordinator adds what reality demands — a durable job ledger for
crash-resumable rounds, heartbeat failure detection with site
re-assignment, and graceful SIGTERM drains.  The compute path is the same
engine task machinery, so a live round's scores are bitwise those of the
serial reference — benchmark E18 asserts exactly that, kill-a-peer run
included.
"""

from .coordinator import ClusterCoordinator
from .ledger import JobLedger, score_digest
from .launch import (
    peer_command,
    reap,
    run_live_cluster,
    spawn_peer,
)
from .peer import ClusterPeer, run_peer
from .protocol import (
    COORDINATOR,
    DEFAULT_HEARTBEAT_SECONDS,
    DEFAULT_ROUND_TIMEOUT,
    HEARTBEAT_TIMEOUT_FACTOR,
    Goodbye,
    Heartbeat,
    JoinAck,
    JoinRequest,
    RoundComplete,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterPeer",
    "run_peer",
    "JobLedger",
    "score_digest",
    "peer_command",
    "spawn_peer",
    "reap",
    "run_live_cluster",
    "COORDINATOR",
    "DEFAULT_HEARTBEAT_SECONDS",
    "DEFAULT_ROUND_TIMEOUT",
    "HEARTBEAT_TIMEOUT_FACTOR",
    "JoinRequest",
    "JoinAck",
    "Heartbeat",
    "RoundComplete",
    "Goodbye",
]
