"""The live cluster coordinator: real rounds over real sockets.

:class:`ClusterCoordinator` runs the same flat-architecture protocol as
the simulator's :class:`~repro.distributed.coordinator.DistributedRankingCoordinator`,
but against peers that are separate OS processes on TCP.  The round is
scheduled from the same :class:`~repro.engine.plan.RankingPlan` (its
:meth:`~repro.engine.plan.RankingPlan.partition` hook maps the step-3
tasks onto peers), the SiteRank is assembled from the peers' SiteLink
summaries exactly as in the simulation, and the final composition is the
shared step-5 code — which is why a live round's scores are bitwise those
of the serial reference.

Reality adds what the simulation never needed:

* **a durable job ledger** (:class:`~repro.cluster.ledger.JobLedger`) —
  every assignment and result is persisted (atomic write-then-rename), so
  a restarted coordinator resumes the round instead of recomputing;
* **failure detection** — per-peer heartbeats with a timeout, plus
  immediate EOF detection; a dead peer's *pending* sites are re-assigned
  to survivors (its done sites stay done);
* **measured time** — the report's makespan is wall-clock, not a model,
  and per-peer compute times are what the peers measured themselves.

The returned :class:`~repro.distributed.coordinator.DeploymentReport` has
``mode="live"``, so simulated and live runs of the same web are directly
comparable — benchmark E18 does exactly that.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..distributed.codec import encode_message, read_message, write_message
from ..distributed.coordinator import DeploymentReport, assemble_sitegraph
from ..distributed.messages import (
    AssignSitesMessage,
    ComputeLocalRankRequest,
    LocalRankResult,
    MessageLog,
    SiteLinkSummary,
)
from ..distributed.partitioning import PartitionPolicy, partition_sites
from ..distributed.peer import Peer as _SummaryHelper
from ..engine.plan import RankingPlan
from ..exceptions import ProtocolError, SimulationError
from ..io import docgraph_digest
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..web.docgraph import DocGraph
from ..web.docrank import LocalDocRank
from ..web.pipeline import WebRankingResult, compose_ranking
from ..web.siterank import SiteRankResult, siterank
from .ledger import JobLedger
from .protocol import (
    COORDINATOR,
    DEFAULT_HEARTBEAT_SECONDS,
    DEFAULT_ROUND_TIMEOUT,
    HEARTBEAT_TIMEOUT_FACTOR,
    Goodbye,
    Heartbeat,
    JoinAck,
    JoinRequest,
    RoundComplete,
)


class _PeerSession:
    """Coordinator-side state of one connected peer."""

    def __init__(self, name: str, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.alive = True
        self.said_goodbye = False
        self.last_seen = time.monotonic()
        self.busy_seconds = 0.0
        self.assigned: Set[str] = set()
        self.write_lock = asyncio.Lock()


class ClusterCoordinator:
    """Coordinates one live ranking round over TCP peers.

    Usage::

        coordinator = ClusterCoordinator(graph, n_peers=3)
        await coordinator.start()          # binds; coordinator.port is real
        ... launch peer processes pointed at coordinator.port ...
        report = await coordinator.wait()  # runs the round to completion

    or ``await coordinator.run()`` when the peers connect on their own.
    Only the flat architecture is deployed live (the super-peer flavour
    remains simulation-only).
    """

    def __init__(self, docgraph: DocGraph, *, host: str = "127.0.0.1",
                 port: int = 0, n_peers: int = 3,
                 partition_policy: PartitionPolicy = "balanced",
                 damping: float = DEFAULT_DAMPING,
                 site_damping: Optional[float] = None,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER,
                 batch_sites: bool = False,
                 ledger_path: Optional[str] = None,
                 heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
                 round_timeout: float = DEFAULT_ROUND_TIMEOUT) -> None:
        if docgraph.n_documents == 0:
            raise SimulationError("cannot rank an empty DocGraph")
        self.docgraph = docgraph
        self.host = host
        self.port = port
        self.damping = damping
        self.site_damping = site_damping if site_damping is not None \
            else damping
        self.tol = tol
        self.max_iter = max_iter
        self.batch_sites = batch_sites
        self.heartbeat_seconds = heartbeat_seconds
        self.round_timeout = round_timeout
        self.graph_digest = docgraph_digest(docgraph)
        # The shared scheduling source: the same plan the centralized
        # pipeline executes, partitioned instead of dispatched locally.
        self.plan = RankingPlan.from_docgraph(
            docgraph, damping, site_damping=self.site_damping, tol=tol,
            max_iter=max_iter, batch_sites=False)
        self.assignment = partition_sites(docgraph, n_peers,
                                          policy=partition_policy)
        self.partitioned = self.plan.partition(self.assignment)
        self.ledger = JobLedger.open(
            ledger_path, graph_digest=self.graph_digest,
            params={"damping": damping, "site_damping": self.site_damping,
                    "tol": tol, "max_iter": max_iter,
                    "architecture": "flat"},
            sites=docgraph.sites())
        self.log = MessageLog()

        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self.metrics_port: Optional[int] = None
        self._sessions: List[_PeerSession] = []
        self._session_of: Dict[str, _PeerSession] = {}
        self._reader_tasks: List[asyncio.Task] = []
        self._staffed = asyncio.Event()
        self._results_done = asyncio.Event()
        self._counts_by_source: Dict[str, Tuple] = {}
        self._local: Dict[str, LocalDocRank] = {}
        self._request_sent_at: Dict[str, float] = {}
        self._siterank_started = asyncio.Event()
        self._siterank_result: Optional[Tuple[SiteRankResult, float]] = None
        self._reassigned: List[str] = []
        self._round_active = False
        self._finished = False
        self._error: Optional[BaseException] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._siterank_task: Optional[asyncio.Task] = None

        if len(self.ledger.resumed_sites) > 0:
            # Resumed sites are never re-assigned, so no peer will summarise
            # them; derive their SiteLink counts locally (identical code,
            # identical counts — the graph is content-addressed).
            self._recover_resumed_state()

    # ------------------------------------------------------------------ #
    @property
    def n_slots(self) -> int:
        """Peers the round is staffed with (partition names available)."""
        return len(self.assignment)

    @property
    def address(self) -> str:
        """``host:port`` the coordinator listens on (after :meth:`start`)."""
        return f"{self.host}:{self.port}"

    async def start(self, *, metrics_port: Optional[int] = None) -> None:
        """Bind the listening socket (and optionally the /metrics surface)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, metrics_port)
            self.metrics_port = \
                self._metrics_server.sockets[0].getsockname()[1]

    async def run(self, *, metrics_port: Optional[int] = None
                  ) -> DeploymentReport:
        """:meth:`start` + :meth:`wait` in one call."""
        await self.start(metrics_port=metrics_port)
        return await self.wait()

    async def wait(self) -> DeploymentReport:
        """Run the round to completion and return the live report."""
        if self._server is None:
            raise ProtocolError("coordinator not started")
        started = time.monotonic()
        try:
            return await asyncio.wait_for(self._round(),
                                          timeout=self.round_timeout)
        except asyncio.TimeoutError:
            raise ProtocolError(
                f"round did not complete within {self.round_timeout}s "
                f"({len(self.ledger.pending_sites())} sites pending after "
                f"{time.monotonic() - started:.1f}s)") from None
        finally:
            await self._shutdown()

    # ------------------------------------------------------------------ #
    async def _round(self) -> DeploymentReport:
        await self._staffed.wait()
        self._raise_on_error()
        round_start = time.monotonic()
        self._round_active = True
        self._monitor_task = asyncio.create_task(self._monitor_heartbeats())

        pending = set(self.ledger.pending_sites())
        for session in list(self._sessions):
            if not session.alive:
                continue
            # Assignment-list order, not plan order: it is what the
            # simulator sends, so fault-free live frames match it bytewise.
            sites = [site for site in self.assignment.get(session.name, [])
                     if site in pending]
            await self._assign(session, sites)
        # A peer that died during staffing (or n_peers > joined slots)
        # leaves its partition unowned; treat those sites as orphans now.
        await self._dispatch_orphans()
        self._maybe_start_siterank()

        await self._results_done.wait()
        self._raise_on_error()
        site_result, coordinator_seconds = await self._finish_siterank()

        compose_started = time.perf_counter()
        ranking = await asyncio.to_thread(self._compose, site_result)
        coordinator_seconds += time.perf_counter() - compose_started
        makespan = time.monotonic() - round_start
        self._finished = True

        await self._broadcast_round_complete(makespan)
        self.ledger.mark_complete()

        per_peer = {session.name: session.busy_seconds
                    for session in self._sessions}
        obs.set_gauge("cluster_round_makespan_seconds", makespan)
        return DeploymentReport(
            ranking=ranking,
            siterank=site_result,
            architecture="flat",
            n_peers=len(self._sessions),
            message_count=self.log.count,
            total_bytes=self.log.total_bytes,
            messages_by_type=self.log.count_by_type(),
            bytes_by_type=self.log.bytes_by_type(),
            makespan_seconds=makespan,
            serial_compute_seconds=sum(per_peer.values())
            + coordinator_seconds,
            coordinator_seconds=coordinator_seconds,
            per_peer_compute_seconds=dict(per_peer),
            measured_wall_seconds=makespan,
            executor_name="cluster",
            dispatch_bytes=0,
            transport="tcp",
            mode="live",
            per_peer_wall_seconds=dict(per_peer),
            reassigned_sites=tuple(self._reassigned),
        )

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            message, nbytes = await read_message(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ProtocolError):
            writer.close()
            return
        if not isinstance(message, JoinRequest):
            writer.close()
            return
        self._record(message, nbytes)
        if self._finished:
            await self._refuse(writer, message, "round already complete")
            return
        if message.graph_digest != self.graph_digest:
            await self._refuse(
                writer, message,
                f"graph digest mismatch (coordinator has "
                f"{self.graph_digest}, peer has {message.graph_digest})")
            return
        name = self._next_logical_name()
        session = _PeerSession(name, reader, writer)
        self._sessions.append(session)
        self._session_of[name] = session
        ack = JoinAck(sender=COORDINATOR, recipient=name, accepted=True,
                      assigned_name=name,
                      heartbeat_seconds=self.heartbeat_seconds,
                      damping=self.damping, tol=self.tol,
                      max_iter=self.max_iter, batch_sites=self.batch_sites)
        await self._send(session, ack)
        obs.inc("cluster_peers_joined_total")
        if (not self._staffed.is_set()
                and sum(s.alive for s in self._sessions) >= self.n_slots):
            self._staffed.set()
        if self._round_active:
            # Late joiner (e.g. a restarted peer process): it becomes a
            # target for orphaned pending work immediately.
            await self._dispatch_orphans()
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.append(task)
        await self._session_loop(session)

    def _next_logical_name(self) -> str:
        index = len(self._sessions)
        names = list(self.assignment)
        if index < len(names):
            return names[index]
        return f"peer-{index:04d}"

    async def _refuse(self, writer: asyncio.StreamWriter,
                      request: JoinRequest, reason: str) -> None:
        refusal = JoinAck(sender=COORDINATOR,
                          recipient=request.peer_name or "peer",
                          accepted=False, reason=reason)
        frame = encode_message(refusal)
        self._record(refusal, len(frame))
        try:
            await write_message(writer, refusal, frame=frame)
        finally:
            writer.close()

    async def _session_loop(self, session: _PeerSession) -> None:
        """Dispatch one peer's incoming messages until it leaves or dies."""
        try:
            while True:
                message, nbytes = await read_message(session.reader)
                self._record(message, nbytes)
                obs.inc("cluster_wire_bytes_total", float(nbytes),
                        direction="in")
                session.last_seen = time.monotonic()
                if isinstance(message, Heartbeat):
                    session.busy_seconds = max(session.busy_seconds,
                                               message.busy_seconds)
                elif isinstance(message, SiteLinkSummary):
                    self._on_summary(message)
                elif isinstance(message, LocalRankResult):
                    self._on_result(session, message)
                elif isinstance(message, Goodbye):
                    session.said_goodbye = True
                    session.busy_seconds = max(session.busy_seconds,
                                               message.busy_seconds)
                    return
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except ProtocolError:
            pass  # malformed frame: treat the peer as failed
        finally:
            if not session.said_goodbye and not self._finished:
                await self._peer_dead(session)
            else:
                session.alive = False

    # ------------------------------------------------------------------ #
    # Protocol phases
    # ------------------------------------------------------------------ #
    async def _assign(self, session: _PeerSession,
                      sites: List[str]) -> None:
        """Send one peer its assignment and the per-site compute requests."""
        if not sites:
            return
        session.assigned.update(sites)
        await self._send(session, AssignSitesMessage(
            sender=COORDINATOR, recipient=session.name,
            sites=tuple(sites)))
        for site in sites:
            self.ledger.record_assignment(site, session.name)
        for site in sites:
            task = self.plan.task_for(site)
            start = self.ledger.warm.local_start(site, task.doc_ids)
            request = ComputeLocalRankRequest(
                sender=COORDINATOR, recipient=session.name, site=site,
                damping=self.damping, tol=self.tol, max_iter=self.max_iter,
                start=() if start is None
                else tuple(float(v) for v in start))
            self._request_sent_at[site] = time.monotonic()
            await self._send(session, request)

    def _on_summary(self, message: SiteLinkSummary) -> None:
        """Record SiteLink counts, deduplicating per source site.

        After a re-assignment two peers may summarise the same site; the
        counts are identical (both derive from the same content-addressed
        graph), so first-wins is safe and keeps totals exact.
        """
        by_source: Dict[str, List[Tuple[str, str, int]]] = {
            site: [] for site in message.sites}
        for source, target, count in message.counts:
            by_source.setdefault(source, []).append((source, target, count))
        for source, triples in by_source.items():
            self._counts_by_source.setdefault(source, tuple(triples))
        self._maybe_start_siterank()

    def _on_result(self, session: _PeerSession,
                   message: LocalRankResult) -> None:
        site = message.site
        if site not in self.ledger.jobs:
            raise ProtocolError(f"result for unknown site {site!r}")
        if site in self._local:
            return  # duplicate after a false-positive death: first wins
        self._local[site] = LocalDocRank(
            site=site, doc_ids=list(message.doc_ids),
            scores=message.scores_array(), iterations=message.iterations)
        self.ledger.record_result(site, session.name, message.doc_ids,
                                  message.scores, message.iterations)
        sent_at = self._request_sent_at.get(site)
        if sent_at is not None:
            obs.observe("cluster_site_roundtrip_seconds",
                        time.monotonic() - sent_at, peer=session.name)
        if not self.ledger.pending_sites():
            self._results_done.set()

    def _maybe_start_siterank(self) -> None:
        """Kick off the SiteRank as soon as summary coverage is complete.

        This is the paper's decisive concurrency: the SiteRank needs link
        counts only, so it runs while the peers' local DocRanks are still
        converging.
        """
        if self._siterank_started.is_set():
            return
        if not all(site in self._counts_by_source
                   for site in self.docgraph.sites()):
            return
        self._siterank_started.set()
        self._siterank_task = asyncio.create_task(
            asyncio.to_thread(self._compute_siterank))

    def _compute_siterank(self) -> Tuple[SiteRankResult, float]:
        started = time.perf_counter()
        sitegraph = assemble_sitegraph(
            self.docgraph,
            (triple for site in self.docgraph.sites()
             for triple in self._counts_by_source[site]))
        result = siterank(sitegraph, self.site_damping, tol=self.tol,
                          max_iter=self.max_iter)
        return result, time.perf_counter() - started

    async def _finish_siterank(self) -> Tuple[SiteRankResult, float]:
        if self._siterank_task is None:
            raise ProtocolError(
                "round results complete but SiteLink summaries never "
                "covered every site")
        return await self._siterank_task

    def _compose(self, site_result: SiteRankResult) -> WebRankingResult:
        """The shared step-5 composition (bitwise the centralized one)."""
        local = {site: self._local[site] for site in self.docgraph.sites()}
        total_iterations = site_result.iterations + sum(
            rank.iterations for rank in local.values())
        return compose_ranking(self.docgraph, self.docgraph.sites(),
                               site_result, local,
                               method="distributed-flat",
                               iterations=total_iterations)

    # ------------------------------------------------------------------ #
    # Fault tolerance
    # ------------------------------------------------------------------ #
    async def _monitor_heartbeats(self) -> None:
        timeout = self.heartbeat_seconds * HEARTBEAT_TIMEOUT_FACTOR
        while not self._finished:
            await asyncio.sleep(self.heartbeat_seconds / 2)
            now = time.monotonic()
            for session in list(self._sessions):
                if session.alive and now - session.last_seen > timeout:
                    await self._peer_dead(session)

    async def _peer_dead(self, session: _PeerSession) -> None:
        """Declare a peer failed and re-assign its unfinished work."""
        if not session.alive:
            return
        session.alive = False
        session.writer.close()
        obs.inc("cluster_peer_failures_total")
        if not self._round_active or self._finished:
            return
        await self._dispatch_orphans()

    async def _dispatch_orphans(self) -> None:
        """Re-assign pending sites whose owner is gone to live peers."""
        pending = set(self.ledger.pending_sites())
        owned = {site for session in self._sessions if session.alive
                 for site in session.assigned}
        orphans = [site for site in self.docgraph.sites()
                   if site in pending and site not in owned]
        if not orphans:
            return
        survivors = [session for session in self._sessions if session.alive]
        if not survivors:
            self._fail(ProtocolError(
                f"all peers died with {len(orphans)} sites pending"))
            return
        plan: Dict[str, List[str]] = {s.name: [] for s in survivors}
        load = {s.name: len(s.assigned & pending) for s in survivors}
        for site in orphans:
            target = min(survivors, key=lambda s: load[s.name])
            plan[target.name].append(site)
            load[target.name] += 1
        for session in survivors:
            sites = plan[session.name]
            if not sites:
                continue
            self._reassigned.extend(sites)
            obs.inc("cluster_reassigned_sites_total", float(len(sites)))
            await self._assign(session, sites)

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._staffed.set()
        self._results_done.set()

    def _raise_on_error(self) -> None:
        if self._error is not None:
            raise self._error

    # ------------------------------------------------------------------ #
    # Resume support
    # ------------------------------------------------------------------ #
    def _recover_resumed_state(self) -> None:
        """Rebuild done sites' results (bitwise) from the durable ledger."""
        for site in self.ledger.resumed_sites:
            cached = self.ledger.warm.local_vector(site)
            assert cached is not None  # JobLedger.open guarantees this
            doc_ids, vector = cached
            self._local[site] = LocalDocRank(
                site=site, doc_ids=list(doc_ids), scores=vector,
                iterations=self.ledger.iterations_of(site))
        # No peer will be asked about resumed sites, so their SiteLink
        # counts are derived locally — same code, same counts.
        resumed = sorted(self.ledger.resumed_sites)
        helper = _SummaryHelper(name=COORDINATOR, docgraph=self.docgraph,
                                sites=resumed)
        summary = helper.summarize_sitelinks(COORDINATOR)
        self._on_summary(summary)
        if not self.ledger.pending_sites():
            self._results_done.set()

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    async def _broadcast_round_complete(self, makespan: float) -> None:
        goodbye_window = max(1.0, 4 * self.heartbeat_seconds)
        for session in self._sessions:
            if not session.alive:
                continue
            try:
                await self._send(session, RoundComplete(
                    sender=COORDINATOR, recipient=session.name,
                    makespan_seconds=makespan))
            except (ConnectionError, OSError):  # pragma: no cover
                continue
        deadline = time.monotonic() + goodbye_window
        while (time.monotonic() < deadline
               and any(s.alive and not s.said_goodbye
                       for s in self._sessions)):
            await asyncio.sleep(self.heartbeat_seconds / 4)

    async def _shutdown(self) -> None:
        """Close every socket and background task; never leak either."""
        self._finished = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._siterank_task is not None and not self._siterank_task.done():
            self._siterank_task.cancel()
        for session in self._sessions:
            session.writer.close()
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for session in self._sessions:
            try:
                await session.writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._reader_tasks:
            await asyncio.wait(self._reader_tasks, timeout=2.0)
            for task in self._reader_tasks:
                if not task.done():  # pragma: no cover - stuck teardown
                    task.cancel()

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    async def _send(self, session: _PeerSession, message) -> None:
        frame = encode_message(message)
        self._record(message, len(frame))
        async with session.write_lock:
            await write_message(session.writer, message, frame=frame)
        obs.inc("cluster_wire_bytes_total", float(len(frame)),
                direction="out")

    def _record(self, message, nbytes: int) -> None:
        self.log.record(message, wire_bytes=nbytes)
        obs.inc("cluster_messages_total", type=type(message).__name__)

    async def _handle_metrics(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        """Minimal Prometheus scrape surface (GET /metrics)."""
        try:
            request_line = await reader.readline()
            while (await reader.readline()).strip():
                pass  # drain headers
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path == "/metrics":
                body = obs.render_prometheus().encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                f"HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - scrape races
            pass
        finally:
            writer.close()
