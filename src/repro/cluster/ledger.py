"""Durable job ledger of the cluster coordinator.

The ledger is the coordinator's crash recovery: a JSON file (written
atomically via :func:`repro.io.save_json`'s write-then-rename) recording,
for every site of the round, who owns it and whether its local DocRank has
been received — plus a companion warm-state file holding the converged
vectors themselves.  A restarted coordinator opens the ledger, validates
that it describes the same web (graph digest) under the same solver
parameters, recovers the done sites' vectors *bitwise* from the warm state
(JSON floats round-trip exactly through ``repr``), and only schedules the
still-pending sites — resuming instead of recomputing.

The shape follows the central-index manifest idiom: one registry of jobs
with explicit per-job state, advanced by atomic whole-file rewrites, never
edited in place.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.warm import WarmStartState
from ..exceptions import ProtocolError
from ..io import load_json, save_json
from ..io.serialization import load_warm_state, save_warm_state

#: Job states a site moves through.  ``pending`` covers both "never
#: assigned" and "assigned but no result yet" — the ``peer`` field tells
#: them apart; a coordinator restart re-assigns either kind.
STATE_PENDING = "pending"
STATE_DONE = "done"

LEDGER_VERSION = 1


def score_digest(scores: Sequence[float]) -> str:
    """A short digest of a result vector (ledger bookkeeping, not proof)."""
    array = np.asarray(scores, dtype=float)
    return hashlib.sha256(array.tobytes()).hexdigest()[:16]


class JobLedger:
    """Assignment → state → result-digest registry for one ranking round.

    Parameters
    ----------
    path:
        The ledger JSON file, or ``None`` for a purely in-memory ledger
        (the coordinator without ``--ledger``: same bookkeeping, no
        durability).  The companion warm-state file lives next to it at
        ``<path>.warm.json``.
    graph_digest:
        :func:`repro.io.docgraph_digest` of the web being ranked.
    params:
        Solver parameters of the round (damping, tol, max_iter, …); a
        resume under different parameters must not reuse old vectors, so
        a mismatch discards the previous state.
    sites:
        Every site of the round.
    """

    def __init__(self, path: Optional[str | os.PathLike], *,
                 graph_digest: str, params: Dict[str, object],
                 sites: Sequence[str]) -> None:
        self.path = None if path is None else os.fspath(path)
        self.graph_digest = graph_digest
        self.params = {key: params[key] for key in sorted(params)}
        self.jobs: Dict[str, Dict[str, object]] = {
            site: {"state": STATE_PENDING, "peer": None,
                   "iterations": None, "digest": None}
            for site in sites
        }
        self.completed = False
        self.warm = WarmStartState()
        self.resumed_sites: List[str] = []

    # ------------------------------------------------------------------ #
    @property
    def warm_path(self) -> Optional[str]:
        """Path of the companion warm-state file (``None`` when in-memory)."""
        return None if self.path is None else self.path + ".warm.json"

    @classmethod
    def open(cls, path: Optional[str | os.PathLike], *, graph_digest: str,
             params: Dict[str, object],
             sites: Sequence[str]) -> "JobLedger":
        """Open (resuming) or create the ledger for a round.

        An existing ledger is resumed only when it describes the same
        graph, the same parameters and the same site set, *and* the
        previous round did not complete; anything else starts fresh (a
        completed ledger means the caller wants a new round, a mismatched
        one would poison the results).  Resumed ``done`` sites must have
        their vector in the warm-state file — a done entry without one is
        demoted to pending rather than trusted.
        """
        ledger = cls(path, graph_digest=graph_digest, params=params,
                     sites=sites)
        if ledger.path is None or not os.path.exists(ledger.path):
            ledger.save()
            return ledger
        try:
            payload = load_json(ledger.path)
        except ValueError as error:
            raise ProtocolError(
                f"corrupt job ledger {ledger.path}: {error}") from None
        if (not isinstance(payload, dict)
                or payload.get("version") != LEDGER_VERSION
                or payload.get("graph_digest") != graph_digest
                or payload.get("params") != ledger.params
                or set(payload.get("jobs", {})) != set(sites)
                or payload.get("completed")):
            ledger.save()
            return ledger
        warm = None
        if os.path.exists(ledger.warm_path):
            warm = load_warm_state(ledger.warm_path)
        for site, entry in payload["jobs"].items():
            if entry.get("state") != STATE_DONE:
                continue
            if warm is None or warm.local_vector(site) is None:
                continue  # done without a durable vector: recompute
            ledger.jobs[site] = {"state": STATE_DONE,
                                 "peer": entry.get("peer"),
                                 "iterations": int(entry.get("iterations", 0)),
                                 "digest": entry.get("digest")}
            ledger.resumed_sites.append(site)
        if warm is not None:
            ledger.warm = warm
        ledger.save()
        return ledger

    # ------------------------------------------------------------------ #
    def record_assignment(self, site: str, peer: str) -> None:
        """Note which peer currently owns a pending site."""
        job = self._job(site)
        job["peer"] = peer
        self.save()

    def record_result(self, site: str, peer: str, doc_ids: Sequence[int],
                      scores: Sequence[float], iterations: int) -> None:
        """Mark a site done, persisting its vector *before* its state.

        Write order matters for crash safety: the warm vector is durable
        first, so a ledger that says ``done`` always has the vector to
        back it (the inverse order could resume a done site with no data —
        :meth:`open` demotes such entries, so this is belt and braces).
        """
        job = self._job(site)
        self.warm.record_local(site, doc_ids, np.asarray(scores, dtype=float))
        if self.warm_path is not None:
            save_warm_state(self.warm, self.warm_path)
        job.update(state=STATE_DONE, peer=peer, iterations=int(iterations),
                   digest=score_digest(scores))
        self.save()

    def mark_complete(self) -> None:
        """Seal the round; the next :meth:`open` starts fresh."""
        self.completed = True
        self.save()

    # ------------------------------------------------------------------ #
    def pending_sites(self) -> List[str]:
        """Sites still needing a local DocRank, in ledger (site) order."""
        return [site for site, job in self.jobs.items()
                if job["state"] == STATE_PENDING]

    def done_sites(self) -> List[str]:
        """Sites whose result is durable, in ledger (site) order."""
        return [site for site, job in self.jobs.items()
                if job["state"] == STATE_DONE]

    def owner_of(self, site: str) -> Optional[str]:
        """The peer currently recorded against a site (may be ``None``)."""
        return self._job(site)["peer"]  # type: ignore[return-value]

    def iterations_of(self, site: str) -> int:
        """Recorded power iterations of a done site."""
        job = self._job(site)
        if job["state"] != STATE_DONE:
            raise ProtocolError(f"site {site!r} has no recorded result")
        return int(job["iterations"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    def save(self) -> None:
        """Atomically rewrite the ledger file (no-op for in-memory ledgers)."""
        if self.path is None:
            return
        save_json({
            "version": LEDGER_VERSION,
            "graph_digest": self.graph_digest,
            "params": self.params,
            "completed": self.completed,
            "jobs": self.jobs,
        }, self.path, atomic=True)

    def _job(self, site: str) -> Dict[str, object]:
        try:
            return self.jobs[site]
        except KeyError:
            raise ProtocolError(
                f"ledger has no job for site {site!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JobLedger(path={self.path!r}, "
                f"done={len(self.done_sites())}/{len(self.jobs)})")
