"""Control messages and constants of the live cluster protocol.

The live deployment reuses the ranking protocol of
:mod:`repro.distributed.messages` verbatim — ``AssignSitesMessage``,
``SiteLinkSummary``, ``ComputeLocalRankRequest`` and ``LocalRankResult``
travel over TCP exactly as the simulator accounts them, which is what
makes simulated and measured wire bytes directly comparable.  This module
adds only the *session* messages real processes need on top: joining,
heartbeats, round completion and goodbyes.

Protocol flow (flat architecture, star topology around the coordinator)::

    peer                               coordinator
    ----                               -----------
    JoinRequest(graph digest)  ---->
                               <----   JoinAck(name, round parameters)
        ... coordinator waits for n_peers accepted joins ...
                               <----   AssignSitesMessage(sites)
    SiteLinkSummary(sites)     ---->
                               <----   ComputeLocalRankRequest × site
    Heartbeat (periodic)       ---->
    LocalRankResult × site     ---->
        ... SiteRank + composition on the coordinator ...
                               <----   RoundComplete
    Goodbye(wall seconds)      ---->   (connection closes)

A peer that misses :data:`HEARTBEAT_TIMEOUT_FACTOR` heartbeat intervals —
or whose connection drops — is declared dead; its *pending* sites are
re-assigned to survivors via supplemental ``AssignSitesMessage`` +
request bursts (done sites stay done, their vectors are already durable
in the coordinator's warm state).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributed.codec import wire_message
from ..distributed.messages import Message

#: Node name of the coordinator on the wire (same as the simulator's).
COORDINATOR = "coordinator"

#: Default seconds between peer heartbeats.
DEFAULT_HEARTBEAT_SECONDS = 0.5

#: A peer is declared dead after this many heartbeat intervals of silence.
HEARTBEAT_TIMEOUT_FACTOR = 6.0

#: Default seconds a whole round may take before the coordinator gives up.
DEFAULT_ROUND_TIMEOUT = 300.0


@wire_message()
@dataclass(frozen=True)
class JoinRequest(Message):
    """Peer → coordinator: first message on a fresh connection.

    *graph_digest* is :func:`repro.io.docgraph_digest` of the peer's local
    copy of the web; the coordinator refuses peers ranking a different
    graph (a live deployment has no other way to notice divergent inputs).
    """

    peer_name: str = ""
    graph_digest: str = ""


@wire_message()
@dataclass(frozen=True)
class JoinAck(Message):
    """Coordinator → peer: admission decision plus the round parameters.

    The coordinator names the peer (*assigned_name* — logical names follow
    the partitioner's ``peer-0000`` scheme so live traffic matches the
    simulator byte-for-byte) and dictates every solver parameter, so all
    peers compute under one configuration regardless of their own flags.
    """

    accepted: bool = True
    reason: str = ""
    assigned_name: str = ""
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS
    damping: float = 0.85
    tol: float = 1e-10
    max_iter: int = 1000
    batch_sites: bool = False


@wire_message()
@dataclass(frozen=True)
class Heartbeat(Message):
    """Peer → coordinator: liveness beacon.

    *busy_seconds* is the peer's cumulative measured compute wall-clock,
    which is how per-peer wall times reach the
    :class:`~repro.distributed.coordinator.DeploymentReport` without a
    dedicated reporting message.
    """

    seq: int = 0
    busy_seconds: float = 0.0


@wire_message()
@dataclass(frozen=True)
class RoundComplete(Message):
    """Coordinator → peers: the round is over, disconnect after a goodbye."""

    makespan_seconds: float = 0.0


@wire_message()
@dataclass(frozen=True)
class Goodbye(Message):
    """Peer → coordinator: orderly leave (round complete or SIGTERM drain)."""

    reason: str = ""
    busy_seconds: float = 0.0
