"""The live cluster peer: one OS process owning some sites' DocRanks.

A :class:`ClusterPeer` connects to the coordinator over TCP, registers,
and then mirrors what the simulator's in-process peers do — summarise
SiteLinks, compute local DocRanks through the same engine task objects
(:func:`repro.engine.plan.site_tasks_for` → :func:`execute_tasks`), stream
:class:`~repro.distributed.messages.LocalRankResult` frames back — except
every message now actually crosses a socket.  Because the compute path is
the engine's own, a live peer's scores are bitwise those of the serial
reference for the same sites.

Compute runs in a worker thread (``asyncio.to_thread``) so heartbeats keep
flowing while the power iterations grind; a SIGTERM drains — the current
batch finishes, results are sent, a ``Goodbye`` closes the session — and
``--fail-after N`` makes the process die abruptly (``os._exit``) after N
results, the deterministic stand-in for a mid-round crash that the fault
tolerance tests and benchmark E18 rely on.
"""

from __future__ import annotations

import asyncio
import os
import signal
from dataclasses import replace
from typing import Dict, List, Optional

from .. import obs
from ..distributed.codec import read_message, write_message
from ..distributed.messages import (
    AssignSitesMessage,
    ComputeLocalRankRequest,
    LocalRankResult,
)
from ..distributed.peer import Peer
from ..engine.plan import (
    batch_site_tasks,
    collect_site_results,
    execute_tasks,
    site_tasks_for,
)
from ..exceptions import ProtocolError
from ..io import docgraph_digest
from ..web.docgraph import DocGraph
from .protocol import COORDINATOR, Goodbye, Heartbeat, JoinAck, JoinRequest, RoundComplete


class ClusterPeer:
    """One ranking peer process.

    Parameters
    ----------
    docgraph:
        The peer's copy of the web.  Must hash-match the coordinator's
        (checked at join); the peer only ever *reads* the local subgraphs
        of the sites it is assigned.
    host / port:
        The coordinator's listening address.
    name:
        Requested display name (the coordinator assigns the logical
        ``peer-0000``-style name actually used on the wire).
    fail_after:
        Crash the process (``os._exit(1)``) after sending this many
        results — deterministic fault injection for the recovery tests.
    """

    def __init__(self, docgraph: DocGraph, host: str, port: int, *,
                 name: str = "", fail_after: Optional[int] = None) -> None:
        self.docgraph = docgraph
        self.host = host
        self.port = port
        self.requested_name = name
        self.fail_after = fail_after
        self.name = name or "peer"
        self.busy_seconds = 0.0
        self.sites_ranked = 0
        self._results_sent = 0
        self._ack: Optional[JoinAck] = None
        self._awaiting: List[str] = []  # announced sites, not yet computed
        self._requests: Dict[str, ComputeLocalRankRequest] = {}
        self._drain = asyncio.Event()
        self._write_lock = asyncio.Lock()
        self._writer: Optional[asyncio.StreamWriter] = None

    # ------------------------------------------------------------------ #
    async def run(self) -> int:
        """Join, serve one round, leave; returns the number of sites ranked."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._writer = writer
        self._install_signal_handlers()
        heartbeat_task = None
        try:
            await self._send(JoinRequest(
                sender=self.name, recipient=COORDINATOR,
                peer_name=self.requested_name,
                graph_digest=docgraph_digest(self.docgraph)))
            ack, _nbytes = await read_message(reader)
            if not isinstance(ack, JoinAck):
                raise ProtocolError(
                    f"expected a JoinAck, got {type(ack).__name__}")
            if not ack.accepted:
                raise ProtocolError(f"coordinator refused join: {ack.reason}")
            self._ack = ack
            self.name = ack.assigned_name or self.name
            heartbeat_task = asyncio.create_task(
                self._heartbeat_loop(ack.heartbeat_seconds))
            await self._session(reader)
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        return self.sites_ranked

    # ------------------------------------------------------------------ #
    async def _session(self, reader: asyncio.StreamReader) -> None:
        """The peer's message loop: assignments in, results out."""
        while True:
            read = asyncio.ensure_future(read_message(reader))
            drain = asyncio.ensure_future(self._drain.wait())
            done, _pending = await asyncio.wait(
                {read, drain}, return_when=asyncio.FIRST_COMPLETED)
            if drain in done and read not in done:
                read.cancel()
                await self._leave("sigterm drain")
                return
            drain.cancel()
            try:
                message, _nbytes = read.result()
            except (asyncio.IncompleteReadError, ConnectionError):
                # Coordinator went away; nothing useful left to do.
                return
            if isinstance(message, AssignSitesMessage):
                await self._on_assignment(message)
            elif isinstance(message, ComputeLocalRankRequest):
                await self._on_request(message)
            elif isinstance(message, RoundComplete):
                await self._leave("round complete")
                return
            if self._drain.is_set():
                await self._leave("sigterm drain")
                return

    async def _on_assignment(self, message: AssignSitesMessage) -> None:
        """Accept sites and reply with their SiteLink summary."""
        fresh = [site for site in message.sites
                 if site not in self._awaiting]
        self._awaiting.extend(fresh)
        helper = Peer(name=self.name, docgraph=self.docgraph,
                      sites=list(message.sites))
        await self._send(helper.summarize_sitelinks(COORDINATOR))

    async def _on_request(self, message: ComputeLocalRankRequest) -> None:
        """Queue one site's request; compute when the assignment is covered."""
        if message.site not in self._awaiting:
            raise ProtocolError(
                f"request for unassigned site {message.site!r}")
        self._requests[message.site] = message
        if not all(site in self._requests for site in self._awaiting):
            return
        batch_sites, self._awaiting = self._awaiting, []
        requests = {site: self._requests.pop(site) for site in batch_sites}
        await self._compute_batch(batch_sites, requests)

    async def _compute_batch(
            self, sites: List[str],
            requests: Dict[str, ComputeLocalRankRequest]) -> None:
        """Rank *sites* through the engine and stream the results back."""
        assert self._ack is not None
        head = requests[sites[0]]
        tasks = site_tasks_for(self.docgraph, head.damping, sites=sites,
                               tol=head.tol, max_iter=head.max_iter)
        tasks = [
            task if requests[task.site].start_vector() is None
            else replace(task, start=requests[task.site].start_vector())
            for task in tasks
        ]
        payload = batch_site_tasks(tasks) if self._ack.batch_sites else tasks
        results, wall = await asyncio.to_thread(execute_tasks, payload)
        self.busy_seconds += wall
        obs.observe("cluster_peer_batch_seconds", wall, peer=self.name)
        by_site = collect_site_results(payload, results)
        for site in sites:
            rank = by_site[site]
            await self._send(LocalRankResult(
                sender=self.name, recipient=COORDINATOR, site=site,
                doc_ids=tuple(int(d) for d in rank.doc_ids),
                scores=tuple(float(s) for s in rank.scores),
                iterations=rank.iterations))
            self.sites_ranked += 1
            self._results_sent += 1
            obs.inc("cluster_peer_sites_ranked_total", peer=self.name)
            if (self.fail_after is not None
                    and self._results_sent >= self.fail_after):
                # Deterministic crash injection: die without goodbye,
                # without flushing, without cleanup — as a power cut would.
                os._exit(1)

    # ------------------------------------------------------------------ #
    async def _heartbeat_loop(self, interval: float) -> None:
        seq = 0
        while True:
            await asyncio.sleep(interval)
            seq += 1
            try:
                await self._send(Heartbeat(
                    sender=self.name, recipient=COORDINATOR, seq=seq,
                    busy_seconds=self.busy_seconds))
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                return

    async def _leave(self, reason: str) -> None:
        """Send the goodbye that closes the session cleanly."""
        try:
            await self._send(Goodbye(sender=self.name, recipient=COORDINATOR,
                                     reason=reason,
                                     busy_seconds=self.busy_seconds))
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass

    async def _send(self, message) -> None:
        assert self._writer is not None
        async with self._write_lock:
            nbytes = await write_message(self._writer, message)
        obs.inc("cluster_wire_bytes_total", float(nbytes), direction="out")

    def _install_signal_handlers(self) -> None:
        """SIGTERM → drain: finish the in-flight batch, say goodbye, exit."""
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, self._drain.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or unsupported platform: rely on close


def run_peer(docgraph: DocGraph, host: str, port: int, *, name: str = "",
             fail_after: Optional[int] = None) -> int:
    """Blocking entry point: run one peer to completion; returns sites ranked."""
    peer = ClusterPeer(docgraph, host, port, name=name,
                       fail_after=fail_after)
    return asyncio.run(peer.run())
