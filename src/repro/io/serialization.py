"""JSON serialisation of rankings and experiment reports.

The benchmark harness writes its measured rows to JSON so EXPERIMENTS.md can
reference concrete artefacts and so downstream tooling (plotting, regression
tracking) can consume them without re-running the benchmarks.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List

import numpy as np

from ..exceptions import ValidationError
from ..web.pipeline import WebRankingResult


def _jsonable(value: Any) -> Any:
    """Convert numpy / dataclass values into plain JSON-compatible types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    return value


def ranking_to_dict(result: WebRankingResult, *, top_k: int | None = None,
                    ) -> Dict[str, Any]:
    """Convert a :class:`WebRankingResult` into a JSON-serialisable dict.

    Parameters
    ----------
    top_k:
        When given, only the best *top_k* entries are included (keeps the
        files small for large graphs); the full score vector is omitted in
        that case.
    """
    if top_k is not None:
        if top_k <= 0:
            raise ValidationError("top_k must be positive")
        order = result.top_k(top_k)
        return {
            "method": result.method,
            "n_documents": result.n_documents,
            "iterations": result.iterations,
            "top": [
                {"doc_id": doc_id,
                 "url": result.urls[result.doc_ids.index(doc_id)],
                 "score": result.score_of(doc_id)}
                for doc_id in order
            ],
        }
    return {
        "method": result.method,
        "n_documents": result.n_documents,
        "iterations": result.iterations,
        "doc_ids": list(result.doc_ids),
        "urls": list(result.urls),
        "scores": result.scores.tolist(),
    }


def save_json(payload: Any, path: str | os.PathLike, *,
              atomic: bool = False) -> None:
    """Write any library object (dataclasses / numpy included) as JSON.

    With ``atomic=True`` the payload is written to a sibling temporary
    file, flushed to disk, and renamed over *path* in one
    :func:`os.replace` step — so a crash mid-save can never leave a torn
    file behind: readers see either the complete previous contents or the
    complete new ones.  The parent directory is fsynced after the rename,
    making the *rename itself* durable: without it a power loss can roll
    the directory entry back to the old file even though the new bytes
    were synced.  State files that a restarted process must be able to
    trust (:func:`save_warm_state`, ``repro serve --state``, the disk-graph
    and artifact-store manifests) use this.
    """
    if not atomic:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return
    path = os.fspath(path)
    # The temporary must live in the target's directory (os.replace is
    # only atomic within one filesystem) and carry a unique name
    # (mkstemp), so concurrent savers of the same path each write their
    # own complete file and the last rename wins — never an interleaving.
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Durability of the rename: the directory entry for *path* lives in
    # the directory's own blocks, which os.fsync on the file does not
    # touch.  Some platforms refuse to fsync a directory fd (or to open
    # one at all) — there the rename is still atomic, just not
    # power-loss-durable, so degrade silently.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(dir_fd)


def load_json(path: str | os.PathLike) -> Any:
    """Read a JSON file written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_warm_state(state, path: str | os.PathLike) -> None:
    """Persist a :class:`~repro.engine.warm.WarmStartState` as JSON.

    A restarted process can :func:`load_warm_state` the file and resume
    power iterations from the previous run's converged vectors — the
    ``repro serve --state`` startup path and
    :meth:`repro.api.Ranker.save_state` both write this format.

    The write is write-then-rename (``atomic=True``): a crash mid-save
    leaves the previous state file intact instead of a torn one the next
    startup would refuse to parse.
    """
    save_json(state.to_dict(), path, atomic=True)


def load_warm_state(path: str | os.PathLike):
    """Read a :func:`save_warm_state` file back into a ``WarmStartState``."""
    from ..engine.warm import WarmStartState

    payload = load_json(path)
    if not isinstance(payload, dict):
        raise ValidationError(
            f"warm-state file {os.fspath(path)!r} must contain a JSON object")
    return WarmStartState.from_dict(payload)


def experiment_rows_to_markdown(rows: List[Dict[str, Any]],
                                columns: List[str]) -> str:
    """Render benchmark rows as a GitHub-flavoured markdown table.

    Used by the benchmark harness to print paper-style tables and by the
    EXPERIMENTS.md generation helpers.
    """
    if not columns:
        raise ValidationError("columns must not be empty")
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, separator]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
