"""Reading and writing web graphs as edge lists.

Two plain-text formats are supported:

* **URL edge list** — one ``source-URL <whitespace> target-URL`` pair per
  line; comments start with ``#``.  This is the natural interchange format
  for crawls and is how users plug their own graphs into the library.
* **Integer edge list** — ``source-id target-id`` pairs with a separate URL
  table, produced by :func:`write_docgraph` for round-tripping DocGraphs
  losslessly (site assignments included).
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Iterable, Iterator, List, Optional, TextIO, Tuple

from ..exceptions import ValidationError
from ..web.docgraph import DocGraph

#: Default number of edges per chunk yielded by :func:`stream_url_edges`.
STREAM_CHUNK_EDGES = 8192


def iter_url_edges(lines: Iterable[str]) -> Iterator[Tuple[str, str]]:
    """Yield ``(source, target)`` URL pairs from edge-list lines.

    Blank lines and ``#`` comments are skipped; a line with other than two
    whitespace-separated fields raises.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 2:
            raise ValidationError(
                f"line {line_number}: expected 2 fields, got {len(fields)}")
        yield fields[0], fields[1]


def stream_url_edges(lines: Iterable[str], *,
                     chunk_edges: int = STREAM_CHUNK_EDGES,
                     ) -> Iterator[List[Tuple[str, str]]]:
    """Yield URL edge pairs in bounded chunks, never holding the whole file.

    The streaming counterpart of :func:`iter_url_edges` for out-of-core
    builds (:class:`repro.io.diskgraph.DiskGraphBuilder`): *lines* is
    consumed lazily — at most *chunk_edges* parsed edges (plus the one
    line being parsed) are resident at any moment, so an edge list larger
    than RAM streams through in constant memory.  Validation is identical
    to :func:`iter_url_edges` (same line numbering in errors).
    """
    if chunk_edges <= 0:
        raise ValidationError("chunk_edges must be positive")
    chunk: List[Tuple[str, str]] = []
    for edge in iter_url_edges(lines):
        chunk.append(edge)
        if len(chunk) >= chunk_edges:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def stream_url_edgelist(path: str | os.PathLike, *,
                        chunk_edges: int = STREAM_CHUNK_EDGES,
                        ) -> Iterator[List[Tuple[str, str]]]:
    """Open *path* and stream its URL edges in bounded chunks.

    A generator wrapper around :func:`stream_url_edges` that owns the file
    handle: the file is opened lazily on first iteration and closed when
    the generator is exhausted or garbage-collected.
    """
    with open(path, "r", encoding="utf-8") as handle:
        yield from stream_url_edges(handle, chunk_edges=chunk_edges)


def read_url_edgelist(path: str | os.PathLike, *,
                      site_extractor: Optional[Callable[[str], str]] = None,
                      ) -> DocGraph:
    """Load a DocGraph from a URL edge-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        return DocGraph.from_edges(iter_url_edges(handle),
                                   site_extractor=site_extractor)


def write_url_edgelist(docgraph: DocGraph, path: str | os.PathLike) -> None:
    """Write a DocGraph as a URL edge list (links only; isolated pages are lost)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro URL edge list\n")
        for source, target in docgraph.edges():
            handle.write(f"{docgraph.document(source).url}\t"
                         f"{docgraph.document(target).url}\n")


def write_docgraph(docgraph: DocGraph, path: str | os.PathLike) -> None:
    """Write a DocGraph losslessly (documents, sites and links).

    Format: a ``*NODES`` section of ``id <tab> site <tab> dynamic <tab> url``
    lines followed by a ``*EDGES`` section of ``source <tab> target`` lines.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("*NODES\n")
        for document in docgraph.documents():
            handle.write(f"{document.doc_id}\t{document.site}\t"
                         f"{int(document.is_dynamic)}\t{document.url}\n")
        handle.write("*EDGES\n")
        for source, target in docgraph.edges():
            handle.write(f"{source}\t{target}\n")


def docgraph_digest(docgraph: DocGraph) -> str:
    """A short hex digest identifying a DocGraph's exact content.

    Hashes the same lossless record stream :func:`write_docgraph` emits
    (documents with sites and dynamic flags, then edges), so two graphs
    have equal digests iff they would round-trip to the same file.  The
    cluster subsystem uses it to refuse peers ranking a different web than
    the coordinator and to validate job-ledger resumes.
    """
    digest = hashlib.sha256()
    for document in docgraph.documents():
        digest.update(f"{document.doc_id}\t{document.site}\t"
                      f"{int(document.is_dynamic)}\t{document.url}\n"
                      .encode("utf-8"))
    digest.update(b"*EDGES\n")
    for source, target in docgraph.edges():
        digest.update(f"{source}\t{target}\n".encode("utf-8"))
    return digest.hexdigest()[:16]


def read_docgraph(path: str | os.PathLike) -> DocGraph:
    """Read a DocGraph written by :func:`write_docgraph`."""
    graph = DocGraph(normalize=False)
    section = None
    id_map = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            if line == "*NODES":
                section = "nodes"
                continue
            if line == "*EDGES":
                section = "edges"
                continue
            if section == "nodes":
                fields = line.split("\t")
                if len(fields) != 4:
                    raise ValidationError(
                        f"line {line_number}: malformed node record")
                original_id, site, dynamic, url = fields
                try:
                    parsed_id, parsed_dynamic = int(original_id), int(dynamic)
                except ValueError:
                    raise ValidationError(
                        f"line {line_number}: non-numeric node fields "
                        f"{original_id!r} / {dynamic!r}") from None
                new_id = graph.add_document(url, site=site,
                                            is_dynamic=bool(parsed_dynamic))
                id_map[parsed_id] = new_id
            elif section == "edges":
                fields = line.split("\t")
                if len(fields) != 2:
                    raise ValidationError(
                        f"line {line_number}: malformed edge record")
                try:
                    source, target = int(fields[0]), int(fields[1])
                except ValueError:
                    raise ValidationError(
                        f"line {line_number}: non-numeric edge fields "
                        f"{fields[0]!r} / {fields[1]!r}") from None
                if source not in id_map or target not in id_map:
                    raise ValidationError(
                        f"line {line_number}: edge references unknown node")
                graph.add_link_by_id(id_map[source], id_map[target])
            else:
                raise ValidationError(
                    f"line {line_number}: content before *NODES section")
    if graph.n_documents == 0:
        raise ValidationError(f"{path!s} contains no documents")
    return graph
