"""Bundled small example datasets.

Tiny, hand-written web graphs with a known structure; used by the examples,
the documentation snippets and many unit tests.  They are defined in code
(not data files) so the library has no package-data requirements.
"""

from __future__ import annotations

from typing import List, Tuple

from ..web.docgraph import DocGraph

#: A ten-page, three-site toy web.  Site A is a well-connected "university"
#: style site, site B a small two-page site that links out a lot, and site C
#: a three-page ring that receives a single external link — a miniature of
#: the structures the campus-web generator produces at scale.
TOY_WEB_EDGES: List[Tuple[str, str]] = [
    # Site A (a.example.org): home, about, research, contact, news
    ("http://a.example.org/", "http://a.example.org/about.html"),
    ("http://a.example.org/", "http://a.example.org/research.html"),
    ("http://a.example.org/", "http://a.example.org/news.html"),
    ("http://a.example.org/about.html", "http://a.example.org/"),
    ("http://a.example.org/research.html", "http://a.example.org/"),
    ("http://a.example.org/news.html", "http://a.example.org/"),
    ("http://a.example.org/research.html", "http://a.example.org/contact.html"),
    ("http://a.example.org/contact.html", "http://a.example.org/"),
    # Site B (b.example.org): home + one page; links to A and C
    ("http://b.example.org/", "http://b.example.org/links.html"),
    ("http://b.example.org/links.html", "http://a.example.org/"),
    ("http://b.example.org/links.html", "http://c.example.org/"),
    ("http://b.example.org/links.html", "http://b.example.org/"),
    # Site C (c.example.org): three pages in a ring
    ("http://c.example.org/", "http://c.example.org/one.html"),
    ("http://c.example.org/one.html", "http://c.example.org/two.html"),
    ("http://c.example.org/two.html", "http://c.example.org/"),
    # Cross links into A from C
    ("http://c.example.org/two.html", "http://a.example.org/"),
    ("http://a.example.org/news.html", "http://b.example.org/"),
]


def toy_web() -> DocGraph:
    """The bundled ten-page, three-site toy web as a :class:`DocGraph`."""
    return DocGraph.from_edges(TOY_WEB_EDGES)


#: Edges of a deliberately spammy two-site web: site "good" is a normal small
#: site; site "spam" is a five-page clique all pointing at its target page.
SPAMMY_WEB_EDGES: List[Tuple[str, str]] = [
    ("http://good.example.org/", "http://good.example.org/a.html"),
    ("http://good.example.org/a.html", "http://good.example.org/b.html"),
    ("http://good.example.org/b.html", "http://good.example.org/"),
    ("http://good.example.org/a.html", "http://spam.example.net/target.html"),
] + [
    (f"http://spam.example.net/p{i}.html", f"http://spam.example.net/p{j}.html")
    for i in range(5) for j in range(5) if i != j
] + [
    (f"http://spam.example.net/p{i}.html", "http://spam.example.net/target.html")
    for i in range(5)
] + [
    ("http://spam.example.net/target.html", "http://spam.example.net/p0.html"),
]


def spammy_web() -> DocGraph:
    """A two-site toy web containing a five-page link farm."""
    return DocGraph.from_edges(SPAMMY_WEB_EDGES)
