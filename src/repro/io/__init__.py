"""I/O helpers: edge lists, serialisation, on-disk graph + ranking stores.

Besides the plain-text interchange formats, two binary on-disk formats
back the out-of-core path:

* :mod:`repro.io.diskgraph` — the memory-mapped CSR graph store
  (:class:`DiskGraph`) plus :class:`DiskGraphBuilder`, the
  bounded-memory streaming ingest;
* :mod:`repro.io.artifacts` — the ranked-artifact store
  (:class:`ArtifactStore`) of published score generations a server can
  serve straight off the page cache.
"""

from .artifacts import (
    ArtifactStore,
    GenerationWriter,
    RankedGeneration,
    open_artifact_store,
)
from .config_io import (
    CONFIG_SUFFIXES,
    TOML_READ_AVAILABLE,
    dumps_toml,
    load_config_mapping,
    loads_toml,
    save_config_mapping,
)
from .datasets import SPAMMY_WEB_EDGES, TOY_WEB_EDGES, spammy_web, toy_web
from .diskgraph import (
    DiskGraph,
    DiskGraphBuilder,
    open_diskgraph,
    write_diskgraph,
)
from .edgelist import (
    STREAM_CHUNK_EDGES,
    docgraph_digest,
    iter_url_edges,
    read_docgraph,
    read_url_edgelist,
    stream_url_edgelist,
    stream_url_edges,
    write_docgraph,
    write_url_edgelist,
)
from .serialization import (
    experiment_rows_to_markdown,
    load_json,
    load_warm_state,
    ranking_to_dict,
    save_json,
    save_warm_state,
)

__all__ = [
    "ArtifactStore",
    "GenerationWriter",
    "RankedGeneration",
    "open_artifact_store",
    "CONFIG_SUFFIXES",
    "TOML_READ_AVAILABLE",
    "dumps_toml",
    "load_config_mapping",
    "loads_toml",
    "save_config_mapping",
    "SPAMMY_WEB_EDGES",
    "TOY_WEB_EDGES",
    "spammy_web",
    "toy_web",
    "DiskGraph",
    "DiskGraphBuilder",
    "open_diskgraph",
    "write_diskgraph",
    "STREAM_CHUNK_EDGES",
    "docgraph_digest",
    "iter_url_edges",
    "read_docgraph",
    "read_url_edgelist",
    "stream_url_edgelist",
    "stream_url_edges",
    "write_docgraph",
    "write_url_edgelist",
    "experiment_rows_to_markdown",
    "load_json",
    "load_warm_state",
    "ranking_to_dict",
    "save_json",
    "save_warm_state",
]
