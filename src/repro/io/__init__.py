"""I/O helpers: edge lists, JSON serialisation, bundled toy datasets."""

from .datasets import SPAMMY_WEB_EDGES, TOY_WEB_EDGES, spammy_web, toy_web
from .edgelist import (
    iter_url_edges,
    read_docgraph,
    read_url_edgelist,
    write_docgraph,
    write_url_edgelist,
)
from .serialization import (
    experiment_rows_to_markdown,
    load_json,
    ranking_to_dict,
    save_json,
)

__all__ = [
    "SPAMMY_WEB_EDGES",
    "TOY_WEB_EDGES",
    "spammy_web",
    "toy_web",
    "iter_url_edges",
    "read_docgraph",
    "read_url_edgelist",
    "write_docgraph",
    "write_url_edgelist",
    "experiment_rows_to_markdown",
    "load_json",
    "ranking_to_dict",
    "save_json",
]
