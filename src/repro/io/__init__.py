"""I/O helpers: edge lists, JSON/TOML serialisation, bundled toy datasets."""

from .config_io import (
    CONFIG_SUFFIXES,
    TOML_READ_AVAILABLE,
    dumps_toml,
    load_config_mapping,
    loads_toml,
    save_config_mapping,
)
from .datasets import SPAMMY_WEB_EDGES, TOY_WEB_EDGES, spammy_web, toy_web
from .edgelist import (
    docgraph_digest,
    iter_url_edges,
    read_docgraph,
    read_url_edgelist,
    write_docgraph,
    write_url_edgelist,
)
from .serialization import (
    experiment_rows_to_markdown,
    load_json,
    load_warm_state,
    ranking_to_dict,
    save_json,
    save_warm_state,
)

__all__ = [
    "CONFIG_SUFFIXES",
    "TOML_READ_AVAILABLE",
    "dumps_toml",
    "load_config_mapping",
    "loads_toml",
    "save_config_mapping",
    "SPAMMY_WEB_EDGES",
    "TOY_WEB_EDGES",
    "spammy_web",
    "toy_web",
    "docgraph_digest",
    "iter_url_edges",
    "read_docgraph",
    "read_url_edgelist",
    "write_docgraph",
    "write_url_edgelist",
    "experiment_rows_to_markdown",
    "load_json",
    "load_warm_state",
    "ranking_to_dict",
    "save_json",
    "save_warm_state",
]
