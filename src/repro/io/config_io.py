"""Reading and writing flat configuration mappings as JSON or TOML.

:class:`repro.api.RankingConfig` is a flat mapping of scalars, so its
on-disk form needs only a tiny subset of each format: JSON via the stdlib,
TOML read via :mod:`tomllib` (Python >= 3.11) and written by a minimal
emitter below (the stdlib can parse TOML but not produce it).  ``None``
values are omitted on write — TOML has no null, and an absent key already
means "use the default" for both formats.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping

from ..exceptions import ValidationError

try:  # Python >= 3.11 stdlib, with the tomli backport as the 3.10 fallback;
    # gated so interpreters with neither degrade to JSON-only.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ImportError:
        tomllib = None  # type: ignore[assignment]

#: Whether TOML configs can be read on this interpreter (writing always
#: works — the emitter below is self-contained).
TOML_READ_AVAILABLE = tomllib is not None

#: File suffixes recognised by :func:`load_config_mapping` / :func:`save_config_mapping`.
CONFIG_SUFFIXES = (".json", ".toml")


def _toml_key(key: str) -> str:
    """Render one mapping key as a (possibly quoted) TOML key."""
    if key and all(c.isalnum() or c in "-_" for c in key):
        return key
    return json.dumps(key)  # JSON string escaping is valid TOML


def _toml_value(key: str, value: Any) -> str:
    """Render one scalar (or nested mapping, as an inline table)."""
    if isinstance(value, bool):  # bool first: bool is a subclass of int
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, Mapping):
        inner = ", ".join(
            f"{_toml_key(k)} = {_toml_value(f'{key}.{k}', v)}"
            for k, v in value.items() if v is not None)
        return "{" + inner + "}"
    raise ValidationError(
        f"cannot write key {key!r} to TOML: unsupported value type "
        f"{type(value).__name__}")


def dumps_toml(mapping: Mapping[str, Any]) -> str:
    """Serialise a config mapping of scalars as a TOML document.

    ``None`` values are skipped (TOML has no null; a missing key means
    "default").  Nested mappings — the ``personalization`` section is the
    one nested key the config surface carries — render as inline tables,
    which round-trip through :mod:`tomllib` as plain dicts.
    """
    lines = []
    for key, value in mapping.items():
        if value is None:
            continue
        lines.append(f"{key} = {_toml_value(key, value)}")
    return "\n".join(lines) + "\n"


def loads_toml(text: str) -> Dict[str, Any]:
    """Parse a TOML document into a plain dict."""
    if tomllib is None:  # pragma: no cover - Python <= 3.10 without tomli
        raise ValidationError(
            "reading TOML requires Python >= 3.11 (tomllib) or the tomli "
            "package; use the JSON config format instead")
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ValidationError(f"malformed TOML: {error}") from None


def save_config_mapping(mapping: Mapping[str, Any],
                        path: str | os.PathLike) -> None:
    """Write a flat config mapping to *path*, format chosen by suffix."""
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    if suffix == ".toml":
        payload = dumps_toml(mapping)
    elif suffix == ".json":
        payload = json.dumps({key: value for key, value in mapping.items()
                              if value is not None},
                             indent=2, sort_keys=True) + "\n"
    else:
        raise ValidationError(
            f"unknown config format {suffix!r} for {os.fspath(path)!r}; "
            f"expected one of {CONFIG_SUFFIXES}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def load_config_mapping(path: str | os.PathLike) -> Dict[str, Any]:
    """Read a flat config mapping from *path*, format chosen by suffix."""
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    if suffix not in CONFIG_SUFFIXES:
        raise ValidationError(
            f"unknown config format {suffix!r} for {os.fspath(path)!r}; "
            f"expected one of {CONFIG_SUFFIXES}")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if suffix == ".toml":
        mapping = loads_toml(text)
    else:
        try:
            mapping = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"malformed JSON: {error}") from None
    if not isinstance(mapping, dict):
        raise ValidationError(
            f"config file {os.fspath(path)!r} must contain a table/object, "
            f"got {type(mapping).__name__}")
    return mapping
