"""On-disk, memory-mapped graph store for out-of-core ranking.

A *disk graph* is one versioned directory persisting exactly the buffer
families the engine already works with in RAM:

* per-site local adjacency blocks — the ``(data, indices, indptr)`` CSR
  triples :meth:`repro.web.docgraph.DocGraph.local_adjacency` extracts;
* the aggregated :class:`~repro.web.sitegraph.SiteGraph` (one more CSR
  family plus the site-size vector);
* per-site document-id vectors, optional preference vectors, and the
  document table (URL blob + offsets, site index, dynamic flags).

All arrays live back to back in a single ``blocks.bin``, placed by the
same :class:`~repro.linalg.layout.BumpLayout` codec the shared-memory
:class:`~repro.engine.arena.GraphArena` uses, and a ``manifest.json``
(written atomically via :func:`repro.io.serialization.save_json`) records
each array's dtype, byte offset and element count.  Readers rebuild every
matrix zero-copy with ``np.memmap`` +
:func:`repro.linalg.sparse_utils.csr_from_buffers`: opening a disk graph
faults in manifest-sized metadata only, and ranking it touches one site
block (or one packed batch of small sites) at a time.

Two build paths exist:

* :func:`write_diskgraph` — persist an in-memory :class:`DocGraph`
  (convenient for tests and for graphs that do fit in RAM);
* :class:`DiskGraphBuilder` — the streaming path behind
  ``repro rank --on-disk``: it ingests an edge list chunk by chunk,
  keeping only O(documents) vertex metadata resident while intra-site
  edges spill to bucketed temporary files, and emits the site blocks
  bucket by bucket at :meth:`~DiskGraphBuilder.finalize` — the full web's
  edge set is never materialised in memory.

The builder assigns document ids, sites and dynamic flags with exactly
the :meth:`DocGraph.add_link` rules (first-seen ids, URL normalisation,
host-based site extraction), so a streamed build of an edge list is
block-for-block identical to writing the equivalent in-memory DocGraph.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import GraphStructureError, ValidationError
from ..linalg.layout import ALIGNMENT, BumpLayout
from ..linalg.sparse_utils import coo_from_edges, csr_from_buffers
from ..web.docgraph import DocGraph, Document
from ..web.sitegraph import SiteGraph, aggregate_sitegraph
from ..web.url import is_dynamic_url, normalize_url, site_of
from .serialization import load_json, save_json

#: ``format`` field every disk-graph manifest must carry.
FORMAT_NAME = "repro-diskgraph"

#: Current (and only) manifest schema version.
FORMAT_VERSION = 1

#: File names inside a disk-graph directory.
MANIFEST_FILE = "manifest.json"
BLOCKS_FILE = "blocks.bin"

#: Number of spill buckets the streaming builder hashes sites into; the
#: finalize pass loads one bucket's intra-site edges at a time, so peak
#: builder memory is ~``intra_edges / SPILL_BUCKETS`` edge records.
SPILL_BUCKETS = 64

#: Edges buffered per bucket before a spill write (keeps the builder from
#: issuing one tiny file write per edge).
SPILL_BUFFER_EDGES = 16384


# --------------------------------------------------------------------- #
# Manifest array specs
# --------------------------------------------------------------------- #

def _spec(dtype: np.dtype, offset: int, count: int) -> Dict[str, object]:
    return {"dtype": np.dtype(dtype).str, "offset": int(offset),
            "count": int(count)}


def _check_spec(spec: object, nbytes: int, what: str) -> Dict[str, object]:
    """Validate one manifest array spec against the blocks-file size."""
    if not isinstance(spec, dict):
        raise ValidationError(f"{what}: array spec must be an object")
    for key in ("dtype", "offset", "count"):
        if key not in spec:
            raise ValidationError(f"{what}: array spec is missing {key!r}")
    try:
        dtype = np.dtype(spec["dtype"])
    except TypeError:
        raise ValidationError(
            f"{what}: unknown dtype {spec['dtype']!r}") from None
    offset, count = spec["offset"], spec["count"]
    if not isinstance(offset, int) or not isinstance(count, int) \
            or offset < 0 or count < 0:
        raise ValidationError(
            f"{what}: offset/count must be non-negative integers")
    if offset + count * dtype.itemsize > nbytes:
        raise ValidationError(
            f"{what}: array [{offset}, {offset + count * dtype.itemsize}) "
            f"exceeds the {nbytes}-byte block file")
    return spec


class _BlockWriter:
    """Append aligned arrays to a block file via the shared layout codec."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle = open(path, "wb")
        self._layout = BumpLayout(name=f"block file {path!r}")
        self._closed = False

    @property
    def nbytes(self) -> int:
        """Bytes the layout has consumed (final block-file size)."""
        return self._layout.used

    def write_array(self, array) -> Dict[str, object]:
        array = np.ascontiguousarray(array)
        offset = self._layout.place(array.nbytes)
        self._handle.seek(offset)
        array.tofile(self._handle)
        return _spec(array.dtype, offset, array.size)

    def write_csr(self, matrix) -> Dict[str, object]:
        csr = matrix.tocsr()
        # Canonical family order (layout.CSR_FAMILY): data, indices, indptr
        # — the same order GraphArena.add_csr writes into a segment.
        return {"shape": [int(csr.shape[0]), int(csr.shape[1])],
                "data": self.write_array(csr.data),
                "indices": self.write_array(csr.indices),
                "indptr": self.write_array(csr.indptr)}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Pad to the layout's end so every manifest offset lies within the
        # file (a trailing empty array may sit past the last written byte),
        # and make the data durable before the manifest points at it.
        self._handle.truncate(self._layout.used)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()


# --------------------------------------------------------------------- #
# Reader
# --------------------------------------------------------------------- #

class DiskGraph:
    """Zero-copy reader over a disk-graph directory.

    Every accessor creates *fresh* ``np.memmap`` views over exactly the
    byte ranges it needs and holds no mapping itself — when the caller
    drops the returned arrays the pages are unmapped, so streaming over
    the sites keeps process RSS bounded by one block regardless of graph
    size.  Manifest problems (missing files, truncated blocks, unknown
    versions, corrupt JSON) raise
    :class:`~repro.exceptions.ValidationError` at open time.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        manifest_path = os.path.join(self._path, MANIFEST_FILE)
        try:
            manifest = load_json(manifest_path)
        except FileNotFoundError:
            raise ValidationError(
                f"{self._path!r} is not a disk graph: no {MANIFEST_FILE}"
            ) from None
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"disk-graph manifest {manifest_path!r} is corrupt: {error}"
            ) from None
        if not isinstance(manifest, dict) \
                or manifest.get("format") != FORMAT_NAME:
            raise ValidationError(
                f"{manifest_path!r} is not a {FORMAT_NAME} manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise ValidationError(
                f"unsupported disk-graph version {manifest.get('version')!r} "
                f"(this build reads version {FORMAT_VERSION})")
        for key in ("blocks_file", "n_documents", "n_links", "sites",
                    "sitegraph", "documents"):
            if key not in manifest:
                raise ValidationError(
                    f"disk-graph manifest is missing {key!r}")
        self._blocks_path = os.path.join(self._path,
                                         str(manifest["blocks_file"]))
        try:
            self._blocks_nbytes = os.path.getsize(self._blocks_path)
        except OSError:
            raise ValidationError(
                f"disk graph {self._path!r} is missing its block file "
                f"{manifest['blocks_file']!r}") from None
        if not isinstance(manifest["sites"], list):
            raise ValidationError("disk-graph manifest: sites must be a list")
        self._entries: Dict[str, dict] = {}
        for entry in manifest["sites"]:
            if not isinstance(entry, dict) or "site" not in entry:
                raise ValidationError(
                    "disk-graph manifest: malformed site entry")
            site = str(entry["site"])
            if site in self._entries:
                raise ValidationError(
                    f"disk-graph manifest: duplicate site {site!r}")
            self._check_csr(entry.get("adjacency"), f"site {site!r}")
            _check_spec(entry.get("doc_ids"), self._blocks_nbytes,
                        f"site {site!r} doc_ids")
            if entry.get("preference") is not None:
                _check_spec(entry["preference"], self._blocks_nbytes,
                            f"site {site!r} preference")
            self._entries[site] = entry
        self._check_csr(manifest["sitegraph"].get("adjacency"), "sitegraph")
        documents = manifest["documents"]
        if not isinstance(documents, dict):
            raise ValidationError(
                "disk-graph manifest: documents must be an object")
        for key in ("url_blob", "url_offsets", "doc_sites", "is_dynamic"):
            _check_spec(documents.get(key), self._blocks_nbytes,
                        f"documents.{key}")
        self._manifest = manifest

    def _check_csr(self, family: object, what: str) -> None:
        if not isinstance(family, dict) or "shape" not in family:
            raise ValidationError(f"{what}: malformed CSR family")
        for name in ("data", "indices", "indptr"):
            _check_spec(family.get(name), self._blocks_nbytes,
                        f"{what} {name}")

    # ------------------------------------------------------------------ #
    # Mapping primitives
    # ------------------------------------------------------------------ #
    def _map(self, spec: Dict[str, object]) -> np.ndarray:
        """A fresh read-only memmap over one manifest array."""
        dtype = np.dtype(spec["dtype"])
        count = int(spec["count"])
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(self._blocks_path, dtype=dtype, mode="r",
                         offset=int(spec["offset"]), shape=(count,))

    def _map_csr(self, family: Dict[str, object]):
        shape = tuple(int(s) for s in family["shape"])
        return csr_from_buffers(self._map(family["data"]),
                                self._map(family["indices"]),
                                self._map(family["indptr"]), shape)

    # ------------------------------------------------------------------ #
    # Graph surface
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """The disk-graph directory."""
        return self._path

    @property
    def nbytes(self) -> int:
        """Size of the block file on disk."""
        return self._blocks_nbytes

    @property
    def n_documents(self) -> int:
        """Number of documents ``N_D``."""
        return int(self._manifest["n_documents"])

    @property
    def n_links(self) -> int:
        """Number of DocLinks (counting multiplicity, inter-site included)."""
        return int(self._manifest["n_links"])

    @property
    def n_sites(self) -> int:
        """Number of web sites ``N_S``."""
        return len(self._entries)

    def sites(self) -> List[str]:
        """All site identifiers, in first-seen order."""
        return list(self._entries)

    def site_sizes(self) -> Dict[str, int]:
        """``size(s)`` for every site."""
        return {site: int(entry["doc_ids"]["count"])
                for site, entry in self._entries.items()}

    def _entry(self, site: str) -> dict:
        try:
            return self._entries[site]
        except KeyError:
            raise GraphStructureError(f"unknown site {site!r}") from None

    def doc_ids_of(self, site: str) -> np.ndarray:
        """One site's global document ids (fresh int64 memmap)."""
        return self._map(self._entry(site)["doc_ids"])

    def local_block(self, site: str) -> Tuple[object, np.ndarray]:
        """One site's ``(local CSR, doc-id vector)`` as fresh memmap views.

        The zero-copy form the out-of-core engine hydrates per chunk;
        dropping the returned objects unmaps the block.
        """
        entry = self._entry(site)
        return self._map_csr(entry["adjacency"]), self._map(entry["doc_ids"])

    def local_adjacency(self, site: str) -> Tuple[object, List[int]]:
        """Drop-in for :meth:`DocGraph.local_adjacency` (ids as a list)."""
        matrix, doc_ids = self.local_block(site)
        return matrix, [int(doc_id) for doc_id in doc_ids]

    def preference(self, site: str) -> Optional[np.ndarray]:
        """One site's persisted preference vector, or ``None``."""
        spec = self._entry(site).get("preference")
        return None if spec is None else self._map(spec)

    def sitegraph(self) -> SiteGraph:
        """The aggregated SiteGraph (adjacency zero-copy over the blocks)."""
        entry = self._manifest["sitegraph"]
        return SiteGraph(sites=self.sites(),
                         adjacency=self._map_csr(entry["adjacency"]),
                         site_sizes=[int(size)
                                     for size in entry["site_sizes"]],
                         include_self_links=bool(
                             entry.get("include_self_links", False)))

    # ------------------------------------------------------------------ #
    # Document table
    # ------------------------------------------------------------------ #
    def _check_doc_id(self, doc_id: int) -> int:
        doc_id = int(doc_id)
        if not 0 <= doc_id < self.n_documents:
            raise GraphStructureError(f"unknown document id {doc_id}")
        return doc_id

    def url_of(self, doc_id: int) -> str:
        """Canonical URL of one document id."""
        doc_id = self._check_doc_id(doc_id)
        documents = self._manifest["documents"]
        offsets = self._map(documents["url_offsets"])
        blob = self._map(documents["url_blob"])
        start, end = int(offsets[doc_id]), int(offsets[doc_id + 1])
        return bytes(blob[start:end]).decode("utf-8")

    def site_of_document(self, doc_id: int) -> str:
        """Site identifier of a document id."""
        doc_id = self._check_doc_id(doc_id)
        doc_sites = self._map(self._manifest["documents"]["doc_sites"])
        return self.sites()[int(doc_sites[doc_id])]

    def document(self, doc_id: int) -> Document:
        """The full :class:`Document` record of one id."""
        doc_id = self._check_doc_id(doc_id)
        dynamic = self._map(self._manifest["documents"]["is_dynamic"])
        return Document(doc_id=doc_id, url=self.url_of(doc_id),
                        site=self.site_of_document(doc_id),
                        is_dynamic=bool(dynamic[doc_id]))

    def urls_of_positions(self, doc_ids: Sequence[int]) -> List[str]:
        """URLs of many document ids with one mapping of the URL table."""
        documents = self._manifest["documents"]
        offsets = self._map(documents["url_offsets"])
        blob = self._map(documents["url_blob"])
        urls = []
        for doc_id in doc_ids:
            index = self._check_doc_id(doc_id)
            start, end = int(offsets[index]), int(offsets[index + 1])
            urls.append(bytes(blob[start:end]).decode("utf-8"))
        return urls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiskGraph(path={self._path!r}, "
                f"n_documents={self.n_documents}, n_sites={self.n_sites})")


def open_diskgraph(path: str | os.PathLike) -> DiskGraph:
    """Open (and validate) a disk-graph directory."""
    return DiskGraph(path)


# --------------------------------------------------------------------- #
# Shared manifest/block emission
# --------------------------------------------------------------------- #

def _write_store(path: str, writer_fill: Callable[[_BlockWriter], dict]
                 ) -> DiskGraph:
    """Write blocks + manifest with crash-safe ordering.

    Blocks are written to a temporary sibling and renamed into place
    *before* the manifest (itself atomic write-then-rename with a parent
    fsync), so readers only ever see a manifest whose offsets point at
    complete block data — an interrupted write leaves the previous store
    (or no store) behind, never a torn one.
    """
    os.makedirs(path, exist_ok=True)
    fd, tmp_blocks = tempfile.mkstemp(dir=path, prefix=BLOCKS_FILE + ".tmp.")
    os.close(fd)
    writer = _BlockWriter(tmp_blocks)
    try:
        manifest = writer_fill(writer)
        manifest.update({
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "alignment": ALIGNMENT,
            "blocks_file": BLOCKS_FILE,
            "blocks_nbytes": writer.nbytes,
        })
        writer.close()
        os.replace(tmp_blocks, os.path.join(path, BLOCKS_FILE))
    except BaseException:
        try:
            writer.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        try:
            os.unlink(tmp_blocks)
        except OSError:
            pass
        raise
    save_json(manifest, os.path.join(path, MANIFEST_FILE), atomic=True)
    return DiskGraph(path)


def _document_table(writer: _BlockWriter, urls: Sequence[str],
                    site_indices: Sequence[int],
                    dynamic_flags: Sequence[bool]) -> dict:
    encoded = [url.encode("utf-8") for url in urls]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(blob) for blob in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return {
        "url_blob": writer.write_array(blob),
        "url_offsets": writer.write_array(offsets),
        "doc_sites": writer.write_array(
            np.asarray(site_indices, dtype=np.int32)),
        "is_dynamic": writer.write_array(
            np.asarray(dynamic_flags, dtype=np.uint8)),
    }


def write_diskgraph(docgraph: DocGraph, path: str | os.PathLike, *,
                    preferences: Optional[Dict[str, np.ndarray]] = None,
                    include_site_self_links: bool = False) -> DiskGraph:
    """Persist an in-memory :class:`DocGraph` as a disk graph.

    *preferences* optionally maps sites to local preference vectors (the
    per-document personalisation the out-of-core solve should use).
    """
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot persist an empty DocGraph")
    path = os.fspath(path)
    preferences = preferences or {}
    unknown = set(preferences) - set(docgraph.sites())
    if unknown:
        raise ValidationError(
            f"preferences reference unknown sites: {sorted(unknown)!r}")

    def fill(writer: _BlockWriter) -> dict:
        sites = docgraph.sites()
        site_index = {site: index for index, site in enumerate(sites)}
        entries = []
        for site in sites:
            local, doc_ids = docgraph.local_adjacency(site)
            entry = {
                "site": site,
                "adjacency": writer.write_csr(local),
                "doc_ids": writer.write_array(
                    np.asarray(doc_ids, dtype=np.int64)),
                "preference": None,
            }
            preference = preferences.get(site)
            if preference is not None:
                vector = np.ascontiguousarray(preference,
                                              dtype=float).ravel()
                if vector.size != len(doc_ids):
                    raise ValidationError(
                        f"preference for site {site!r} has length "
                        f"{vector.size}, expected {len(doc_ids)}")
                entry["preference"] = writer.write_array(vector)
            entries.append(entry)
        sitegraph = aggregate_sitegraph(
            docgraph, include_self_links=include_site_self_links)
        return {
            "n_documents": docgraph.n_documents,
            "n_links": docgraph.n_links,
            "sites": entries,
            "sitegraph": {
                "adjacency": writer.write_csr(sitegraph.adjacency),
                "site_sizes": [int(size) for size in sitegraph.site_sizes],
                "include_self_links": bool(sitegraph.include_self_links),
            },
            "documents": _document_table(
                writer,
                [document.url for document in docgraph.documents()],
                [site_index[document.site]
                 for document in docgraph.documents()],
                [document.is_dynamic for document in docgraph.documents()]),
        }

    return _write_store(path, fill)


# --------------------------------------------------------------------- #
# Streaming builder
# --------------------------------------------------------------------- #

class DiskGraphBuilder:
    """Build a disk graph from a streamed edge list in bounded memory.

    Only O(documents) vertex metadata stays resident (the URL→id map the
    id assignment fundamentally requires, plus per-document site/flag
    records); intra-site edges spill to :data:`SPILL_BUCKETS` bucketed
    temporary files and inter-site edges collapse into SiteLink counts as
    they arrive.  :meth:`finalize` then emits the per-site CSR blocks one
    bucket at a time, so peak memory never scales with the edge count.

    Document identity follows :meth:`DocGraph.add_link` exactly
    (normalised URLs, first-seen dense ids, *site_extractor* defaulting to
    the host-based :func:`repro.web.url.site_of`), which is what makes a
    streamed build bitwise-interchangeable with
    :func:`write_diskgraph` over the same edges.
    """

    def __init__(self, path: str | os.PathLike, *,
                 site_extractor: Optional[Callable[[str], str]] = None,
                 normalize: bool = True,
                 include_site_self_links: bool = False,
                 spill_buckets: int = SPILL_BUCKETS) -> None:
        if spill_buckets <= 0:
            raise ValidationError("spill_buckets must be positive")
        self._path = os.fspath(path)
        os.makedirs(self._path, exist_ok=True)
        self._site_extractor = site_extractor or site_of
        self._normalize = normalize
        self._include_self_links = bool(include_site_self_links)
        self._spill = tempfile.TemporaryDirectory(
            dir=self._path, prefix=".build.")
        self._n_buckets = int(spill_buckets)
        self._buffers: List[List[int]] = [[] for _ in range(self._n_buckets)]
        self._bucket_files: List[Optional[str]] = [None] * self._n_buckets
        # Vertex metadata (the resident O(documents) state).
        self._id_by_url: Dict[str, int] = {}
        self._urls: List[str] = []
        self._doc_site: List[int] = []
        self._dynamic: List[bool] = []
        self._sites: List[str] = []
        self._site_index: Dict[str, int] = {}
        self._docs_by_site: List[List[int]] = []
        # Edge accounting.
        self._sitelink_counts: Dict[Tuple[int, int], int] = {}
        self._n_links = 0
        self._finalized = False

    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Documents registered so far."""
        return len(self._urls)

    @property
    def n_links(self) -> int:
        """Edges ingested so far (counting multiplicity)."""
        return self._n_links

    @property
    def n_sites(self) -> int:
        """Distinct sites seen so far."""
        return len(self._sites)

    # ------------------------------------------------------------------ #
    def add_document(self, url: str, *, site: Optional[str] = None,
                     is_dynamic: Optional[bool] = None) -> int:
        """Register a document (idempotent); mirrors ``DocGraph.add_document``."""
        if self._finalized:
            raise ValidationError("builder is already finalized")
        key = normalize_url(url) if self._normalize else url
        existing = self._id_by_url.get(key)
        if existing is not None:
            return existing
        if site is None:
            site = self._site_extractor(key)
        if is_dynamic is None:
            try:
                is_dynamic = is_dynamic_url(key)
            except ValidationError:
                is_dynamic = False
        site_index = self._site_index.get(site)
        if site_index is None:
            site_index = len(self._sites)
            self._site_index[site] = site_index
            self._sites.append(site)
            self._docs_by_site.append([])
        doc_id = len(self._urls)
        self._id_by_url[key] = doc_id
        self._urls.append(key)
        self._doc_site.append(site_index)
        self._dynamic.append(bool(is_dynamic))
        self._docs_by_site[site_index].append(doc_id)
        return doc_id

    def add_edge(self, source_url: str, target_url: str) -> None:
        """Ingest one DocLink (endpoints registered on first sight)."""
        source = self.add_document(source_url)
        target = self.add_document(target_url)
        self._n_links += 1
        source_site = self._doc_site[source]
        target_site = self._doc_site[target]
        if source_site == target_site:
            buffer = self._buffers[source_site % self._n_buckets]
            buffer.append(source)
            buffer.append(target)
            if len(buffer) >= 2 * SPILL_BUFFER_EDGES:
                self._flush_bucket(source_site % self._n_buckets)
            if self._include_self_links:
                pair = (source_site, source_site)
                self._sitelink_counts[pair] = \
                    self._sitelink_counts.get(pair, 0) + 1
        else:
            pair = (source_site, target_site)
            self._sitelink_counts[pair] = \
                self._sitelink_counts.get(pair, 0) + 1

    def add_edges(self, edges: Iterable[Tuple[str, str]]) -> None:
        """Ingest many ``(source URL, target URL)`` pairs."""
        for source, target in edges:
            self.add_edge(source, target)

    def consume(self, chunks: Iterable[Sequence[Tuple[str, str]]]) -> None:
        """Ingest a chunked stream (``repro.io.edgelist.stream_url_edgelist``)."""
        for chunk in chunks:
            self.add_edges(chunk)

    # ------------------------------------------------------------------ #
    def _flush_bucket(self, bucket: int) -> None:
        buffer = self._buffers[bucket]
        if not buffer:
            return
        if self._bucket_files[bucket] is None:
            self._bucket_files[bucket] = os.path.join(
                self._spill.name, f"bucket-{bucket:04d}.bin")
        with open(self._bucket_files[bucket], "ab") as handle:
            np.asarray(buffer, dtype=np.int64).tofile(handle)
        self._buffers[bucket] = []

    def _bucket_edges(self, bucket: int) -> np.ndarray:
        path = self._bucket_files[bucket]
        if path is None:
            return np.empty((0, 2), dtype=np.int64)
        edges = np.fromfile(path, dtype=np.int64)
        return edges.reshape(-1, 2)

    def finalize(self) -> DiskGraph:
        """Emit site blocks, SiteGraph and document table; return the store."""
        if self._finalized:
            raise ValidationError("builder is already finalized")
        if not self._urls:
            raise GraphStructureError("cannot persist an empty graph")
        self._finalized = True
        for bucket in range(self._n_buckets):
            self._flush_bucket(bucket)
        doc_site = np.asarray(self._doc_site, dtype=np.int64)

        def fill(writer: _BlockWriter) -> dict:
            entries: List[Optional[dict]] = [None] * len(self._sites)
            for bucket in range(self._n_buckets):
                edges = self._bucket_edges(bucket)
                source_sites = doc_site[edges[:, 0]] if edges.size else \
                    np.empty(0, dtype=np.int64)
                for site_index in range(bucket, len(self._sites),
                                        self._n_buckets):
                    doc_ids = np.asarray(self._docs_by_site[site_index],
                                         dtype=np.int64)
                    local_edges = edges[source_sites == site_index]
                    # Site doc ids ascend (assigned in first-seen order),
                    # so local indices are searchsorted positions — the
                    # same local order DocGraph.local_adjacency uses.
                    local_src = np.searchsorted(doc_ids, local_edges[:, 0])
                    local_tgt = np.searchsorted(doc_ids, local_edges[:, 1])
                    local = coo_from_edges(
                        zip(local_src.tolist(), local_tgt.tolist()),
                        int(doc_ids.size))
                    entries[site_index] = {
                        "site": self._sites[site_index],
                        "adjacency": writer.write_csr(local),
                        "doc_ids": writer.write_array(doc_ids),
                        "preference": None,
                    }
            pairs = sorted(self._sitelink_counts)
            weights = [float(self._sitelink_counts[pair]) for pair in pairs]
            site_adjacency = coo_from_edges(pairs, len(self._sites),
                                            weights=weights)
            return {
                "n_documents": len(self._urls),
                "n_links": self._n_links,
                "sites": entries,
                "sitegraph": {
                    "adjacency": writer.write_csr(site_adjacency),
                    "site_sizes": [len(ids) for ids in self._docs_by_site],
                    "include_self_links": self._include_self_links,
                },
                "documents": _document_table(writer, self._urls,
                                             self._doc_site, self._dynamic),
            }

        try:
            return _write_store(self._path, fill)
        finally:
            self._spill.cleanup()

    def abort(self) -> None:
        """Discard spill state without writing a store."""
        self._finalized = True
        self._spill.cleanup()


__all__ = [
    "BLOCKS_FILE",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "SPILL_BUCKETS",
    "DiskGraph",
    "DiskGraphBuilder",
    "open_diskgraph",
    "write_diskgraph",
]
