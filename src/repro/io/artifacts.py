"""Ranked-artifact store: persisted ranking generations served from disk.

The serving layer's double-buffering swaps an in-RAM store pointer; this
module is the on-disk counterpart.  An :class:`ArtifactStore` directory
holds immutable *generations* — each one a complete composed ranking in
site-major order, exactly the layout
:func:`repro.web.pipeline.compose_ranking` produces — plus a top-level
``MANIFEST.json`` whose ``current`` field names the generation being
served.  Publishing a new generation writes its files, then flips that one
pointer atomically (:func:`repro.io.serialization.save_json` with
``atomic=True``, which also fsyncs the directory): a crash mid-publish
leaves the previous generation current.

A generation's arrays each live in their own flat file:

``scores.bin``
    float64 composed global scores (normalised), site-major.
``local_scores.bin``
    float64 *unweighted* local DocRank vectors in the same positions —
    the warm-start payload the next out-of-core rank resumes from.
``doc_ids.bin`` / ``doc_position.bin``
    int64 global document ids per position, and the inverse permutation
    (document id → site-major position) for O(1) point lookups.
``order.bin``
    int64 per-shard descending sort orders (shard-local indices),
    precomputed at write time so serving never sorts — and therefore
    never faults a whole score column into memory.
``urls.bin`` / ``url_offsets.bin``
    UTF-8 URL blob plus int64 offsets per position.

``repro serve --store dir/`` boots an mmap-backed score store
(:mod:`repro.serving.mmapstore`) straight over these files — no
re-ranking, no score column resident in RSS.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NotADistributionError, ValidationError
from .serialization import load_json, save_json

#: ``format`` fields of the two manifest kinds.
STORE_FORMAT = "repro-artifacts"
GENERATION_FORMAT = "repro-artifacts-generation"

#: Current (and only) schema version of both manifests.
FORMAT_VERSION = 1

STORE_MANIFEST = "MANIFEST.json"
GENERATION_MANIFEST = "manifest.json"

#: Array files every generation carries, with their dtypes.
GENERATION_ARRAYS: Dict[str, str] = {
    "scores": "<f8",
    "local_scores": "<f8",
    "doc_ids": "<i8",
    "doc_position": "<i8",
    "order": "<i8",
    "url_offsets": "<i8",
    "urls": "|u1",
}

#: Elements per chunk when the writer streams a whole-array operation
#: (normalisation divide) without materialising the array.
_CHUNK_ELEMENTS = 1 << 20


def _array_file(name: str) -> str:
    return f"{name}.bin"


class RankedGeneration:
    """Read-only view of one persisted generation.

    ``array(name)`` returns a cached read-only memmap (the serving form:
    one mapping shared by every reader of the generation); ``map_array``
    returns a fresh mapping the caller fully owns (the streaming form —
    dropping it unmaps the pages).  Manifest or file corruption raises
    :class:`~repro.exceptions.ValidationError` at open time.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        manifest_path = os.path.join(self._path, GENERATION_MANIFEST)
        try:
            manifest = load_json(manifest_path)
        except FileNotFoundError:
            raise ValidationError(
                f"{self._path!r} is not a ranked generation: "
                f"no {GENERATION_MANIFEST}") from None
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"generation manifest {manifest_path!r} is corrupt: {error}"
            ) from None
        if not isinstance(manifest, dict) \
                or manifest.get("format") != GENERATION_FORMAT:
            raise ValidationError(
                f"{manifest_path!r} is not a {GENERATION_FORMAT} manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise ValidationError(
                f"unsupported generation version "
                f"{manifest.get('version')!r}")
        for key in ("method", "n_documents", "shards", "siterank"):
            if key not in manifest:
                raise ValidationError(
                    f"generation manifest is missing {key!r}")
        n_documents = manifest["n_documents"]
        if not isinstance(n_documents, int) or n_documents <= 0:
            raise ValidationError(
                "generation manifest: n_documents must be positive")
        if not isinstance(manifest["shards"], list) or not manifest["shards"]:
            raise ValidationError(
                "generation manifest: shards must be a non-empty list")
        cursor = 0
        for shard in manifest["shards"]:
            if not isinstance(shard, dict):
                raise ValidationError(
                    "generation manifest: malformed shard entry")
            for key in ("site", "offset", "count"):
                if key not in shard:
                    raise ValidationError(
                        f"generation manifest: shard entry missing {key!r}")
            if shard["offset"] != cursor:
                raise ValidationError(
                    f"generation manifest: shard {shard['site']!r} offset "
                    f"{shard['offset']} does not continue site-major order "
                    f"(expected {cursor})")
            cursor += int(shard["count"])
        if cursor != n_documents:
            raise ValidationError(
                f"generation manifest: shards cover {cursor} documents, "
                f"manifest declares {n_documents}")
        sizes: Dict[str, int] = {}
        for name, dtype in GENERATION_ARRAYS.items():
            file_path = os.path.join(self._path, _array_file(name))
            try:
                sizes[name] = os.path.getsize(file_path)
            except OSError:
                raise ValidationError(
                    f"generation {self._path!r} is missing "
                    f"{_array_file(name)}") from None
            if name in ("scores", "local_scores", "doc_ids",
                        "doc_position", "order"):
                expected = n_documents * np.dtype(dtype).itemsize
                if sizes[name] != expected:
                    raise ValidationError(
                        f"generation array {_array_file(name)} is "
                        f"{sizes[name]} bytes, expected {expected}")
        if sizes["url_offsets"] != (n_documents + 1) * 8:
            raise ValidationError(
                "generation array url_offsets.bin has the wrong size")
        self._manifest = manifest
        self._cached: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """The generation directory."""
        return self._path

    @property
    def name(self) -> str:
        """Directory basename (the name the store manifest points at)."""
        return os.path.basename(self._path.rstrip(os.sep))

    @property
    def method(self) -> str:
        """Ranking method that produced the generation."""
        return str(self._manifest["method"])

    @property
    def n_documents(self) -> int:
        """Documents in the generation."""
        return int(self._manifest["n_documents"])

    @property
    def iterations(self) -> int:
        """Total power iterations of the producing rank."""
        return int(self._manifest.get("iterations", 0))

    def shards(self) -> List[dict]:
        """Per-site shard table: site, offset, count, site_score, iterations."""
        return list(self._manifest["shards"])

    def siterank(self) -> dict:
        """The SiteRank block of the manifest (sites, scores, iterations)."""
        return dict(self._manifest["siterank"])

    # ------------------------------------------------------------------ #
    def map_array(self, name: str) -> np.ndarray:
        """A fresh caller-owned mapping of one generation array."""
        if name not in GENERATION_ARRAYS:
            raise ValidationError(f"unknown generation array {name!r}")
        dtype = np.dtype(GENERATION_ARRAYS[name])
        file_path = os.path.join(self._path, _array_file(name))
        nbytes = os.path.getsize(file_path)
        if nbytes == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(file_path, dtype=dtype, mode="r")

    def array(self, name: str) -> np.ndarray:
        """The cached shared mapping of one generation array."""
        cached = self._cached.get(name)
        if cached is None:
            cached = self.map_array(name)
            self._cached[name] = cached
        return cached

    def url_at(self, position: int) -> str:
        """URL of one site-major position (via the shared mapping)."""
        offsets = self.array("url_offsets")
        blob = self.array("urls")
        start, end = int(offsets[position]), int(offsets[position + 1])
        return bytes(blob[start:end]).decode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RankedGeneration(path={self._path!r}, "
                f"n_documents={self.n_documents})")


class GenerationWriter:
    """Streamed site-major writer of one generation.

    ``append_site`` writes each site's block as it is solved — doc ids,
    URLs, the raw local vector, and the SiteRank-weighted (but not yet
    normalised) scores — so the producer never holds more than one block.
    ``finalize`` then performs the whole-array steps: the single
    normalisation sum (bitwise the in-memory
    :func:`~repro._validation.normalize_distribution`), the inverse
    permutation, the per-shard sort orders, and the manifest write.
    """

    def __init__(self, path: str | os.PathLike, *, method: str,
                 n_documents: int) -> None:
        if n_documents <= 0:
            raise ValidationError("n_documents must be positive")
        self._path = os.fspath(path)
        os.makedirs(self._path, exist_ok=True)
        self._method = method
        self._n_documents = int(n_documents)
        self._handles = {
            name: open(os.path.join(self._path, _array_file(name)), "wb")
            for name in ("scores", "local_scores", "doc_ids",
                         "urls", "url_offsets")}
        self._handles["url_offsets"].write(
            np.zeros(1, dtype=np.int64).tobytes())
        self._url_cursor = 0
        self._cursor = 0
        self._shards: List[dict] = []
        self._seen_sites: set = set()
        self._finalized = False

    def append_site(self, site: str, doc_ids: Sequence[int],
                    urls: Sequence[str], local_scores: np.ndarray,
                    site_score: float, iterations: int) -> None:
        """Write one site's block (in site order — site-major layout)."""
        if self._finalized:
            raise ValidationError("generation writer is already finalized")
        if site in self._seen_sites:
            raise ValidationError(f"site {site!r} appended twice")
        local_scores = np.asarray(local_scores, dtype=float).ravel()
        ids = np.asarray(doc_ids, dtype=np.int64).ravel()
        if not (ids.size == len(urls) == local_scores.size):
            raise ValidationError(
                f"site {site!r}: doc_ids, urls and scores must align")
        if self._cursor + ids.size > self._n_documents:
            raise ValidationError(
                f"site {site!r} overflows the declared "
                f"{self._n_documents} documents")
        if ids.size and (int(ids.min()) < 0
                         or int(ids.max()) >= self._n_documents):
            raise ValidationError(
                f"site {site!r} has document ids outside "
                f"[0, {self._n_documents})")
        # The same composition op compose_ranking performs per block.
        weighted = float(site_score) * local_scores
        weighted.tofile(self._handles["scores"])
        local_scores.tofile(self._handles["local_scores"])
        ids.tofile(self._handles["doc_ids"])
        offsets = np.empty(len(urls), dtype=np.int64)
        for index, url in enumerate(urls):
            blob = url.encode("utf-8")
            self._handles["urls"].write(blob)
            self._url_cursor += len(blob)
            offsets[index] = self._url_cursor
        offsets.tofile(self._handles["url_offsets"])
        self._seen_sites.add(site)
        self._shards.append({"site": site, "offset": self._cursor,
                             "count": int(ids.size),
                             "site_score": float(site_score),
                             "iterations": int(iterations)})
        self._cursor += int(ids.size)

    def abort(self) -> None:
        """Close the partial files (the generation is never published)."""
        self._finalized = True
        for handle in self._handles.values():
            handle.close()

    def finalize(self, *, siterank_sites: Sequence[str],
                 siterank_scores: Sequence[float],
                 siterank_iterations: int, siterank_damping: float,
                 iterations: int = 0) -> RankedGeneration:
        """Normalise, index, and write the generation manifest."""
        if self._finalized:
            raise ValidationError("generation writer is already finalized")
        if self._cursor != self._n_documents:
            raise ValidationError(
                f"generation covers {self._cursor} documents, "
                f"declared {self._n_documents}")
        self._finalized = True
        for handle in self._handles.values():
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()

        scores_path = os.path.join(self._path, _array_file("scores"))
        scores = np.memmap(scores_path, dtype=np.float64, mode="r+")
        # Bitwise the in-memory normalize_distribution(concatenated):
        # one pairwise sum over the whole contiguous array, then an
        # elementwise divide by that scalar (chunked — same per-element op).
        if float(scores.min()) < 0.0:
            raise NotADistributionError("layered DocRank has negative entries")
        total = float(np.sum(scores))
        if total <= 0.0:
            raise NotADistributionError(
                "layered DocRank sums to zero; cannot normalise")
        for start in range(0, scores.size, _CHUNK_ELEMENTS):
            chunk = scores[start:start + _CHUNK_ELEMENTS]
            scores[start:start + _CHUNK_ELEMENTS] = chunk / total
        scores.flush()

        doc_ids = np.memmap(os.path.join(self._path, _array_file("doc_ids")),
                            dtype=np.int64, mode="r")
        position = np.memmap(
            os.path.join(self._path, _array_file("doc_position")),
            dtype=np.int64, mode="w+", shape=(self._n_documents,))
        order = np.memmap(os.path.join(self._path, _array_file("order")),
                          dtype=np.int64, mode="w+",
                          shape=(self._n_documents,))
        covered = 0
        for shard in self._shards:
            start, count = shard["offset"], shard["count"]
            ids = np.asarray(doc_ids[start:start + count])
            position[ids] = np.arange(start, start + count, dtype=np.int64)
            covered += count
            # The exact _Shard order: descending score, ties by doc id.
            block = np.asarray(scores[start:start + count])
            order[start:start + count] = np.lexsort((ids, -block))
        if covered != self._n_documents:
            raise ValidationError("shards do not cover every document")
        position.flush()
        order.flush()
        del scores, doc_ids, position, order

        manifest = {
            "format": GENERATION_FORMAT,
            "version": FORMAT_VERSION,
            "method": self._method,
            "n_documents": self._n_documents,
            "iterations": int(iterations),
            "shards": self._shards,
            "siterank": {
                "sites": list(siterank_sites),
                "scores": [float(score) for score in siterank_scores],
                "iterations": int(siterank_iterations),
                "damping": float(siterank_damping),
            },
        }
        save_json(manifest, os.path.join(self._path, GENERATION_MANIFEST),
                  atomic=True)
        return RankedGeneration(self._path)


class ArtifactStore:
    """A directory of ranking generations behind one ``current`` pointer."""

    def __init__(self, path: str | os.PathLike, *, create: bool = False
                 ) -> None:
        self._path = os.fspath(path)
        manifest_path = os.path.join(self._path, STORE_MANIFEST)
        if create and not os.path.exists(manifest_path):
            os.makedirs(self._path, exist_ok=True)
            save_json({"format": STORE_FORMAT, "version": FORMAT_VERSION,
                       "current": None, "generations": []},
                      manifest_path, atomic=True)
        self._manifest = self._load()

    def _load(self) -> dict:
        manifest_path = os.path.join(self._path, STORE_MANIFEST)
        try:
            manifest = load_json(manifest_path)
        except FileNotFoundError:
            raise ValidationError(
                f"{self._path!r} is not an artifact store: "
                f"no {STORE_MANIFEST}") from None
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"artifact-store manifest {manifest_path!r} is corrupt: "
                f"{error}") from None
        if not isinstance(manifest, dict) \
                or manifest.get("format") != STORE_FORMAT:
            raise ValidationError(
                f"{manifest_path!r} is not a {STORE_FORMAT} manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise ValidationError(
                f"unsupported artifact-store version "
                f"{manifest.get('version')!r}")
        if not isinstance(manifest.get("generations"), list):
            raise ValidationError(
                "artifact-store manifest: generations must be a list")
        return manifest

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """The store directory."""
        return self._path

    @property
    def current(self) -> Optional[str]:
        """Name of the generation being served (``None`` before a publish)."""
        current = self._manifest.get("current")
        return None if current is None else str(current)

    def generations(self) -> List[str]:
        """All published generation names, oldest first."""
        return [str(name) for name in self._manifest["generations"]]

    def reload(self) -> None:
        """Re-read the store manifest (pick up another process's publish)."""
        self._manifest = self._load()

    # ------------------------------------------------------------------ #
    def generation(self, name: Optional[str] = None) -> RankedGeneration:
        """Open one generation (the current one by default)."""
        if name is None:
            name = self.current
            if name is None:
                raise ValidationError(
                    f"artifact store {self._path!r} has no published "
                    f"generation")
        return RankedGeneration(os.path.join(self._path, name))

    def next_generation_name(self) -> str:
        """The name the next :meth:`create_generation` will use."""
        return f"gen-{len(self.generations()) + 1:06d}"

    def create_generation(self, *, method: str, n_documents: int
                          ) -> GenerationWriter:
        """Start writing a new (unpublished) generation."""
        name = self.next_generation_name()
        return GenerationWriter(os.path.join(self._path, name),
                                method=method, n_documents=n_documents)

    def publish(self, name: str) -> None:
        """Flip the ``current`` pointer to *name* — the generation swap.

        Validates the generation first, then rewrites ``MANIFEST.json``
        atomically (write, rename, directory fsync): readers see either
        the old pointer or the new one, never an intermediate state.
        """
        RankedGeneration(os.path.join(self._path, name))  # must be complete
        generations = self.generations()
        if name not in generations:
            generations.append(name)
        self._manifest = {"format": STORE_FORMAT, "version": FORMAT_VERSION,
                          "current": name, "generations": generations}
        save_json(self._manifest, os.path.join(self._path, STORE_MANIFEST),
                  atomic=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArtifactStore(path={self._path!r}, "
                f"current={self.current!r})")


def open_artifact_store(path: str | os.PathLike) -> ArtifactStore:
    """Open (and validate) an existing artifact store."""
    return ArtifactStore(path)


__all__ = [
    "FORMAT_VERSION",
    "GENERATION_ARRAYS",
    "GENERATION_FORMAT",
    "GENERATION_MANIFEST",
    "STORE_FORMAT",
    "STORE_MANIFEST",
    "ArtifactStore",
    "GenerationWriter",
    "RankedGeneration",
    "open_artifact_store",
]
