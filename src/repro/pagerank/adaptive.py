"""Adaptive PageRank (Kamvar, Haveliwala & Golub 2003).

Another centralized acceleration from the paper's related work (Section 1.2):
pages whose PageRank value has already converged are "frozen" and no longer
updated, saving work in the tail of the power iteration.  Included so the
convergence/scaling benchmarks can place the layered method in context with
the centralized speed-up family the paper argues against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .._validation import ensure_probability
from ..exceptions import ConvergenceError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.stochastic import row_normalize, uniform_distribution
from ..markov.irreducibility import DEFAULT_DAMPING


@dataclass
class AdaptivePageRankResult:
    """Result of an adaptive PageRank run."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    #: Fraction of nodes frozen at each iteration (diagnostic for the
    #: "most pages converge early" observation the method exploits).
    frozen_fractions: List[float] = field(default_factory=list)

    def top_k(self, k: int) -> List[int]:
        """The ``k`` highest-scoring node indices, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [int(i) for i in order[:k]]


def adaptive_pagerank(adjacency, damping: float = DEFAULT_DAMPING, *,
                      freeze_tol: float = 1e-8,
                      tol: float = DEFAULT_TOL,
                      max_iter: int = DEFAULT_MAX_ITER,
                      preference: Optional[np.ndarray] = None,
                      ) -> AdaptivePageRankResult:
    """PageRank where individually converged components stop being updated.

    Parameters
    ----------
    freeze_tol:
        A node is frozen once its per-iteration change drops below this
        value.  Frozen nodes keep their current score; the rest of the vector
        continues to iterate.
    """
    damping = ensure_probability(damping, name="damping")
    n = adjacency.shape[0]
    link = row_normalize(adjacency)
    if sp.issparse(link):
        link = link.tocsr()
        sums = np.asarray(link.sum(axis=1)).ravel()
    else:
        sums = link.sum(axis=1)
    dangling_mask = (sums == 0.0).astype(float)
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = np.asarray(preference, dtype=float)
        v = v / v.sum()

    x = uniform_distribution(n)
    frozen = np.zeros(n, dtype=bool)
    residuals: List[float] = []
    frozen_fractions: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if sp.issparse(link):
            linked = np.asarray(x @ link).ravel()
        else:
            linked = x @ link
        dangling_mass = float(x @ dangling_mask)
        updated = damping * (linked + dangling_mass * v) + (1.0 - damping) * v
        # Frozen entries keep their previous value.
        new_x = np.where(frozen, x, updated)
        total = new_x.sum()
        if total > 0:
            new_x = new_x / total
        change = np.abs(new_x - x)
        residual = float(change.sum())
        residuals.append(residual)
        frozen = frozen | (change < freeze_tol)
        frozen_fractions.append(float(frozen.mean()))
        x = new_x
        if residual < tol:
            converged = True
            break

    if not converged:
        raise ConvergenceError(
            f"adaptive PageRank did not converge within {max_iter} iterations",
            iterations=iterations, residual=residuals[-1])

    return AdaptivePageRankResult(scores=x, iterations=iterations,
                                  converged=converged, residuals=residuals,
                                  frozen_fractions=frozen_fractions)
