"""The classical (flat) PageRank algorithm.

This is the baseline the paper compares the Layered Markov Model against,
implemented exactly as described in Section 2.1: derive the row-stochastic
transition matrix ``M`` from the link graph, apply the maximal-irreducibility
adjustment ``M̂ = f M + (1 - f) e v'`` and run the power method.

Two code paths are provided:

* an **explicit** path that materialises ``M̂`` (only viable for small
  graphs; used by the tests and by the paper's 12-state worked example);
* a **matrix-free** path that keeps only the sparse link matrix and applies
  teleportation and dangling corrections analytically each iteration — this
  scales to the campus-web benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._validation import ensure_distribution, ensure_probability
from ..exceptions import ValidationError
from ..linalg.power_iteration import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    stationary_distribution,
    stationary_distribution_dangling_aware,
)
from ..linalg.stochastic import row_normalize, transition_matrix
from ..markov.irreducibility import DEFAULT_DAMPING, maximal_irreducibility


@dataclass
class PageRankResult:
    """Result of a PageRank computation.

    Attributes
    ----------
    scores:
        The PageRank vector — a probability distribution over nodes.
    iterations:
        Power iterations used.
    converged:
        Whether the solver met its tolerance.
    residuals:
        Per-iteration L1 residuals (useful for convergence plots).
    damping:
        The damping factor used.
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    damping: float = DEFAULT_DAMPING

    def ranking(self) -> np.ndarray:
        """Node indices sorted by descending score (ties broken by index)."""
        return np.lexsort((np.arange(self.scores.size), -self.scores))

    def top_k(self, k: int) -> List[int]:
        """The ``k`` highest-scoring node indices, best first."""
        return [int(i) for i in self.ranking()[:k]]

    def score_of(self, node: int) -> float:
        """Score of a single node index."""
        return float(self.scores[node])


def pagerank(adjacency, damping: float = DEFAULT_DAMPING,
             preference: Optional[np.ndarray] = None, *,
             tol: float = DEFAULT_TOL, max_iter: int = DEFAULT_MAX_ITER,
             method: str = "auto",
             dangling: str = "uniform",
             start: Optional[np.ndarray] = None,
             record_residuals: bool = True) -> PageRankResult:
    """Compute PageRank of a directed (weighted) link graph.

    Parameters
    ----------
    adjacency:
        Square non-negative adjacency/weight matrix (dense or sparse);
        entry ``(i, j)`` is the number of links from page ``i`` to page ``j``.
    damping:
        The damping factor ``f`` (probability of following a link).
    preference:
        Optional personalisation distribution ``v``; uniform by default.
    tol, max_iter:
        Power-method stopping parameters.
    method:
        ``"dense"`` materialises the Google matrix; ``"sparse"`` uses the
        matrix-free iteration; ``"auto"`` picks dense below the calibrated
        cut-off (:func:`repro.engine.calibrate.dense_cutoff`, 2000 nodes
        unless a measured profile is active).
    dangling:
        Dangling-node policy for the dense path (the sparse path always
        redistributes dangling mass to the preference vector, which matches
        the ``"uniform"`` policy when no preference is given).
    start:
        Optional starting distribution for the power iteration (uniform by
        default).  Seeding with a previously converged vector — the
        warm-start path of :mod:`repro.engine` — cuts the iteration count
        after small graph changes without affecting the fixed point.
    record_residuals:
        Whether the result carries the per-iteration residual history
        (default).  The engine's hot paths pass ``False``: they discard
        the history anyway, so recording it is a per-iteration list
        append for nothing.

    Returns
    -------
    PageRankResult
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValidationError(
            f"adjacency must be square, got {adjacency.shape!r}")
    damping = ensure_probability(damping, name="damping")
    n = adjacency.shape[0]
    if preference is not None:
        preference = ensure_distribution(preference, name="preference")
        if preference.size != n:
            raise ValidationError(
                f"preference has length {preference.size}, expected {n}")

    if method == "auto":
        # Lazy import: this module sits below repro.engine in the layering
        # and only needs the calibrated cut-off at call time.
        from ..engine.calibrate import dense_cutoff

        method = "dense" if n <= dense_cutoff() else "sparse"
    if method not in ("dense", "sparse"):
        raise ValidationError(f"unknown method {method!r}")

    if method == "dense":
        stochastic = transition_matrix(adjacency, dangling=dangling,
                                       preference=preference
                                       if dangling == "preference" else None)
        google = maximal_irreducibility(stochastic, damping, preference)
        result = stationary_distribution(google, tol=tol, max_iter=max_iter,
                                         start=start,
                                         record_residuals=record_residuals)
    else:
        link = row_normalize(adjacency)
        result = stationary_distribution_dangling_aware(
            link, damping, preference, tol=tol, max_iter=max_iter,
            start=start, record_residuals=record_residuals)

    return PageRankResult(scores=result.vector, iterations=result.iterations,
                          converged=result.converged,
                          residuals=result.residuals, damping=damping)


def pagerank_from_stochastic(transition, damping: float = DEFAULT_DAMPING,
                             preference: Optional[np.ndarray] = None, *,
                             tol: float = DEFAULT_TOL,
                             max_iter: int = DEFAULT_MAX_ITER) -> PageRankResult:
    """PageRank of a matrix that is *already* row-stochastic.

    This is the operation the paper applies to the phase matrix ``Y`` and the
    per-phase sub-state matrices ``U^I`` in its worked example: those matrices
    are given directly as Markovian matrices, not as raw adjacency counts, so
    no normalisation step must be applied before the damping adjustment.
    """
    damping = ensure_probability(damping, name="damping")
    google = maximal_irreducibility(transition, damping, preference)
    result = stationary_distribution(google, tol=tol, max_iter=max_iter)
    return PageRankResult(scores=result.vector, iterations=result.iterations,
                          converged=result.converged,
                          residuals=result.residuals, damping=damping)
