"""Accelerated PageRank via Aitken Δ² and quadratic extrapolation.

The paper's related-work discussion (Section 1.2, citing Kamvar et al.,
"Extrapolation methods for accelerating PageRank computations", WWW 2003)
groups these techniques among the centralized speed-up attempts whose
"potential of keeping up with the Web growth" is limited — which is the
motivation for the layered, distributed approach.  We implement the simplest
two extrapolation schemes so the convergence benchmark can show how they
compare against the layered decomposition on the same graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._validation import ensure_probability
from ..exceptions import ConvergenceError, ValidationError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.stochastic import row_normalize, uniform_distribution
from ..markov.irreducibility import DEFAULT_DAMPING


@dataclass
class AcceleratedPageRankResult:
    """Result of an accelerated PageRank run."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    extrapolations_applied: int = 0

    def top_k(self, k: int) -> List[int]:
        """The ``k`` highest-scoring node indices, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [int(i) for i in order[:k]]


def _pagerank_step(x: np.ndarray, link, dangling_mask: np.ndarray,
                   damping: float, preference: np.ndarray) -> np.ndarray:
    import scipy.sparse as sp

    if sp.issparse(link):
        linked = np.asarray(x @ link).ravel()
    else:
        linked = x @ link
    dangling_mass = float(x @ dangling_mask)
    new_x = damping * (linked + dangling_mass * preference) \
        + (1.0 - damping) * preference
    total = new_x.sum()
    return new_x / total if total > 0 else new_x


def _aitken_extrapolate(history: List[np.ndarray]) -> Optional[np.ndarray]:
    """Componentwise Aitken Δ² extrapolation from the last three iterates."""
    if len(history) < 3:
        return None
    x0, x1, x2 = history[-3], history[-2], history[-1]
    denominator = x2 - 2.0 * x1 + x0
    safe = np.where(np.abs(denominator) > 1e-14, denominator, np.inf)
    extrapolated = x2 - (x2 - x1) ** 2 / safe
    extrapolated = np.where(np.isfinite(extrapolated), extrapolated, x2)
    extrapolated = np.clip(extrapolated, 0.0, None)
    total = extrapolated.sum()
    if total <= 0:
        return None
    return extrapolated / total


def _quadratic_extrapolate(history: List[np.ndarray]) -> Optional[np.ndarray]:
    """Quadratic extrapolation (Kamvar et al. 2003, simplified).

    Fits the last four iterates as an approximate linear combination of the
    first three eigenvectors and removes the estimated second/third
    components.
    """
    if len(history) < 4:
        return None
    x_k3, x_k2, x_k1, x_k = (history[-4], history[-3], history[-2], history[-1])
    y2 = x_k2 - x_k3
    y1 = x_k1 - x_k3
    y0 = x_k - x_k3
    matrix = np.vstack([y2, y1]).T
    try:
        gammas, *_ = np.linalg.lstsq(matrix, y0, rcond=None)
    except np.linalg.LinAlgError:
        return None
    gamma2, gamma1 = float(gammas[0]), float(gammas[1])
    gamma0 = 1.0  # coefficient of y0 in the characteristic polynomial
    beta0 = gamma1 + gamma2
    beta1 = gamma2
    denominator = gamma0 + beta0 + beta1
    if abs(denominator) < 1e-12:
        return None
    extrapolated = (gamma0 * x_k + beta0 * x_k1 + beta1 * x_k2) / denominator
    extrapolated = np.clip(extrapolated, 0.0, None)
    total = extrapolated.sum()
    if total <= 0:
        return None
    return extrapolated / total


def accelerated_pagerank(adjacency, damping: float = DEFAULT_DAMPING, *,
                         scheme: str = "aitken",
                         extrapolate_every: int = 10,
                         tol: float = DEFAULT_TOL,
                         max_iter: int = DEFAULT_MAX_ITER,
                         preference: Optional[np.ndarray] = None,
                         ) -> AcceleratedPageRankResult:
    """PageRank with periodic extrapolation steps.

    Parameters
    ----------
    adjacency:
        Link graph adjacency matrix.
    scheme:
        ``"aitken"`` (componentwise Δ²) or ``"quadratic"``.
    extrapolate_every:
        An extrapolation step replaces the iterate every this-many power
        iterations (the original paper recommends infrequent application).
    """
    if scheme not in ("aitken", "quadratic"):
        raise ValidationError(f"unknown extrapolation scheme {scheme!r}")
    if extrapolate_every < 2:
        raise ValidationError("extrapolate_every must be at least 2")
    damping = ensure_probability(damping, name="damping")

    n = adjacency.shape[0]
    link = row_normalize(adjacency)
    import scipy.sparse as sp

    if sp.issparse(link):
        sums = np.asarray(link.sum(axis=1)).ravel()
    else:
        sums = link.sum(axis=1)
    dangling_mask = (sums == 0.0).astype(float)
    if preference is None:
        v = uniform_distribution(n)
    else:
        v = np.asarray(preference, dtype=float)
        v = v / v.sum()

    x = uniform_distribution(n)
    history: List[np.ndarray] = [x]
    residuals: List[float] = []
    extrapolations = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_x = _pagerank_step(x, link, dangling_mask, damping, v)
        residual = float(np.abs(new_x - x).sum())
        residuals.append(residual)
        x = new_x
        history.append(x)
        if len(history) > 5:
            history.pop(0)
        if residual < tol:
            converged = True
            break
        if iterations % extrapolate_every == 0:
            extrapolated = (_aitken_extrapolate(history) if scheme == "aitken"
                            else _quadratic_extrapolate(history))
            if extrapolated is not None:
                x = extrapolated
                history.append(x)
                if len(history) > 5:
                    history.pop(0)
                extrapolations += 1

    if not converged:
        raise ConvergenceError(
            f"accelerated PageRank ({scheme}) did not converge within "
            f"{max_iter} iterations", iterations=iterations,
            residual=residuals[-1])

    return AcceleratedPageRankResult(scores=x, iterations=iterations,
                                     converged=converged, residuals=residuals,
                                     extrapolations_applied=extrapolations)
