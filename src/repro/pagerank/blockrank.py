"""BlockRank (Kamvar, Haveliwala, Manning & Golub 2003).

BlockRank is the closest prior work to the paper's layered method and the
paper explicitly contrasts the two (end of Section 3.2): in BlockRank the
weight of the edge between two blocks is the *sum of local PageRank values of
the source pages*, so the block-level computation depends on the local
computations and must be serialised; in the LMM only SiteLink counts are
used, so SiteRank and the local DocRanks can be computed in parallel.

We implement BlockRank faithfully so that the ablation benchmark (E12) can
compare both the ranking quality and the dependency structure (serial vs
parallel) of the two methods:

1. compute the local PageRank vector of every block;
2. build the block-level transition matrix with edge weights
   ``B[I, J] = Σ_{i in I} localPR_I(i) · Σ_{j in J} M[i, j]``;
3. compute the BlockRank vector over blocks;
4. form the approximate global vector ``x0(i) = localPR(i) · BlockRank(block(i))``;
5. (optionally) use ``x0`` as the starting vector of a standard global
   PageRank iteration until convergence.

Step 4's vector is exactly the same *functional form* as the LMM's layered
ranking — the difference lies in how the block-level matrix is weighted,
which is what the ablation isolates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .._validation import is_sparse, normalize_distribution
from ..exceptions import ValidationError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.sparse_utils import submatrix
from ..linalg.stochastic import row_normalize
from ..markov.irreducibility import DEFAULT_DAMPING
from .pagerank import PageRankResult, pagerank


@dataclass
class BlockRankResult:
    """All intermediate and final artefacts of a BlockRank run."""

    #: Local PageRank vector per block (list indexed by block id).
    local_pageranks: List[np.ndarray]
    #: The block-level transition weights (dense, n_blocks x n_blocks).
    block_matrix: np.ndarray
    #: The BlockRank vector over blocks.
    block_rank: np.ndarray
    #: The approximate global vector (step 4).
    approximate_global: np.ndarray
    #: The refined global PageRank (step 5); equals ``approximate_global``
    #: when refinement was disabled.
    global_scores: np.ndarray
    #: Iterations used in the final global refinement (0 if disabled).
    refinement_iterations: int

    def top_k(self, k: int) -> List[int]:
        """The ``k`` highest-scoring node indices of the refined ranking."""
        order = np.lexsort((np.arange(self.global_scores.size),
                            -self.global_scores))
        return [int(i) for i in order[:k]]


def _block_members(blocks: np.ndarray, n_blocks: int) -> List[np.ndarray]:
    return [np.where(blocks == b)[0] for b in range(n_blocks)]


def blockrank(adjacency, blocks: Sequence[int], *,
              damping: float = DEFAULT_DAMPING,
              local_damping: Optional[float] = None,
              refine: bool = True,
              tol: float = DEFAULT_TOL,
              max_iter: int = DEFAULT_MAX_ITER) -> BlockRankResult:
    """Run the BlockRank algorithm.

    Parameters
    ----------
    adjacency:
        Global document-level adjacency matrix.
    blocks:
        Length-``n`` assignment of every node to a block id in
        ``[0, n_blocks)``; in the web setting the block of a page is its
        web site.
    damping:
        Damping factor for the block-level and global computations.
    local_damping:
        Damping factor for the per-block local PageRanks (defaults to
        ``damping``).
    refine:
        Whether to run step 5 (global power iteration started from the
        approximate vector).  Disabling it yields the pure "aggregate of
        local ranks" approximation which is the fair comparison point
        against the LMM layered ranking.
    """
    blocks = np.asarray(list(blocks), dtype=np.int64)
    n = adjacency.shape[0]
    if blocks.size != n:
        raise ValidationError(
            f"blocks has length {blocks.size}, expected {n}")
    if blocks.size and blocks.min() < 0:
        raise ValidationError("block ids must be non-negative")
    n_blocks = int(blocks.max()) + 1 if blocks.size else 0
    members = _block_members(blocks, n_blocks)
    for b, idx in enumerate(members):
        if idx.size == 0:
            raise ValidationError(f"block {b} has no members")
    if local_damping is None:
        local_damping = damping

    # Step 1: local PageRank of every block.
    local_pageranks: List[np.ndarray] = []
    for idx in members:
        local_adj = submatrix(adjacency, idx)
        local_result = pagerank(local_adj, damping=local_damping, tol=tol,
                                max_iter=max_iter, method="dense"
                                if idx.size <= 2000 else "sparse")
        local_pageranks.append(local_result.scores)

    # Step 2: block-level matrix weighted by local PageRank of source pages.
    row_stochastic = row_normalize(adjacency)
    dense_needed = not is_sparse(row_stochastic)
    csr = (row_stochastic if dense_needed
           else row_stochastic.tocsr())
    block_matrix = np.zeros((n_blocks, n_blocks), dtype=float)
    local_score_of_node = np.zeros(n, dtype=float)
    for b, idx in enumerate(members):
        local_score_of_node[idx] = local_pageranks[b]
    if dense_needed:
        rows, cols = np.nonzero(np.asarray(csr))
        values = np.asarray(csr)[rows, cols]
    else:
        coo = csr.tocoo()
        rows, cols, values = coo.row, coo.col, coo.data
    for i, j, value in zip(rows, cols, values):
        block_matrix[blocks[i], blocks[j]] += local_score_of_node[i] * value
    # Rows of the block matrix may not sum to one (dangling blocks); the
    # block-level PageRank handles that via its own dangling policy.

    # Step 3: BlockRank over blocks.
    block_result: PageRankResult = pagerank(block_matrix, damping=damping,
                                            tol=tol, max_iter=max_iter,
                                            method="dense")
    block_rank = block_result.scores

    # Step 4: approximate global vector.
    approximate = np.zeros(n, dtype=float)
    for b, idx in enumerate(members):
        approximate[idx] = block_rank[b] * local_pageranks[b]
    approximate = normalize_distribution(approximate,
                                         name="approximate global vector")

    # Step 5: optional refinement with the standard global iteration.
    refinement_iterations = 0
    if refine:
        from ..linalg.power_iteration import (
            stationary_distribution_dangling_aware,
        )
        link = row_normalize(adjacency)
        refined = stationary_distribution_dangling_aware(
            link, damping, None, start=approximate, tol=tol,
            max_iter=max_iter)
        global_scores = refined.vector
        refinement_iterations = refined.iterations
    else:
        global_scores = approximate

    return BlockRankResult(
        local_pageranks=local_pageranks,
        block_matrix=block_matrix,
        block_rank=block_rank,
        approximate_global=approximate,
        global_scores=global_scores,
        refinement_iterations=refinement_iterations,
    )
