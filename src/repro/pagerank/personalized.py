"""Personalised PageRank.

The paper emphasises (Sections 1.3, 2.1 and 3.2) that personalisation is
obtained "by replacing e' with a personalized distribution vector v_p'" in
the maximal-irreducibility adjustment.  This module provides the preference
vector constructions used by the personalisation experiments (E10) and a thin
wrapper around :func:`repro.pagerank.pagerank.pagerank`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .._validation import normalize_distribution
from ..exceptions import ValidationError
from ..markov.irreducibility import DEFAULT_DAMPING
from .pagerank import PageRankResult, pagerank


def preference_from_nodes(n: int, favoured: Iterable[int], *,
                          weight: float = 1.0,
                          background: float = 0.0) -> np.ndarray:
    """Build a preference vector concentrated on a set of favoured nodes.

    Parameters
    ----------
    n:
        Total number of nodes.
    favoured:
        Indices that receive extra preference mass.
    weight:
        Relative weight given to each favoured node.
    background:
        Relative weight given to every node (0 means the surfer only ever
        teleports to favoured nodes).
    """
    favoured = list(favoured)
    if not favoured and background <= 0.0:
        raise ValidationError(
            "preference needs at least one favoured node or background > 0")
    weight = _ensure_finite_weight(weight, name="weight")
    vector = np.full(n, _ensure_finite_weight(background, name="background"))
    for node in favoured:
        if not 0 <= node < n:
            raise ValidationError(f"favoured node {node} out of range [0, {n})")
        vector[node] += weight
    return normalize_distribution(vector, name="preference")


def _ensure_finite_weight(value: float, *, name: str) -> float:
    """Reject NaN / infinite / negative weights with a :class:`ValidationError`."""
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def preference_from_weights(n: int, weights: Mapping[int, float], *,
                            background: float = 0.0) -> np.ndarray:
    """Build a preference vector from an explicit ``{node: weight}`` mapping."""
    background = _ensure_finite_weight(background, name="background")
    vector = np.full(n, background)
    for node, weight in weights.items():
        if not 0 <= int(node) < n:
            raise ValidationError(f"node {node} out of range [0, {n})")
        vector[int(node)] += _ensure_finite_weight(
            weight, name=f"preference weight for node {node}")
    return normalize_distribution(vector, name="preference")


def blend_preferences(vectors: Sequence[np.ndarray],
                      coefficients: Optional[Sequence[float]] = None) -> np.ndarray:
    """Convex combination of several preference vectors."""
    if not len(vectors):
        raise ValidationError("need at least one preference vector")
    if coefficients is None:
        coefficients = [1.0] * len(vectors)
    if len(coefficients) != len(vectors):
        raise ValidationError("coefficients and vectors must align")
    stacked = np.vstack([np.asarray(v, dtype=float) for v in vectors])
    if not np.all(np.isfinite(stacked)):
        raise ValidationError("preference vectors must be finite")
    if np.any(stacked < 0):
        raise ValidationError("preference vectors must be non-negative")
    coeffs = np.asarray(coefficients, dtype=float)
    if not np.all(np.isfinite(coeffs)):
        raise ValidationError("coefficients must be finite")
    if np.any(coeffs < 0):
        raise ValidationError("coefficients must be non-negative")
    blended = coeffs @ stacked
    return normalize_distribution(blended, name="blended preference")


def preference_matrix(n: int,
                      columns: Sequence[Optional[Mapping[int, float]]], *,
                      background: float = 0.0) -> np.ndarray:
    """Build an ``(n, K)`` preference matrix, one column per segment.

    Each entry of *columns* is a ``{node: weight}`` mapping handed to
    :func:`preference_from_weights` (sharing its NaN / negative-weight
    validation and per-column renormalisation), or ``None`` / an empty
    mapping for a uniform column.  This is the shape the fused
    multi-vector block solver consumes directly.
    """
    if not len(columns):
        raise ValidationError("need at least one preference column")
    if n < 1:
        raise ValidationError("n must be at least 1")
    matrix = np.empty((n, len(columns)), dtype=float)
    for index, weights in enumerate(columns):
        if not weights:
            matrix[:, index] = 1.0 / n
            continue
        matrix[:, index] = preference_from_weights(
            n, weights, background=background)
    return matrix


def personalized_pagerank(adjacency, preference: np.ndarray,
                          damping: float = DEFAULT_DAMPING, *,
                          tol: float = 1e-10, max_iter: int = 1000,
                          method: str = "auto") -> PageRankResult:
    """PageRank with a non-uniform teleportation distribution."""
    return pagerank(adjacency, damping=damping, preference=preference,
                    tol=tol, max_iter=max_iter, method=method)
