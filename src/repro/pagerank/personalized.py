"""Personalised PageRank.

The paper emphasises (Sections 1.3, 2.1 and 3.2) that personalisation is
obtained "by replacing e' with a personalized distribution vector v_p'" in
the maximal-irreducibility adjustment.  This module provides the preference
vector constructions used by the personalisation experiments (E10) and a thin
wrapper around :func:`repro.pagerank.pagerank.pagerank`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .._validation import normalize_distribution
from ..exceptions import ValidationError
from ..markov.irreducibility import DEFAULT_DAMPING
from .pagerank import PageRankResult, pagerank


def preference_from_nodes(n: int, favoured: Iterable[int], *,
                          weight: float = 1.0,
                          background: float = 0.0) -> np.ndarray:
    """Build a preference vector concentrated on a set of favoured nodes.

    Parameters
    ----------
    n:
        Total number of nodes.
    favoured:
        Indices that receive extra preference mass.
    weight:
        Relative weight given to each favoured node.
    background:
        Relative weight given to every node (0 means the surfer only ever
        teleports to favoured nodes).
    """
    favoured = list(favoured)
    if not favoured and background <= 0.0:
        raise ValidationError(
            "preference needs at least one favoured node or background > 0")
    vector = np.full(n, float(background))
    for node in favoured:
        if not 0 <= node < n:
            raise ValidationError(f"favoured node {node} out of range [0, {n})")
        vector[node] += float(weight)
    return normalize_distribution(vector, name="preference")


def preference_from_weights(n: int, weights: Mapping[int, float], *,
                            background: float = 0.0) -> np.ndarray:
    """Build a preference vector from an explicit ``{node: weight}`` mapping."""
    vector = np.full(n, float(background))
    for node, weight in weights.items():
        if not 0 <= int(node) < n:
            raise ValidationError(f"node {node} out of range [0, {n})")
        if weight < 0:
            raise ValidationError("preference weights must be non-negative")
        vector[int(node)] += float(weight)
    return normalize_distribution(vector, name="preference")


def blend_preferences(vectors: Sequence[np.ndarray],
                      coefficients: Optional[Sequence[float]] = None) -> np.ndarray:
    """Convex combination of several preference vectors."""
    if not vectors:
        raise ValidationError("need at least one preference vector")
    if coefficients is None:
        coefficients = [1.0] * len(vectors)
    if len(coefficients) != len(vectors):
        raise ValidationError("coefficients and vectors must align")
    stacked = np.vstack([np.asarray(v, dtype=float) for v in vectors])
    coeffs = np.asarray(coefficients, dtype=float)
    if np.any(coeffs < 0):
        raise ValidationError("coefficients must be non-negative")
    blended = coeffs @ stacked
    return normalize_distribution(blended, name="blended preference")


def personalized_pagerank(adjacency, preference: np.ndarray,
                          damping: float = DEFAULT_DAMPING, *,
                          tol: float = 1e-10, max_iter: int = 1000,
                          method: str = "auto") -> PageRankResult:
    """PageRank with a non-uniform teleportation distribution."""
    return pagerank(adjacency, damping=damping, preference=preference,
                    tol=tol, max_iter=max_iter, method=method)
