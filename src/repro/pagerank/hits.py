"""Kleinberg's HITS algorithm (hubs and authorities).

HITS is the second link-analysis baseline the paper discusses (Section 1.1).
The paper points out (citing Farahat et al.) that HITS can be unstable —
its result may depend on the initial seed vector and may assign zero weight
to whole components.  The implementation below exposes the seed vector so
that the test suite can demonstrate exactly that instability on a
disconnected graph, alongside the normal converging behaviour on connected
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .._validation import is_sparse
from ..exceptions import ConvergenceError, ValidationError


@dataclass
class HITSResult:
    """Hub and authority scores produced by HITS.

    Both vectors are normalised to sum to 1 so they can be compared with
    PageRank-style probability vectors.
    """

    authorities: np.ndarray
    hubs: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)

    def top_authorities(self, k: int) -> List[int]:
        """Indices of the ``k`` highest-authority nodes, best first."""
        order = np.lexsort((np.arange(self.authorities.size), -self.authorities))
        return [int(i) for i in order[:k]]

    def top_hubs(self, k: int) -> List[int]:
        """Indices of the ``k`` highest-hub nodes, best first."""
        order = np.lexsort((np.arange(self.hubs.size), -self.hubs))
        return [int(i) for i in order[:k]]


def hits(adjacency, *, tol: float = 1e-10, max_iter: int = 1000,
         seed_authorities: Optional[np.ndarray] = None,
         normalization: str = "l1",
         raise_on_failure: bool = True) -> HITSResult:
    """Run the HITS mutual-reinforcement iteration.

    ``a_{k+1} ∝ A' h_k`` and ``h_{k+1} ∝ A a_{k+1}`` where ``A`` is the
    adjacency matrix.

    Parameters
    ----------
    adjacency:
        Square non-negative adjacency matrix.
    tol:
        L1 convergence tolerance on the authority vector.
    max_iter:
        Iteration budget.
    seed_authorities:
        Initial authority vector (uniform by default).  Exposed because HITS'
        dependence on the seed is one of the weaknesses the paper notes.
    normalization:
        ``"l1"`` (default, sums to 1) or ``"l2"`` (unit Euclidean norm, the
        original formulation); the final result is always returned
        L1-normalised for comparability.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValidationError(
            f"adjacency must be square, got {adjacency.shape!r}")
    n = adjacency.shape[0]
    if n == 0:
        raise ValidationError("adjacency must have at least one node")
    if normalization not in ("l1", "l2"):
        raise ValidationError(f"unknown normalization {normalization!r}")

    matrix = adjacency.tocsr().astype(float) if is_sparse(adjacency) else \
        np.asarray(adjacency, dtype=float)

    if seed_authorities is None:
        authorities = np.full(n, 1.0 / n)
    else:
        authorities = np.asarray(seed_authorities, dtype=float).ravel()
        if authorities.size != n:
            raise ValidationError(
                f"seed has length {authorities.size}, expected {n}")
        if authorities.min() < 0:
            raise ValidationError("seed must be non-negative")
        if authorities.sum() == 0:
            raise ValidationError("seed must not be all zero")
        authorities = authorities / authorities.sum()

    hubs = np.full(n, 1.0 / n)

    def _norm(vector: np.ndarray) -> np.ndarray:
        if normalization == "l1":
            total = vector.sum()
        else:
            total = np.linalg.norm(vector)
        return vector / total if total > 0 else vector

    residuals: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # Kleinberg's ordering: hubs are recomputed from the current
        # authorities first, then authorities from the new hubs.  This makes
        # the seed authority vector genuinely matter, which is how the test
        # suite demonstrates the seed-dependence weakness the paper cites.
        if is_sparse(matrix):
            new_hubs = np.asarray(matrix @ authorities).ravel()
        else:
            new_hubs = matrix @ authorities
        new_hubs = _norm(new_hubs)
        if is_sparse(matrix):
            new_auth = np.asarray(matrix.T @ new_hubs).ravel()
        else:
            new_auth = matrix.T @ new_hubs
        new_auth = _norm(new_auth)
        residual = float(np.abs(new_auth - authorities).sum()
                         + np.abs(new_hubs - hubs).sum())
        residuals.append(residual)
        authorities, hubs = new_auth, new_hubs
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"HITS did not converge within {max_iter} iterations",
            iterations=iterations, residual=residuals[-1])

    auth_sum = authorities.sum()
    hub_sum = hubs.sum()
    return HITSResult(
        authorities=authorities / auth_sum if auth_sum > 0 else authorities,
        hubs=hubs / hub_sum if hub_sum > 0 else hubs,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
    )
