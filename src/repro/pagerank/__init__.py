"""Link-analysis ranking baselines: PageRank, HITS, BlockRank, accelerations."""

from .adaptive import AdaptivePageRankResult, adaptive_pagerank
from .blockrank import BlockRankResult, blockrank
from .extrapolation import AcceleratedPageRankResult, accelerated_pagerank
from .hits import HITSResult, hits
from .pagerank import PageRankResult, pagerank, pagerank_from_stochastic
from .personalized import (
    blend_preferences,
    personalized_pagerank,
    preference_from_nodes,
    preference_from_weights,
    preference_matrix,
)

__all__ = [
    "AdaptivePageRankResult",
    "adaptive_pagerank",
    "BlockRankResult",
    "blockrank",
    "AcceleratedPageRankResult",
    "accelerated_pagerank",
    "HITSResult",
    "hits",
    "PageRankResult",
    "pagerank",
    "pagerank_from_stochastic",
    "blend_preferences",
    "personalized_pagerank",
    "preference_from_nodes",
    "preference_from_weights",
    "preference_matrix",
]
