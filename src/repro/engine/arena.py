"""Zero-copy shared-memory transport for the engine's graph payloads.

The layered method's step-3 batch is embarrassingly parallel, but a
process pool only realises that parallelism after the task payloads reach
the workers — and until now :class:`~repro.engine.executor.ProcessExecutor`
shipped every site's CSR adjacency (and the SiteGraph) to the pool *by
value*, through pickle.  On a 100k-document web the matrices dominate the
dispatch cost: the workers spend their first milliseconds deserialising
megabytes that already sit, bit for bit, in the parent's memory.

A :class:`GraphArena` removes that copy.  The parent lays the CSR buffers
(``data`` / ``indices`` / ``indptr``) of every matrix of a batch into one
:class:`multiprocessing.shared_memory.SharedMemory` segment and replaces
each embedded matrix with a small picklable :class:`ArenaRef` — segment
name, dtypes, shape and byte offsets.  Workers *attach* to the segment by
name and rebuild the matrices as numpy views over the mapped buffer
(:func:`repro.linalg.sparse_utils.csr_from_buffers`): zero bytes of graph
travel through the pool's pipes, regardless of web size.

Lifecycle is explicit and owned by the dispatching executor:

* ``share_batch`` packs a batch and returns the arena *owner* handle;
* the executor maps the batch and finally calls :meth:`GraphArena.dispose`
  (close + unlink) — segments never outlive the batch that used them, on
  success *or* error, which the arena-lifecycle tests pin down;
* workers attach lazily at task-run time (spawn-safe: attachment is by
  name, nothing is inherited) and keep one segment mapped per process,
  closing the previous batch's mapping when the next batch arrives;
* attaching to a disposed segment raises a clear
  :class:`~repro.exceptions.ValidationError` instead of a bare OS error.

The module also owns the engine's *dispatch accounting*: every transport
(`pickle` or `arena`) reports how many bytes a batch shipped by value, the
number benchmarks and provenance records surface as ``dispatch_bytes``.

Payload types opt into the arena by implementing two methods (duck-typed,
so layers stay decoupled from each other):

``__arena_bytes__()``
    Bytes of payload the arena could absorb (0 when already shared).
``__arena_share__(arena)``
    Return a copy of the payload with its heavy buffers replaced by
    :class:`ArenaRef`\\ s written into *arena*.

:class:`~repro.engine.plan.LocalRankTask`,
:class:`~repro.engine.plan.SiteRankTask` and the serving layer's shard
rebuild jobs all implement the pair.
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError
from ..linalg.layout import ALIGNMENT, BumpLayout, family_nbytes
from ..linalg.sparse_utils import csr_arena_nbytes, csr_from_buffers
from ..web.sitegraph import SiteGraph

#: Prefix of every arena segment name; the leak tests (and operators
#: inspecting ``/dev/shm``) identify our segments by it.
SEGMENT_PREFIX = "repro-arena"

#: Fallback dispatch estimate for payloads that refuse to pickle.
TASK_OVERHEAD_BYTES = 512


@dataclass(frozen=True)
class ArenaRef:
    """Address of one array family inside a shared-memory segment.

    A ref is the *only* thing that crosses the process boundary: it names
    the segment and records, per array, the dtype and byte offset needed
    to rebuild a numpy view over the mapped buffer.  ``kind`` selects the
    layout: ``"csr"`` (three arrays: ``data`` / ``indices`` / ``indptr``)
    or ``"vector"`` (one ``data`` array).

    Refs deliberately carry the shape and nnz so cost models
    (:mod:`repro.engine.adaptive`) can price a shared task without
    attaching to the segment.
    """

    segment: str
    kind: str  # "csr" | "vector"
    shape: Tuple[int, ...]
    data_dtype: str
    data_offset: int
    data_count: int
    index_dtype: str = ""
    indices_offset: int = 0
    indptr_offset: int = 0

    @property
    def nnz(self) -> int:
        """Stored non-zeros (for vectors: the element count)."""
        return self.data_count

    def __reduce__(self):
        # Positional form: a ref is what every shared task ships per
        # matrix, so its pickle must not carry nine field-name strings.
        return (ArenaRef, (self.segment, self.kind, self.shape,
                           self.data_dtype, self.data_offset,
                           self.data_count, self.index_dtype,
                           self.indices_offset, self.indptr_offset))


@dataclass(frozen=True)
class SharedSiteGraph:
    """A :class:`~repro.web.sitegraph.SiteGraph` with its adjacency in an arena.

    Carries the cheap metadata (site identifiers, sizes) by value and the
    SiteLink-count matrix by reference; :meth:`resolve` rebuilds the real
    SiteGraph over the attached buffers in a worker.  Exposes the
    ``n_sites`` / ``adjacency.nnz`` surface the engine's cost model reads,
    so a shared SiteRank task prices exactly like an unshared one.
    """

    sites: Tuple[str, ...]
    site_sizes: Tuple[int, ...]
    include_self_links: bool
    adjacency: ArenaRef

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def resolve(self) -> SiteGraph:
        """Attach and rebuild the full SiteGraph (zero-copy adjacency)."""
        return SiteGraph(sites=list(self.sites),
                         adjacency=resolve_csr(self.adjacency),
                         site_sizes=list(self.site_sizes),
                         include_self_links=self.include_self_links)


# --------------------------------------------------------------------- #
# Owner side
# --------------------------------------------------------------------- #

#: Names of segments created by this process and not yet unlinked — the
#: invariant the leak tests assert on: empty after every batch/service
#: lifecycle, including error paths.
_LIVE_SEGMENTS: "set[str]" = set()


class GraphArena:
    """Owner handle of one shared-memory segment holding graph buffers.

    Created by the dispatching side (usually through :func:`share_batch`),
    filled through a bump allocator (:meth:`add_csr` / :meth:`add_vector`),
    and destroyed with :meth:`dispose` once the batch that referenced it
    has completed.  The context-manager form disposes on exit, so an arena
    can never leak past the scope that created it.
    """

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValidationError("arena size must be positive")
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(name=name, create=True,
                                               size=nbytes)
        self._layout = BumpLayout(self._shm.size,
                                  name=f"arena segment {self._shm.name!r}")
        self._disposed = False
        _LIVE_SEGMENTS.add(self._shm.name)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Capacity of the segment in bytes."""
        return self._shm.size

    @property
    def used(self) -> int:
        """Bytes consumed by the arrays written so far."""
        return self._layout.used

    # ------------------------------------------------------------------ #
    def _write(self, array: np.ndarray) -> int:
        """Copy *array* into the segment; return its byte offset."""
        if self._disposed:
            raise ValidationError("arena is disposed")
        array = np.ascontiguousarray(array)
        offset = self._layout.place(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=self._shm.buf, offset=offset)
        view[...] = array
        return offset

    def add_csr(self, matrix) -> ArenaRef:
        """Lay one CSR matrix's buffers into the segment; return its ref."""
        csr = matrix.tocsr()
        data_offset = self._write(csr.data)
        indices_offset = self._write(csr.indices)
        indptr_offset = self._write(csr.indptr)
        return ArenaRef(segment=self.name, kind="csr",
                        shape=tuple(int(s) for s in csr.shape),
                        data_dtype=csr.data.dtype.str,
                        data_offset=data_offset,
                        data_count=int(csr.data.size),
                        index_dtype=csr.indices.dtype.str,
                        indices_offset=indices_offset,
                        indptr_offset=indptr_offset)

    def add_vector(self, array) -> ArenaRef:
        """Lay one 1-D array into the segment; return its ref."""
        flat = np.ascontiguousarray(array).ravel()
        offset = self._write(flat)
        return ArenaRef(segment=self.name, kind="vector",
                        shape=(int(flat.size),),
                        data_dtype=flat.dtype.str,
                        data_offset=offset,
                        data_count=int(flat.size))

    def add_sitegraph(self, sitegraph: SiteGraph) -> SharedSiteGraph:
        """Share a SiteGraph: metadata by value, adjacency by reference."""
        return SharedSiteGraph(
            sites=tuple(sitegraph.sites),
            site_sizes=tuple(int(s) for s in sitegraph.site_sizes),
            include_self_links=bool(sitegraph.include_self_links),
            adjacency=self.add_csr(sitegraph.adjacency))

    # ------------------------------------------------------------------ #
    def dispose(self) -> None:
        """Close the mapping and unlink the segment (idempotent).

        After this, fresh attaches raise :class:`ValidationError`; workers
        that already hold a mapping keep valid memory until they close it
        (POSIX keeps the pages alive while any mapping exists).
        """
        if self._disposed:
            return
        self._disposed = True
        _LIVE_SEGMENTS.discard(self._shm.name)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "GraphArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GraphArena(name={self.name!r}, used={self.used}, "
                f"size={self.size})")


def live_segments() -> List[str]:
    """Names of arena segments this process created and has not unlinked.

    The lifecycle tests assert this is empty after every executor batch
    and service shutdown — the programmatic counterpart of checking
    ``/dev/shm`` for stray ``repro-arena-*`` files.
    """
    return sorted(_LIVE_SEGMENTS)


# --------------------------------------------------------------------- #
# Attach side (workers, or the owner resolving its own refs)
# --------------------------------------------------------------------- #

#: Per-process cache of attached segments.  Workers of a long-lived pool
#: see one arena per batch; keeping exactly the segments that still
#: resolve (and closing stale ones on the next attach) bounds the mapped
#: memory to roughly one batch.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for tracking.

    The segment's *owner* is solely responsible for unlinking it; letting
    an attach register with the ``resource_tracker`` (which CPython < 3.13
    does unconditionally, bpo-39959) would make worker exits unlink — or
    warn about — segments they never owned.  3.13+ exposes ``track=False``
    for exactly this; earlier interpreters need the registration silenced
    for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shared_memory(res_name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - other types
                original(res_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _open_segment(name: str) -> shared_memory.SharedMemory:
    try:
        return _attach_untracked(name)
    except FileNotFoundError:
        raise ValidationError(
            f"arena segment {name!r} does not exist (it was closed/unlinked "
            f"by its owner); ArenaRefs are only valid while the dispatching "
            f"executor's batch is in flight") from None


def _segment(name: str) -> shared_memory.SharedMemory:
    cached = _ATTACHED.get(name)
    if cached is not None:
        _ATTACHED.move_to_end(name)
        return cached
    # A new segment means a new batch: drop mappings of previous batches
    # so worker memory stays bounded.  A mapping still referenced by live
    # numpy views refuses to close (BufferError) and is simply kept.
    for stale in list(_ATTACHED):
        try:
            _ATTACHED[stale].close()
        except BufferError:  # pragma: no cover - views still alive
            continue
        del _ATTACHED[stale]
    shm = _open_segment(name)
    _ATTACHED[name] = shm
    return shm


def _view(shm: shared_memory.SharedMemory, dtype: str, offset: int,
          count: int) -> np.ndarray:
    array = np.ndarray((count,), dtype=np.dtype(dtype), buffer=shm.buf,
                       offset=offset)
    # The buffers are shared between processes: make accidental in-place
    # mutation (which would corrupt every other task of the batch) an
    # immediate error instead of a heisenbug.
    array.flags.writeable = False
    return array


def resolve_csr(ref: ArenaRef):
    """Rebuild a CSR matrix as zero-copy views over an arena segment."""
    if ref.kind != "csr":
        raise ValidationError(f"expected a csr ref, got kind={ref.kind!r}")
    shm = _segment(ref.segment)
    n_rows = ref.shape[0]
    data = _view(shm, ref.data_dtype, ref.data_offset, ref.data_count)
    indices = _view(shm, ref.index_dtype, ref.indices_offset, ref.data_count)
    indptr = _view(shm, ref.index_dtype, ref.indptr_offset, n_rows + 1)
    return csr_from_buffers(data, indices, indptr, ref.shape)


def resolve_vector(ref: ArenaRef) -> np.ndarray:
    """Rebuild a 1-D array as a zero-copy view over an arena segment."""
    if ref.kind != "vector":
        raise ValidationError(f"expected a vector ref, got kind={ref.kind!r}")
    shm = _segment(ref.segment)
    return _view(shm, ref.data_dtype, ref.data_offset, ref.data_count)


def resolve_matrix(adjacency):
    """Pass through real matrices; attach :class:`ArenaRef` ones."""
    if isinstance(adjacency, ArenaRef):
        return resolve_csr(adjacency)
    return adjacency


# --------------------------------------------------------------------- #
# Optional-vector payloads (preference / start / id / score vectors)
# --------------------------------------------------------------------- #
# Task payloads carry optional vectors that may arrive as None, as any
# array-like (list, float32 array, ...), or — once shared — as an
# ArenaRef.  These three helpers are the single implementation of the
# budget / share / resolve triple every payload type uses, so the byte
# accounting can never drift from what share_vector actually writes.

def _vector_payload(vector) -> np.ndarray:
    """The exact float64 array :func:`share_vector` would write."""
    return np.ascontiguousarray(np.asarray(vector, dtype=float)).ravel()


def vector_arena_nbytes(*vectors) -> int:
    """Arena bytes of optional vector payloads (0 for None / already shared).

    Budgets the *written* form — the float64 cast of whatever array-like
    the caller holds — plus one :data:`ALIGNMENT` slack per vector, so a
    float32 or plain-list input can never overflow the segment it sized.
    """
    return family_nbytes(*(_vector_payload(v).nbytes for v in vectors
                           if v is not None
                           and not isinstance(v, ArenaRef)))


def share_vector(arena: GraphArena, vector):
    """Write an optional vector into *arena* (None / refs pass through)."""
    if vector is None or isinstance(vector, ArenaRef):
        return vector
    return arena.add_vector(_vector_payload(vector))


def resolve_vector_payload(vector):
    """Pass through real (or absent) vectors; attach :class:`ArenaRef` ones."""
    if isinstance(vector, ArenaRef):
        return resolve_vector(vector)
    return vector


# --------------------------------------------------------------------- #
# Batch packing + dispatch accounting
# --------------------------------------------------------------------- #

def arena_bytes(item) -> int:
    """Bytes of *item*'s payload an arena could absorb (0 when none)."""
    measure = getattr(item, "__arena_bytes__", None)
    return int(measure()) if measure is not None else 0


def share_batch(items: Sequence) -> Tuple[list, Optional[GraphArena]]:
    """Pack a batch's heavy buffers into one arena.

    Returns ``(shared_items, arena)`` — the items with their matrices
    replaced by :class:`ArenaRef`\\ s, plus the owner handle the caller
    must :meth:`~GraphArena.dispose` after the batch completes.  When no
    item has anything to share the original list is returned with
    ``arena=None`` and nothing is allocated.
    """
    items = list(items)
    total = sum(arena_bytes(item) for item in items)
    if total == 0:
        return items, None
    arena = GraphArena(total)
    try:
        shared = [item.__arena_share__(arena)
                  if getattr(item, "__arena_share__", None) is not None
                  else item
                  for item in items]
    except BaseException:
        arena.dispose()
        raise
    return shared, arena


def dispatch_bytes(items: Sequence) -> int:
    """Bytes pickle serialises to ship *items* to worker processes.

    Measured exactly (one ``pickle.dumps`` per item — the same work the
    pool performs to dispatch them, so the measurement is at most a
    doubling of a cost the batch pays anyway, and for arena-shared items
    the payloads are tiny refs).  This is the number surfaced as
    ``dispatch_bytes`` in provenance records, simulation reports and the
    transport benchmarks.
    """
    total = 0
    for item in items:
        try:
            total += len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:  # pragma: no cover - unpicklable payloads
            total += TASK_OVERHEAD_BYTES
    return total


__all__ = [
    "ALIGNMENT",
    "ArenaRef",
    "GraphArena",
    "SEGMENT_PREFIX",
    "SharedSiteGraph",
    "TASK_OVERHEAD_BYTES",
    "arena_bytes",
    "csr_arena_nbytes",
    "dispatch_bytes",
    "live_segments",
    "resolve_csr",
    "resolve_matrix",
    "resolve_vector",
    "resolve_vector_payload",
    "share_batch",
    "share_vector",
    "vector_arena_nbytes",
]
