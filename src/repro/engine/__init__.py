"""Parallel execution engine for the layered ranking computation.

The paper proves the layered decomposition is *decentralizable*: per-site
DocRanks are mutually independent and independent of the SiteRank.  This
package turns that theorem into scheduling machinery shared by every
compute layer of the repository:

* :mod:`repro.engine.executor` — the :class:`Executor` protocol with
  serial, thread-pool and process-pool backends;
* :mod:`repro.engine.plan` — the :class:`RankingPlan` task graph encoding
  the 5-step layered method (concurrent steps 3/4, composing barrier at
  step 5);
* :mod:`repro.engine.warm` — warm-start state so power iterations resume
  from previously converged vectors instead of restarting from uniform;
* :mod:`repro.engine.adaptive` — cost-model-driven backend selection:
  ``n_jobs="auto"`` prices each batch (task nnz × expected iterations) and
  picks serial / threaded / process per batch;
* :mod:`repro.engine.arena` — zero-copy shared-memory transport: the
  process backend lays each batch's CSR buffers into one
  ``SharedMemory`` segment (a :class:`GraphArena`) and ships only tiny
  :class:`ArenaRef` addresses, so dispatch cost no longer scales with the
  web's size;
* :mod:`repro.engine.outofcore` — :func:`rank_outofcore`, the same solve
  schedule streamed over an mmap'd :class:`~repro.io.diskgraph.DiskGraph`
  in bounded memory, publishing scores into a ranked-artifact store.

The centralized pipeline (:mod:`repro.web.pipeline`), the
incremental ranker, the distributed simulator and the serving layer all
schedule their work through this package; the determinism-guard tests pin
down that every backend produces bitwise-identical rankings.
"""

from .arena import (
    ArenaRef,
    GraphArena,
    SharedSiteGraph,
    dispatch_bytes,
    live_segments,
    resolve_csr,
    resolve_vector,
    share_batch,
)
from .adaptive import (
    AutoExecutor,
    auto_executor,
    batch_flops,
    expected_iterations,
    power_method_flops,
    select_backend,
    task_flops,
)
from .calibrate import (
    CalibrationProfile,
    activate_profile,
    active_profile,
    deactivate_profile,
    dense_cutoff,
)
from .calibrate import calibrate as run_calibration
from .executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    default_n_jobs,
    make_executor,
    normalize_n_jobs,
    resolve_executor,
    warmup_for,
)
from .outofcore import (
    GenerationWarmStart,
    OutOfCoreRanking,
    SolveUnit,
    plan_solve_units,
    rank_outofcore,
)
from .plan import (
    BATCH_SITE_MAX_DOCS,
    BATCH_TARGET_DOCS,
    BatchedSiteTask,
    LocalRankTask,
    PlanExecution,
    RankingPlan,
    SiteRankTask,
    batch_site_tasks,
    collect_site_results,
    execute_site_tasks,
    execute_tasks,
    run_task,
    site_tasks_for,
)
from .warm import WarmStartState, align_warm_start

__all__ = [
    "ArenaRef",
    "GraphArena",
    "SharedSiteGraph",
    "dispatch_bytes",
    "live_segments",
    "resolve_csr",
    "resolve_vector",
    "share_batch",
    "AutoExecutor",
    "auto_executor",
    "batch_flops",
    "expected_iterations",
    "power_method_flops",
    "select_backend",
    "task_flops",
    "CalibrationProfile",
    "activate_profile",
    "active_profile",
    "run_calibration",
    "deactivate_profile",
    "dense_cutoff",
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "default_n_jobs",
    "make_executor",
    "normalize_n_jobs",
    "resolve_executor",
    "warmup_for",
    "GenerationWarmStart",
    "OutOfCoreRanking",
    "SolveUnit",
    "plan_solve_units",
    "rank_outofcore",
    "BATCH_SITE_MAX_DOCS",
    "BATCH_TARGET_DOCS",
    "BatchedSiteTask",
    "LocalRankTask",
    "PlanExecution",
    "RankingPlan",
    "SiteRankTask",
    "batch_site_tasks",
    "collect_site_results",
    "execute_site_tasks",
    "execute_tasks",
    "run_task",
    "site_tasks_for",
    "WarmStartState",
    "align_warm_start",
]
