"""Warm-start state for resumable power iterations.

Power iteration converges from any starting distribution, but the number of
iterations it needs is governed by the distance between the start vector and
the stationary vector.  After a small change to a site's link structure the
new local DocRank is close to the old one, so seeding the solver with the
previous stationary vector makes refreshes converge in a fraction of the
cold-start iterations — the practical payoff the incremental-update
benchmark (E14) measures.

:func:`align_warm_start` handles the bookkeeping that makes a cached vector
safe to reuse: document sets drift between refreshes (pages are added), so
the previous probability mass is mapped by document id and any new document
starts from the uniform share before the vector is renormalised.
:class:`WarmStartState` is the engine-level container for these vectors;
:class:`~repro.web.incremental.IncrementalLayeredRanker` keeps equivalent
state in its own result cache.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError


def align_warm_start(previous_doc_ids: Sequence[int],
                     previous_vector: np.ndarray,
                     doc_ids: Sequence[int]) -> Optional[np.ndarray]:
    """Re-align a previously converged vector onto a (possibly changed) id set.

    Parameters
    ----------
    previous_doc_ids:
        Document ids the cached vector was computed over, in vector order.
    previous_vector:
        The cached stationary distribution.
    doc_ids:
        Document ids of the upcoming computation, in vector order.

    Returns
    -------
    A probability distribution over *doc_ids* that reuses the cached mass
    (documents unknown to the cache receive the uniform share ``1/n``), or
    ``None`` when nothing can be reused — the caller then cold-starts.
    """
    doc_ids = list(doc_ids)
    if not doc_ids:
        return None
    previous_vector = np.asarray(previous_vector, dtype=float).ravel()
    if len(previous_doc_ids) != previous_vector.size:
        return None
    if list(previous_doc_ids) == doc_ids:
        # Unchanged document set: reuse the converged vector as-is.
        return previous_vector.copy()
    mass_of = {doc_id: float(value)
               for doc_id, value in zip(previous_doc_ids, previous_vector)}
    if not any(doc_id in mass_of for doc_id in doc_ids):
        return None
    uniform = 1.0 / len(doc_ids)
    start = np.asarray([mass_of.get(doc_id, uniform) for doc_id in doc_ids],
                       dtype=float)
    total = start.sum()
    if total <= 0.0 or not np.isfinite(total):
        return None
    return start / total


class WarmStartState:
    """Cached stationary vectors a :class:`~repro.engine.plan.RankingPlan` resumes from.

    The state holds one vector per site (keyed by the site identifier,
    together with the document ids it was computed over) plus the SiteRank
    vector (with its site list).  It is deliberately value-only — no graph
    references — so a single state object can be carried across plan
    executions, shipped between processes, or discarded wholesale.
    """

    def __init__(self) -> None:
        self._site_vectors: Dict[str, Tuple[Tuple[int, ...], np.ndarray]] = {}
        self._siterank: Optional[Tuple[Tuple[str, ...], np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Recording converged vectors
    # ------------------------------------------------------------------ #
    def record_local(self, site: str, doc_ids: Sequence[int],
                     vector: np.ndarray) -> None:
        """Remember one site's converged local DocRank."""
        self._site_vectors[site] = (tuple(doc_ids),
                                    np.asarray(vector, dtype=float).copy())

    def record_siterank(self, sites: Sequence[str],
                        vector: np.ndarray) -> None:
        """Remember the converged SiteRank."""
        self._siterank = (tuple(sites),
                          np.asarray(vector, dtype=float).copy())

    def forget_site(self, site: str) -> None:
        """Drop one site's cached vector (no-op when absent)."""
        self._site_vectors.pop(site, None)

    # ------------------------------------------------------------------ #
    # Producing start vectors
    # ------------------------------------------------------------------ #
    def local_start(self, site: str,
                    doc_ids: Sequence[int]) -> Optional[np.ndarray]:
        """Start vector for one site's local DocRank (``None`` → cold start)."""
        cached = self._site_vectors.get(site)
        if cached is None:
            return None
        previous_doc_ids, vector = cached
        return align_warm_start(previous_doc_ids, vector, doc_ids)

    def local_vector(self, site: str
                     ) -> Optional[Tuple[Tuple[int, ...], np.ndarray]]:
        """The exact cached ``(doc_ids, vector)`` of one site, unaligned.

        Unlike :meth:`local_start` this performs no re-alignment or
        renormalisation — it is the recovery accessor the cluster ledger
        uses to restore a persisted result bitwise.
        """
        cached = self._site_vectors.get(site)
        if cached is None:
            return None
        doc_ids, vector = cached
        return doc_ids, vector.copy()

    def siterank_start(self, sites: Sequence[str]) -> Optional[np.ndarray]:
        """Start vector for the SiteRank (``None`` → cold start).

        Site identifiers play the role document ids play for the local
        vectors: mass is carried over by identifier, new sites get the
        uniform share.
        """
        if self._siterank is None:
            return None
        previous_sites, vector = self._siterank
        return align_warm_start(previous_sites, vector, sites)

    # ------------------------------------------------------------------ #
    # Persistence (see repro.io.save_warm_state / load_warm_state)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable snapshot of every cached vector.

        The snapshot is value-only (ids and floats), so a restarted
        process can rebuild the state with :meth:`from_dict` and resume
        power iterations from the previous run's vectors.
        """
        return {
            "sites": {
                site: {"doc_ids": list(doc_ids), "vector": vector.tolist()}
                for site, (doc_ids, vector) in self._site_vectors.items()
            },
            "siterank": None if self._siterank is None else {
                "sites": list(self._siterank[0]),
                "vector": self._siterank[1].tolist(),
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WarmStartState":
        """Rebuild a state from a :meth:`to_dict` snapshot."""
        if not isinstance(payload, dict) or not isinstance(
                payload.get("sites"), dict):
            raise ValidationError(
                "warm-start snapshot must be a dict with a 'sites' table")
        state = cls()
        for site, entry in payload["sites"].items():
            try:
                doc_ids = [int(doc_id) for doc_id in entry["doc_ids"]]
                vector = np.asarray(entry["vector"], dtype=float)
            except (KeyError, TypeError, ValueError) as error:
                raise ValidationError(
                    f"malformed warm-start entry for site {site!r}: {error}"
                ) from None
            if len(doc_ids) != vector.size:
                raise ValidationError(
                    f"warm-start entry for site {site!r} has "
                    f"{len(doc_ids)} doc_ids but {vector.size} values")
            state.record_local(site, doc_ids, vector)
        siterank = payload.get("siterank")
        if siterank is not None:
            try:
                sites = [str(site) for site in siterank["sites"]]
                vector = np.asarray(siterank["vector"], dtype=float)
            except (KeyError, TypeError, ValueError) as error:
                raise ValidationError(
                    f"malformed warm-start SiteRank entry: {error}") from None
            if len(sites) != vector.size:
                raise ValidationError(
                    "warm-start SiteRank entry has mismatched lengths")
            state.record_siterank(sites, vector)
        return state

    # ------------------------------------------------------------------ #
    @property
    def n_sites(self) -> int:
        """Number of sites with a cached local vector."""
        return len(self._site_vectors)

    @property
    def has_siterank(self) -> bool:
        """Whether a SiteRank vector is cached."""
        return self._siterank is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WarmStartState(n_sites={self.n_sites}, "
                f"has_siterank={self.has_siterank})")
