"""The :class:`RankingPlan`: the layered method as an explicit task graph.

The 5-step layered method (Section 3.2 of the paper) has a fixed dependency
structure that every compute layer of this package used to re-implement as
its own serial loop:

1. *input* — the global DocGraph ``G_D``;
2. *aggregate* — build the SiteGraph ``G_S`` (cheap, serial);
3. *local DocRanks* — one task per site, mutually independent;
4. *SiteRank* — one task, independent of every step-3 task (this is the
   decisive difference from BlockRank, whose aggregation consumes the
   local values);
5. *compose* — the ``π_S(s) · π_D(s)`` weighting at the barrier where
   steps 3 and 4 join.

A :class:`RankingPlan` materialises steps 3 and 4 as picklable task objects
(:class:`LocalRankTask`, :class:`SiteRankTask`) and executes them through
any :class:`~repro.engine.executor.Executor` in a single batch — the
barrier of the batch *is* the step-5 synchronisation point.  Because the
tasks are value-only, the same plan is the unit of scheduling for the
centralized pipeline, the incremental ranker's refresh batches, the
distributed simulator's peers, and the scaling benchmarks.

Warm starts plug in at construction: a :class:`~repro.engine.warm.WarmStartState`
seeds each task with the previously converged vector so power iterations
resume instead of restarting from uniform.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..exceptions import GraphStructureError, ValidationError
from ..linalg.block_solver import (
    PackedBlocks,
    pack_block_vectors,
    pack_blocks,
    solve_blocks,
)
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..linalg.sparse_utils import csr_arena_nbytes
from ..web.docgraph import DocGraph
from ..web.docrank import (
    LocalDocRank,
    SiteColumns,
    solve_local_columns,
    solve_local_docrank,
)
from ..web.sitegraph import SiteGraph, aggregate_sitegraph
from ..web.siterank import SiteRankResult, siterank
from .arena import (
    ALIGNMENT,
    ArenaRef,
    SharedSiteGraph,
    resolve_matrix,
    resolve_vector,
    resolve_vector_payload,
    share_vector,
    vector_arena_nbytes,
)
from .executor import Executor, resolve_executor
from .warm import WarmStartState


def _matrix_payload(vector: object, n_rows: int, n_vectors: int, *,
                    fill_uniform: bool = True) -> Optional[np.ndarray]:
    """Rebuild an ``(n_rows, K)`` column matrix from a task payload.

    The shared-memory arena transports 1-D buffers only, so multi-vector
    tasks ship their preference/start matrices flattened row-major; this
    undoes the flattening (a no-op reshape for in-process matrices).  When
    the payload is absent, returns a uniform matrix (*fill_uniform*) or
    ``None``.
    """
    payload = resolve_vector_payload(vector)
    if payload is None:
        if not fill_uniform:
            return None
        return np.full((n_rows, n_vectors), 1.0 / n_rows)
    return np.asarray(payload, dtype=float).reshape(n_rows, n_vectors)


@dataclass(frozen=True)
class LocalRankTask:
    """Step 3: one site's local DocRank as a self-contained unit of work.

    The task carries the already-extracted local subgraph instead of a
    DocGraph reference, so it is independent of any shared mutable state —
    the property that lets every backend schedule it freely.  ``adjacency``
    is either the CSR matrix itself (in-process backends read it directly)
    or an :class:`~repro.engine.arena.ArenaRef` addressing the same buffers
    in a shared-memory arena — the zero-copy form the process backend
    dispatches, resolved lazily in the worker by :meth:`run`.
    """

    site: str
    adjacency: object  #: local link matrix: CSR, or an ArenaRef to one
    doc_ids: object  #: tuple of global ids, or an ArenaRef to the id vector
    damping: float = DEFAULT_DAMPING
    preference: object = None  #: optional vector, or an ArenaRef to one
    tol: float = DEFAULT_TOL
    max_iter: int = DEFAULT_MAX_ITER
    start: object = None  #: optional vector, or an ArenaRef to one
    #: Preference columns carried per document.  ``1`` is the classic
    #: single-vector task; ``K > 1`` means ``preference``/``start`` hold an
    #: ``(n, K)`` matrix (flattened row-major when riding the 1-D arena —
    #: :meth:`run` reshapes) and the task yields a
    #: :class:`~repro.web.docrank.SiteColumns` instead of a LocalDocRank.
    n_vectors: int = 1

    @property
    def n_documents(self) -> int:
        """Number of documents the task ranks."""
        if isinstance(self.doc_ids, ArenaRef):
            return self.doc_ids.data_count
        return len(self.doc_ids)

    @property
    def nnz(self) -> int:
        """Non-zeros of the local link matrix (cost-model input).

        Works without attaching: an :class:`~repro.engine.arena.ArenaRef`
        records its nnz, so shared tasks price exactly like unshared ones.
        """
        return int(self.adjacency.nnz)

    # -------------------------------------------------------------- #
    # Shared-memory transport hooks (see repro.engine.arena)
    # -------------------------------------------------------------- #
    def __arena_bytes__(self) -> int:
        if isinstance(self.adjacency, ArenaRef):
            return 0
        return (csr_arena_nbytes(self.adjacency)
                + 8 * len(self.doc_ids) + ALIGNMENT
                + vector_arena_nbytes(self.preference, self.start))

    def __arena_share__(self, arena) -> "LocalRankTask":
        if isinstance(self.adjacency, ArenaRef):
            return self
        return replace(
            self,
            adjacency=arena.add_csr(self.adjacency),
            doc_ids=arena.add_vector(np.asarray(self.doc_ids,
                                                dtype=np.int64)),
            preference=share_vector(arena, self.preference),
            start=share_vector(arena, self.start))

    def run(self):
        """Execute the task on the calling thread (attaching shared buffers)."""
        doc_ids = self.doc_ids
        if isinstance(doc_ids, ArenaRef):
            doc_ids = [int(d) for d in resolve_vector(doc_ids)]
        else:
            doc_ids = list(doc_ids)
        if self.n_vectors > 1:
            return solve_local_columns(
                self.site, resolve_matrix(self.adjacency), doc_ids,
                _matrix_payload(self.preference, len(doc_ids),
                                self.n_vectors),
                self.damping, tol=self.tol, max_iter=self.max_iter,
                start=_matrix_payload(self.start, len(doc_ids),
                                      self.n_vectors, fill_uniform=False))
        return solve_local_docrank(
            self.site, resolve_matrix(self.adjacency), doc_ids, self.damping,
            preference=resolve_vector_payload(self.preference),
            tol=self.tol, max_iter=self.max_iter,
            start=resolve_vector_payload(self.start))


@dataclass(frozen=True)
class SiteRankTask:
    """Step 4: the SiteRank of the aggregated SiteGraph.

    Runs concurrently with every :class:`LocalRankTask` — the SiteGraph is
    built from link *counts* only, never from local rank values, which is
    exactly why the paper's method parallelises where BlockRank cannot.
    ``sitegraph`` is either the :class:`~repro.web.sitegraph.SiteGraph`
    itself or a :class:`~repro.engine.arena.SharedSiteGraph` whose
    adjacency lives in a shared-memory arena.
    """

    sitegraph: object  #: SiteGraph, or a SharedSiteGraph over an arena
    damping: float = DEFAULT_DAMPING
    preference: object = None  #: optional vector, or an ArenaRef to one
    tol: float = DEFAULT_TOL
    max_iter: int = DEFAULT_MAX_ITER
    start: object = None  #: optional vector, or an ArenaRef to one

    # -------------------------------------------------------------- #
    # Shared-memory transport hooks (see repro.engine.arena)
    # -------------------------------------------------------------- #
    def __arena_bytes__(self) -> int:
        if isinstance(self.sitegraph, SharedSiteGraph):
            return 0
        return (csr_arena_nbytes(self.sitegraph.adjacency)
                + vector_arena_nbytes(self.preference, self.start))

    def __arena_share__(self, arena) -> "SiteRankTask":
        if isinstance(self.sitegraph, SharedSiteGraph):
            return self
        return replace(self,
                       sitegraph=arena.add_sitegraph(self.sitegraph),
                       preference=share_vector(arena, self.preference),
                       start=share_vector(arena, self.start))

    def run(self) -> SiteRankResult:
        """Execute the task on the calling thread (attaching shared buffers)."""
        sitegraph = self.sitegraph
        if isinstance(sitegraph, SharedSiteGraph):
            sitegraph = sitegraph.resolve()
        return siterank(sitegraph, self.damping,
                        preference=resolve_vector_payload(self.preference),
                        tol=self.tol, max_iter=self.max_iter,
                        start=resolve_vector_payload(self.start))


#: Sites at or below this many documents ride a fused batched task by
#: default; larger sites keep their dedicated :class:`LocalRankTask` (their
#: linear algebra dominates, so fusing buys nothing and would serialise
#: work a pool could overlap).
BATCH_SITE_MAX_DOCS = 512

#: Target total documents per fused batch.  One giant batch would pin all
#: small-site work to a single task; chunking at this size keeps enough
#: independent fused tasks for the pooled backends to overlap while still
#: amortising the per-site interpreter overhead thousands of times over.
BATCH_TARGET_DOCS = 25_000


@dataclass(frozen=True)
class BatchedSiteTask:
    """Step 3 for *many small sites* as one fused unit of work.

    The constituent sites' local adjacencies are packed into a single
    block-diagonal CSR at construction (:func:`repro.linalg.block_solver.pack_blocks`)
    and solved by one fused power iteration with per-site convergence
    freezing (:func:`repro.linalg.block_solver.solve_blocks`) — thousands
    of Python-level solver loops become a handful of large SpMVs per
    sweep.  Like :class:`LocalRankTask` the payload is value-only and
    picklable; on the process backend the *packed* buffers (one CSR, one
    id vector, one offset vector, optional packed start/preference
    vectors) ride the shared-memory arena as a single family of refs
    instead of per-site buffers.
    """

    sites: Tuple[str, ...]
    adjacency: object  #: packed block-diagonal CSR, or an ArenaRef to one
    offsets: object  #: int64 block boundaries (len sites+1), or an ArenaRef
    doc_ids: object  #: int64 concatenated global ids, or an ArenaRef
    damping: float = DEFAULT_DAMPING
    preference: object = None  #: packed vector, or an ArenaRef, or None
    tol: float = DEFAULT_TOL
    max_iter: int = DEFAULT_MAX_ITER
    start: object = None  #: packed vector, or an ArenaRef, or None
    #: Preference columns per document; ``K > 1`` runs the fused SpMM
    #: solve and yields :class:`~repro.web.docrank.SiteColumns` per site.
    #: The packed preference/start matrices ride the 1-D arena flattened
    #: row-major; :meth:`run` reshapes.
    n_vectors: int = 1

    #: Marker the adaptive cost model keys on to re-price fused batches
    #: (duck-typed so :mod:`repro.engine.adaptive` needs no import).
    is_fused_batch = True

    @property
    def n_sites(self) -> int:
        """Number of fused sites."""
        return len(self.sites)

    @property
    def n_documents(self) -> int:
        """Total documents across the fused sites (cost-model input)."""
        if isinstance(self.doc_ids, ArenaRef):
            return self.doc_ids.data_count
        return int(len(self.doc_ids))

    @property
    def nnz(self) -> int:
        """Non-zeros of the packed block-diagonal matrix."""
        return int(self.adjacency.nnz)

    # -------------------------------------------------------------- #
    # Shared-memory transport hooks (see repro.engine.arena)
    # -------------------------------------------------------------- #
    def __arena_bytes__(self) -> int:
        if isinstance(self.adjacency, ArenaRef):
            return 0
        return (csr_arena_nbytes(self.adjacency)
                + 8 * (self.n_documents + self.n_sites + 1) + 2 * ALIGNMENT
                + vector_arena_nbytes(self.preference, self.start))

    def __arena_share__(self, arena) -> "BatchedSiteTask":
        if isinstance(self.adjacency, ArenaRef):
            return self
        return replace(
            self,
            adjacency=arena.add_csr(self.adjacency),
            offsets=arena.add_vector(np.asarray(self.offsets,
                                                dtype=np.int64)),
            doc_ids=arena.add_vector(np.asarray(self.doc_ids,
                                                dtype=np.int64)),
            preference=share_vector(arena, self.preference),
            start=share_vector(arena, self.start))

    def run(self):
        """Solve every fused site; results in :attr:`sites` order."""
        offsets = np.asarray(resolve_vector_payload(self.offsets),
                             dtype=np.int64)
        doc_ids = np.asarray(resolve_vector_payload(self.doc_ids),
                             dtype=np.int64)
        n_rows = int(offsets[-1])
        if self.n_vectors > 1:
            start = _matrix_payload(self.start, n_rows, self.n_vectors,
                                    fill_uniform=False)
            preference = _matrix_payload(self.preference, n_rows,
                                         self.n_vectors, fill_uniform=False)
        else:
            start = resolve_vector_payload(self.start)
            preference = resolve_vector_payload(self.preference)
        packed = PackedBlocks(
            matrix=resolve_matrix(self.adjacency), offsets=offsets,
            start=start, preference=preference)
        solved = solve_blocks(packed, self.damping, tol=self.tol,
                              max_iter=self.max_iter)
        results = []
        for index, site in enumerate(self.sites):
            ids = [int(doc_id)
                   for doc_id in doc_ids[offsets[index]:offsets[index + 1]]]
            if self.n_vectors > 1:
                columns = solved.vectors[index]
                if columns.ndim == 1:
                    # All-uniform preference degenerated to one column;
                    # every segment shares it.
                    columns = np.broadcast_to(
                        columns[:, None],
                        (columns.size, self.n_vectors)).copy()
                results.append(SiteColumns(
                    site=site, doc_ids=ids, columns=columns,
                    iterations=int(np.max(solved.iterations[index]))))
            else:
                results.append(LocalDocRank(
                    site=site, doc_ids=ids,
                    scores=solved.vectors[index],
                    iterations=int(solved.iterations[index])))
        return results

    @classmethod
    def from_tasks(cls, tasks: Sequence[LocalRankTask], *,
                   pack_cache: Optional[dict] = None) -> "BatchedSiteTask":
        """Fuse per-site tasks (which must share damping/tol/max_iter/K).

        *pack_cache* is a caller-owned dict reusing the packed
        block-diagonal CSR across calls.  The key is the chunk's
        ``(site, n_documents, nnz)`` fingerprint — exact under the
        DocGraph's add-only mutation API, where any structural change to a
        site moves its document or link count — so a warm-started refresh
        of structurally unchanged sites (and the segment batch sharing a
        refresh's base batch) skips the ``scipy`` block-diagonal rebuild
        and only re-packs the start/preference payloads.
        """
        if not tasks:
            raise ValidationError("cannot batch zero site tasks")
        head = tasks[0]
        for task in tasks[1:]:
            if (task.damping, task.tol, task.max_iter, task.n_vectors) != \
                    (head.damping, head.tol, head.max_iter, head.n_vectors):
                raise ValidationError(
                    "batched site tasks must share damping, tol, max_iter "
                    "and n_vectors")
        doc_ids = np.concatenate([
            np.asarray(task.doc_ids, dtype=np.int64) for task in tasks])
        key = (tuple((task.site, task.n_documents, task.nnz)
                     for task in tasks) if pack_cache is not None else None)
        cached = pack_cache.get(key) if pack_cache is not None else None
        if cached is not None:
            matrix, offsets = cached
            sizes = [task.n_documents for task in tasks]
            start = pack_block_vectors([task.start for task in tasks],
                                       sizes, name="start")
            preference = pack_block_vectors(
                [task.preference for task in tasks], sizes,
                name="preference")
            obs.inc("block_pack_reuse_total")
        else:
            packed = pack_blocks([(task.adjacency, task.start,
                                   task.preference) for task in tasks])
            matrix, offsets = packed.matrix, packed.offsets
            start, preference = packed.start, packed.preference
            if pack_cache is not None:
                pack_cache[key] = (matrix, offsets)
            obs.inc("block_pack_builds_total")
        return cls(sites=tuple(task.site for task in tasks),
                   adjacency=matrix, offsets=offsets,
                   doc_ids=doc_ids, damping=head.damping,
                   preference=preference, tol=head.tol,
                   max_iter=head.max_iter, start=start,
                   n_vectors=head.n_vectors)


def batch_site_tasks(tasks: Sequence[LocalRankTask], *,
                     max_docs: int = BATCH_SITE_MAX_DOCS,
                     target_docs: int = BATCH_TARGET_DOCS,
                     pack_cache: Optional[dict] = None
                     ) -> List["RankTask"]:
    """Group small-site tasks into fused :class:`BatchedSiteTask` payloads.

    Sites with at most *max_docs* documents are fused (grouped by their
    solver parameters, chunked at *target_docs* total documents so pooled
    backends keep parallelism across batches); larger sites — and tasks
    whose buffers already live in an arena — pass through untouched.  The
    returned list mixes fused and dedicated tasks; callers key results
    back by site, so ordering between the two kinds is irrelevant.
    *pack_cache* reuses packed CSR structures across calls (see
    :meth:`BatchedSiteTask.from_tasks`).
    """
    if max_docs < 0 or target_docs < 1:
        raise ValidationError(
            "max_docs must be non-negative and target_docs positive")
    passthrough: List[RankTask] = []
    groups: "OrderedDict[tuple, List[LocalRankTask]]" = OrderedDict()
    for task in tasks:
        if (task.n_documents > max_docs
                or isinstance(task.adjacency, ArenaRef)):
            passthrough.append(task)
            continue
        key = (task.damping, task.tol, task.max_iter, task.n_vectors)
        groups.setdefault(key, []).append(task)

    fused: List[RankTask] = []
    for grouped in groups.values():
        chunk: List[LocalRankTask] = []
        chunk_docs = 0
        for task in grouped:
            if chunk and chunk_docs + task.n_documents > target_docs:
                fused.append(BatchedSiteTask.from_tasks(
                    chunk, pack_cache=pack_cache))
                chunk, chunk_docs = [], 0
            chunk.append(task)
            chunk_docs += task.n_documents
        if len(chunk) == 1:
            # A fused batch of one site has nothing to amortise; keep the
            # dedicated task (and its bitwise-reference code path).
            passthrough.append(chunk[0])
        elif chunk:
            fused.append(BatchedSiteTask.from_tasks(
                chunk, pack_cache=pack_cache))
    return [*fused, *passthrough]


#: Union of the engine's task types.
RankTask = Union[LocalRankTask, SiteRankTask, BatchedSiteTask]


def run_task(task: RankTask):
    """Execute one engine task (module-level so process pools can pickle it)."""
    return task.run()


def execute_tasks(tasks: Sequence[RankTask], *,
                  executor: Optional[Executor] = None,
                  n_jobs: Optional[int] = None) -> Tuple[list, float]:
    """Run a batch of tasks through an executor; a barrier with timing.

    Returns ``(results, wall_seconds)`` with results aligned to *tasks*.
    The measured wall-clock is what the scaling benchmarks and the
    distributed simulator report next to their modeled costs.
    """
    resolved, owned = resolve_executor(executor, n_jobs)
    started = time.perf_counter()
    try:
        results = resolved.map(run_task, list(tasks))
    finally:
        if owned:
            resolved.close()
    return results, time.perf_counter() - started


def site_tasks_for(docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                   sites: Optional[Sequence[str]] = None,
                   preferences: Optional[Dict[str, np.ndarray]] = None,
                   tol: float = DEFAULT_TOL,
                   max_iter: int = DEFAULT_MAX_ITER,
                   warm: Optional[WarmStartState] = None,
                   ) -> List[LocalRankTask]:
    """Build the step-3 task list for (a subset of) a DocGraph's sites.

    The local subgraphs are extracted eagerly so the returned tasks carry
    no DocGraph reference; *warm* seeds each task's start vector from the
    previously converged one.
    """
    preferences = preferences or {}
    if sites is None:
        sites = docgraph.sites()
    tasks = []
    for site in sites:
        adjacency, doc_ids = docgraph.local_adjacency(site)
        start = warm.local_start(site, doc_ids) if warm is not None else None
        tasks.append(LocalRankTask(site=site, adjacency=adjacency,
                                   doc_ids=tuple(doc_ids), damping=damping,
                                   preference=preferences.get(site),
                                   tol=tol, max_iter=max_iter, start=start))
    return tasks


def execute_site_tasks(tasks: Sequence[LocalRankTask], *,
                       executor: Optional[Executor] = None,
                       n_jobs: Optional[int] = None,
                       batch_sites: bool = True) -> List[LocalDocRank]:
    """Run step-3 tasks only (no SiteRank), preserving submission order.

    With *batch_sites* (the default) small sites are fused into
    block-diagonal :class:`BatchedSiteTask` payloads before dispatch; the
    returned list is still aligned with *tasks*.  ``batch_sites=False``
    keeps the historical one-task-per-site path (the bitwise reference).
    """
    tasks = list(tasks)
    payload: Sequence[RankTask] = (batch_site_tasks(tasks) if batch_sites
                                   else tasks)
    results, _seconds = execute_tasks(payload, executor=executor,
                                      n_jobs=n_jobs)
    if not batch_sites:
        return results
    by_site = collect_site_results(payload, results)
    return [by_site[task.site] for task in tasks]


def collect_site_results(payload: Sequence["RankTask"],
                         results: Sequence) -> Dict[str, LocalDocRank]:
    """Key a mixed fused/dedicated batch's results back by site."""
    by_site: Dict[str, LocalDocRank] = {}
    for task, result in zip(payload, results):
        if isinstance(task, BatchedSiteTask):
            for rank in result:
                by_site[rank.site] = rank
        else:
            by_site[task.site] = result
    return by_site


@dataclass
class PlanExecution:
    """Everything one :meth:`RankingPlan.execute` run produced.

    Attributes
    ----------
    local:
        Per-site local DocRanks, keyed by site, in plan (site) order.
    siterank:
        The SiteRank computed at step 4.
    wall_seconds:
        Measured wall-clock of the concurrent step-3/step-4 batch.
    executor_name:
        Backend that executed the batch (``"serial"``/``"threaded"``/…).
    n_tasks:
        Number of task payloads actually dispatched — with site batching
        (the default) fused :class:`BatchedSiteTask` payloads count once,
        so this is typically far below ``n_sites + 1``.
    """

    local: Dict[str, LocalDocRank]
    siterank: SiteRankResult
    wall_seconds: float
    executor_name: str
    n_tasks: int

    @property
    def total_iterations(self) -> int:
        """Power iterations summed over every task of the batch."""
        return self.siterank.iterations + sum(
            rank.iterations for rank in self.local.values())


class RankingPlan:
    """The layered method's step-3/4/5 dependency graph over one DocGraph.

    Construction performs the cheap serial steps (step 2's SiteGraph
    aggregation and the per-site subgraph extraction); :meth:`execute`
    dispatches the concurrent steps through an executor and returns at the
    step-5 barrier.  The plan itself is immutable once built, so one plan
    can be executed on several backends — the determinism-guard tests do
    exactly that and require bitwise-identical results.
    """

    def __init__(self, sitegraph: SiteGraph,
                 site_tasks: Sequence[LocalRankTask],
                 siterank_task: SiteRankTask, *,
                 batch_sites: bool = True) -> None:
        task_sites = [task.site for task in site_tasks]
        if sorted(task_sites) != sorted(sitegraph.sites):
            raise ValidationError(
                "site tasks must cover exactly the SiteGraph's sites")
        self.sitegraph = sitegraph
        self.site_tasks = list(site_tasks)
        self.siterank_task = siterank_task
        #: Whether execute() fuses small sites into block-diagonal batches
        #: (:func:`batch_site_tasks`); ``False`` is the per-site opt-out.
        self.batch_sites = bool(batch_sites)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_docgraph(cls, docgraph: DocGraph,
                      damping: float = DEFAULT_DAMPING, *,
                      site_damping: Optional[float] = None,
                      site_preference: Optional[np.ndarray] = None,
                      document_preferences: Optional[Dict[str, np.ndarray]] = None,
                      include_site_self_links: bool = False,
                      tol: float = DEFAULT_TOL,
                      max_iter: int = DEFAULT_MAX_ITER,
                      warm: Optional[WarmStartState] = None,
                      batch_sites: bool = True) -> "RankingPlan":
        """Build the plan for a DocGraph (steps 1–2 happen here, serially)."""
        if docgraph.n_documents == 0:
            raise GraphStructureError("cannot plan over an empty DocGraph")
        if site_damping is None:
            site_damping = damping
        with obs.span(obs.PHASE_PLAN_BUILD):
            sitegraph = aggregate_sitegraph(
                docgraph, include_self_links=include_site_self_links)
            tasks = site_tasks_for(docgraph, damping,
                                   preferences=document_preferences,
                                   tol=tol, max_iter=max_iter, warm=warm)
            site_start = (warm.siterank_start(sitegraph.sites)
                          if warm is not None else None)
            siterank_task = SiteRankTask(sitegraph=sitegraph,
                                         damping=site_damping,
                                         preference=site_preference, tol=tol,
                                         max_iter=max_iter, start=site_start)
        return cls(sitegraph, tasks, siterank_task, batch_sites=batch_sites)

    # ------------------------------------------------------------------ #
    @property
    def n_sites(self) -> int:
        """Number of step-3 tasks."""
        return len(self.site_tasks)

    @property
    def n_tasks(self) -> int:
        """Total tasks of the concurrent batch (sites + the SiteRank)."""
        return len(self.site_tasks) + 1

    def task_for(self, site: str) -> LocalRankTask:
        """The step-3 task of one site."""
        for task in self.site_tasks:
            if task.site == site:
                return task
        raise ValidationError(f"plan has no task for site {site!r}")

    def partition(self, assignment: Dict[str, Sequence[str]]
                  ) -> Dict[str, List[LocalRankTask]]:
        """Split the step-3 tasks along a peer → sites *assignment*.

        The scheduling hook of the distributed deployments: the cluster
        coordinator derives each peer's work queue from the very same plan
        the centralized pipeline executes, so a live round computes the
        same task set (same subgraphs, same solver parameters) as the
        serial reference — the precondition for the bitwise-equality
        checks in benchmark E18.  The assignment must cover every site of
        the plan exactly once.
        """
        task_of_site = {task.site: task for task in self.site_tasks}
        partitioned: Dict[str, List[LocalRankTask]] = {}
        seen: Dict[str, str] = {}
        for peer, sites in assignment.items():
            queue = []
            for site in sites:
                if site in seen:
                    raise ValidationError(
                        f"site {site!r} assigned to both {seen[site]!r} "
                        f"and {peer!r}")
                if site not in task_of_site:
                    raise ValidationError(
                        f"assignment references unknown site {site!r}")
                seen[site] = peer
                queue.append(task_of_site[site])
            partitioned[peer] = queue
        missing = set(task_of_site) - set(seen)
        if missing:
            raise ValidationError(
                f"assignment leaves {len(missing)} site(s) unowned "
                f"(e.g. {sorted(missing)[0]!r})")
        return partitioned

    def with_warm_state(self, warm: WarmStartState) -> "RankingPlan":
        """A copy of this plan re-seeded from *warm* (tasks otherwise equal)."""
        tasks = [replace(task,
                         start=warm.local_start(task.site, task.doc_ids))
                 for task in self.site_tasks]
        siterank_task = replace(
            self.siterank_task,
            start=warm.siterank_start(self.sitegraph.sites))
        return RankingPlan(self.sitegraph, tasks, siterank_task,
                           batch_sites=self.batch_sites)

    # ------------------------------------------------------------------ #
    def execute(self, *, executor: Optional[Executor] = None,
                n_jobs: Optional[int] = None,
                warm: Optional[WarmStartState] = None) -> PlanExecution:
        """Run steps 3 and 4 concurrently; return at the step-5 barrier.

        The SiteRank task is submitted *first* so that on parallel
        backends the single site-level computation overlaps the per-site
        work instead of trailing it.  Results are keyed back to their
        tasks by position, so scheduling order never affects the output.
        When the plan batches sites (the default), small sites are fused
        into block-diagonal :class:`BatchedSiteTask` payloads at dispatch
        time and their results spliced back per site.

        When *warm* is given, the execution also records every converged
        vector back into it, making consecutive executions resume from
        each other.
        """
        plan = self if warm is None else self.with_warm_state(warm)
        resolved, owned = resolve_executor(executor, n_jobs)
        site_payload: List[RankTask] = (
            batch_site_tasks(plan.site_tasks) if plan.batch_sites
            else list(plan.site_tasks))
        batch: List[RankTask] = [plan.siterank_task, *site_payload]
        obs.inc("plan_executions_total", executor=resolved.name)
        obs.observe("plan_batch_tasks", float(len(batch)),
                    executor=resolved.name)
        started = time.perf_counter()
        try:
            with obs.span(obs.PHASE_PLAN_EXECUTE):
                results = resolved.map(run_task, batch)
        finally:
            if owned:
                resolved.close()
        wall_seconds = time.perf_counter() - started
        site_result: SiteRankResult = results[0]
        by_site = collect_site_results(site_payload, results[1:])
        local = {task.site: by_site[task.site] for task in plan.site_tasks}
        if warm is not None:
            for site, rank in local.items():
                warm.record_local(site, rank.doc_ids, rank.scores)
            warm.record_siterank(site_result.sites, site_result.scores)
        return PlanExecution(local=local, siterank=site_result,
                             wall_seconds=wall_seconds,
                             executor_name=resolved.name,
                             n_tasks=len(batch))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankingPlan(n_sites={self.n_sites})"
