"""Measured calibration of the engine's static performance cut-offs.

Three numbers steer the package's hot paths, and all three used to be
hard-coded guesses:

* the **dense cut-off** — below how many documents
  :func:`repro.web.docrank.solve_local_docrank` (and
  :func:`repro.web.siterank.siterank`) materialise the dense Google matrix
  instead of running the matrix-free sparse iteration (historically 2000);
* the **serial / process flop thresholds** — where the adaptive backend
  selection (:mod:`repro.engine.adaptive`) moves a batch from the serial
  reference backend to a thread pool, and from threads to worker
  processes;
* their **batched** counterparts — the same cut-offs for batches whose
  work rides fused :class:`~repro.engine.plan.BatchedSiteTask` payloads,
  which amortise the per-site interpreter overhead that made pools
  attractive in the first place.

This module measures those crossovers on the current hardware and captures
them in a :class:`CalibrationProfile` — a small JSON-serialisable value the
rest of the engine consults through :func:`dense_cutoff` /
:func:`flop_thresholds`.  Profiles are produced by :func:`calibrate` (the
``repro calibrate`` CLI command writes one), activated in-process with
:func:`activate_profile`, or picked up automatically from a file named by
the ``REPRO_CALIBRATION`` environment variable.  Without an active profile
every consumer keeps the historical defaults, so calibration is strictly
opt-in and never changes results — only which backend/kernel produces
them.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ValidationError

#: Historical dense-vs-sparse cut-off (documents) of the local solvers.
DEFAULT_DENSE_CUTOFF = 2000


@dataclass(frozen=True)
class CalibrationProfile:
    """Measured performance cut-offs for the current hardware.

    All fields are plain scalars so the profile serialises losslessly to
    JSON; ``details`` carries the raw measurement rows for auditability
    (the calibration benchmark tables are regenerated from them).
    """

    dense_cutoff: int = DEFAULT_DENSE_CUTOFF
    serial_flops_threshold: float = 2e7
    process_flops_threshold: float = 1.5e8
    batched_serial_flops_threshold: float = 2e8
    batched_process_flops_threshold: float = 1.5e9
    cpu_count: int = 1
    machine: str = ""
    measured_at: str = ""
    details: Dict[str, List[Dict]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dense_cutoff < 0:
            raise ValidationError("dense_cutoff must be non-negative")
        for name in ("serial_flops_threshold", "process_flops_threshold",
                     "batched_serial_flops_threshold",
                     "batched_process_flops_threshold"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.serial_flops_threshold > self.process_flops_threshold:
            raise ValidationError(
                "serial_flops_threshold must not exceed "
                "process_flops_threshold")
        if (self.batched_serial_flops_threshold
                > self.batched_process_flops_threshold):
            raise ValidationError(
                "batched_serial_flops_threshold must not exceed "
                "batched_process_flops_threshold")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """The profile as a JSON-ready mapping."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Dict) -> "CalibrationProfile":
        """Build (and validate) a profile from a plain mapping."""
        if not isinstance(mapping, dict):
            raise ValidationError(
                f"profile must be a mapping, got {type(mapping).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValidationError(
                f"unknown profile key{'s' if len(unknown) > 1 else ''}: "
                f"{', '.join(unknown)}")
        return cls(**mapping)

    def save(self, path) -> None:
        """Write the profile as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "CalibrationProfile":
        """Read and validate a JSON profile."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# --------------------------------------------------------------------- #
# Active profile (process-wide, opt-in)
# --------------------------------------------------------------------- #

_ACTIVE: Optional[CalibrationProfile] = None
_ENV_CHECKED = False

#: Environment variable naming a profile file to auto-activate.
PROFILE_ENV_VAR = "REPRO_CALIBRATION"


def activate_profile(profile: CalibrationProfile) -> None:
    """Make *profile* the process-wide calibration the engine consults."""
    global _ACTIVE, _ENV_CHECKED
    if not isinstance(profile, CalibrationProfile):
        raise ValidationError(
            f"expected a CalibrationProfile, got {type(profile).__name__}")
    _ACTIVE = profile
    _ENV_CHECKED = True


def deactivate_profile() -> None:
    """Drop the active profile; every cut-off reverts to its default."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = True


def active_profile() -> Optional[CalibrationProfile]:
    """The calibration in effect (``None`` = historical defaults).

    On first call, a profile file named by the ``REPRO_CALIBRATION``
    environment variable is loaded automatically, so deployments can
    calibrate once and point every process at the result.
    """
    global _ACTIVE, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(PROFILE_ENV_VAR, "")
        if path:
            _ACTIVE = CalibrationProfile.load(path)
    return _ACTIVE


def dense_cutoff() -> int:
    """Documents below which the local solvers use the dense kernel."""
    profile = active_profile()
    return DEFAULT_DENSE_CUTOFF if profile is None else profile.dense_cutoff


def flop_thresholds() -> Tuple[float, float]:
    """The adaptive backend's ``(serial, process)`` flop cut-offs."""
    profile = active_profile()
    if profile is None:
        from .adaptive import PROCESS_FLOPS_THRESHOLD, SERIAL_FLOPS_THRESHOLD

        return SERIAL_FLOPS_THRESHOLD, PROCESS_FLOPS_THRESHOLD
    return profile.serial_flops_threshold, profile.process_flops_threshold


def batched_flop_thresholds() -> Tuple[float, float]:
    """The ``(serial, process)`` cut-offs for fused batched-site batches."""
    profile = active_profile()
    if profile is None:
        from .adaptive import (
            BATCHED_PROCESS_FLOPS_THRESHOLD,
            BATCHED_SERIAL_FLOPS_THRESHOLD,
        )

        return (BATCHED_SERIAL_FLOPS_THRESHOLD,
                BATCHED_PROCESS_FLOPS_THRESHOLD)
    return (profile.batched_serial_flops_threshold,
            profile.batched_process_flops_threshold)


# --------------------------------------------------------------------- #
# Crossover arithmetic (pure, unit-testable)
# --------------------------------------------------------------------- #

def crossover_point(rows: Sequence[Dict], x_key: str, baseline_key: str,
                    candidate_key: str, *, default: float) -> float:
    """The x at which *candidate* starts beating *baseline*.

    *rows* are measurement dicts sorted by ``x_key``; the crossover is the
    geometric mean of the last x where the baseline won and the first x
    where the candidate won (and stayed winning).  When the candidate never
    wins, *default* is returned scaled past the measured range (four times
    the largest x — "did not pay off in range; assume it does eventually");
    when it always wins, the smallest measured x is returned.
    """
    if not rows:
        return default
    wins = [bool(row[candidate_key] < row[baseline_key]) for row in rows]
    # First index from which the candidate wins every remaining row — a
    # single noisy win below the true crossover must not drag it down.
    first_stable = None
    for index in range(len(wins)):
        if all(wins[index:]):
            first_stable = index
            break
    if first_stable is None:
        return max(default, 4.0 * float(rows[-1][x_key]))
    if first_stable == 0:
        return float(rows[0][x_key])
    below = float(rows[first_stable - 1][x_key])
    above = float(rows[first_stable][x_key])
    return math.sqrt(below * above)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of *repeats* runs of ``fn()`` (noise floor)."""
    best = math.inf
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# --------------------------------------------------------------------- #
# Measurements
# --------------------------------------------------------------------- #

def measure_dense_sparse_cutoff(
        sizes: Sequence[int] = (128, 256, 512, 1024, 2048, 4096), *,
        density: float = 0.005, damping: float = 0.85,
        tol: float = 1e-8, repeats: int = 3,
        seed: int = 7) -> Tuple[int, List[Dict]]:
    """Time the dense vs the matrix-free PageRank kernel per graph size.

    Random sparse adjacencies (Erdős–Rényi at *density*, plus a ring so no
    graph degenerates) are solved with both kernels; the returned cut-off
    is the crossover size below which the dense path wins.
    """
    import numpy as np
    import scipy.sparse as sp

    from ..pagerank.pagerank import pagerank

    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for n in sorted(sizes):
        random = sp.random(n, n, density=density, random_state=rng,
                           format="csr")
        ring = sp.csr_matrix(
            (np.ones(n), (np.arange(n), (np.arange(n) + 1) % n)),
            shape=(n, n))
        adjacency = (random + ring).tocsr()
        dense_seconds = _best_of(
            lambda: pagerank(adjacency, damping, method="dense", tol=tol,
                             record_residuals=False), repeats)
        sparse_seconds = _best_of(
            lambda: pagerank(adjacency, damping, method="sparse", tol=tol,
                             record_residuals=False), repeats)
        rows.append({"n": int(n), "nnz": int(adjacency.nnz),
                     "dense_seconds": round(dense_seconds, 6),
                     "sparse_seconds": round(sparse_seconds, 6)})
    cutoff = crossover_point(rows, "n", "dense_seconds", "sparse_seconds",
                             default=float(DEFAULT_DENSE_CUTOFF))
    return int(round(cutoff)), rows


def measure_backend_thresholds(
        web_sizes: Sequence[int] = (1000, 4000, 16000, 64000), *,
        sites_per_1000_docs: int = 25, n_jobs: Optional[int] = None,
        seed: int = 23) -> Tuple[Dict[str, float], List[Dict]]:
    """Time the engine backends over growing site-task batches.

    For each web size a synthetic hierarchical web is generated and its
    step-3 batch executed through the serial, threaded and process
    backends — per-site tasks *and* the fused batched form — with pools
    warmed outside the timed region.  Returns the four crossover
    thresholds (in the cost model's flop units) plus the raw rows.
    """
    from ..graphgen import generate_synthetic_web
    from .adaptive import (
        PROCESS_FLOPS_THRESHOLD,
        SERIAL_FLOPS_THRESHOLD,
        batch_flops,
    )
    from .executor import default_n_jobs, make_executor
    from .plan import batch_site_tasks, execute_tasks, site_tasks_for

    if n_jobs is not None and n_jobs < 1:
        raise ValidationError("n_jobs must be at least 1")
    workers = n_jobs if n_jobs is not None else default_n_jobs()
    rows: List[Dict] = []
    for size in sorted(web_sizes):
        graph = generate_synthetic_web(
            n_sites=max(4, size * sites_per_1000_docs // 1000),
            n_documents=size, seed=seed)
        tasks = site_tasks_for(graph)
        batched = batch_site_tasks(tasks)
        row: Dict = {"n_documents": int(size), "n_sites": len(tasks),
                     "flops": float(batch_flops(tasks))}
        # Each payload kind is timed on every backend it could actually
        # run on: with batch_sites=True (the default) a pool receives the
        # *fused* payload, so the batched thresholds must be derived from
        # pool timings of that payload, not of the per-site one.
        for label, payload in (("serial", tasks),
                               ("batched_serial", batched)):
            executor = make_executor("serial")
            _results, seconds = execute_tasks(payload, executor=executor)
            row[f"{label}_seconds"] = round(seconds, 6)
        for backend in ("threaded", "process"):
            with make_executor(backend, workers) as executor:
                executor.warmup()
                _results, seconds = execute_tasks(tasks, executor=executor)
                row[f"{backend}_seconds"] = round(seconds, 6)
                _results, seconds = execute_tasks(batched, executor=executor)
                row[f"batched_{backend}_seconds"] = round(seconds, 6)
        rows.append(row)

    serial_default, process_default = (SERIAL_FLOPS_THRESHOLD,
                                       PROCESS_FLOPS_THRESHOLD)
    thresholds = {
        "serial_flops_threshold": crossover_point(
            rows, "flops", "serial_seconds", "threaded_seconds",
            default=serial_default),
        "process_flops_threshold": crossover_point(
            rows, "flops", "threaded_seconds", "process_seconds",
            default=process_default),
        # Batched batches compare pools running the *fused* payload
        # against the fused serial kernel: only once threads beat it is a
        # pool worth building, and only once processes beat those threads
        # do they displace them.
        "batched_serial_flops_threshold": crossover_point(
            rows, "flops", "batched_serial_seconds",
            "batched_threaded_seconds", default=10 * serial_default),
        "batched_process_flops_threshold": crossover_point(
            rows, "flops", "batched_threaded_seconds",
            "batched_process_seconds", default=10 * process_default),
    }
    if (thresholds["serial_flops_threshold"]
            > thresholds["process_flops_threshold"]):
        thresholds["process_flops_threshold"] = \
            thresholds["serial_flops_threshold"]
    if (thresholds["batched_serial_flops_threshold"]
            > thresholds["batched_process_flops_threshold"]):
        thresholds["batched_process_flops_threshold"] = \
            thresholds["batched_serial_flops_threshold"]
    return thresholds, rows


def calibrate(*, quick: bool = False, n_jobs: Optional[int] = None,
              seed: int = 7) -> CalibrationProfile:
    """Measure every cut-off and return the resulting profile.

    ``quick=True`` shrinks the measured sizes so the run finishes in a few
    seconds (used by CI smoke and the tests); the full run takes a couple
    of minutes and is what ``repro calibrate`` executes by default.
    """
    # Fail fast: a bad worker count must not discard a completed (and
    # potentially minutes-long) dense-vs-sparse sweep.
    if n_jobs is not None and n_jobs < 1:
        raise ValidationError("n_jobs must be at least 1")
    if quick:
        dense_sizes: Sequence[int] = (64, 128, 256, 512)
        web_sizes: Sequence[int] = (500, 2000)
        repeats = 1
    else:
        dense_sizes = (128, 256, 512, 1024, 2048, 4096)
        web_sizes = (1000, 4000, 16000, 64000)
        repeats = 3
    cutoff, dense_rows = measure_dense_sparse_cutoff(
        dense_sizes, repeats=repeats, seed=seed)
    thresholds, backend_rows = measure_backend_thresholds(
        web_sizes, n_jobs=n_jobs, seed=seed)
    return CalibrationProfile(
        dense_cutoff=cutoff,
        cpu_count=os.cpu_count() or 1,
        machine=f"{platform.system()}-{platform.machine()}",
        measured_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        details={"dense_vs_sparse": dense_rows, "backends": backend_rows},
        **thresholds)


__all__ = [
    "CalibrationProfile",
    "DEFAULT_DENSE_CUTOFF",
    "PROFILE_ENV_VAR",
    "activate_profile",
    "active_profile",
    "batched_flop_thresholds",
    "calibrate",
    "crossover_point",
    "deactivate_profile",
    "dense_cutoff",
    "flop_thresholds",
    "measure_backend_thresholds",
    "measure_dense_sparse_cutoff",
]
