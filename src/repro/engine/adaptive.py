"""Adaptive backend selection: pick an executor from the plan's cost model.

``n_jobs=1`` vs ``n_jobs=8`` used to be the caller's problem; with
``n_jobs="auto"`` the engine prices the batch it is about to run — the same
``2·nnz + 5·n`` per-iteration flop convention the distributed cost model
uses (:mod:`repro.distributed.cost`) — and picks the cheapest backend that
can win:

* tiny batches stay **serial**: any pool's dispatch overhead exceeds the
  work itself;
* medium batches go **threaded**: numpy/scipy release the GIL during the
  matrix products, and threads avoid pickling the adjacency matrices;
* large batches go to a **process** pool: many independent power-method
  runs amortise the worker spawn and sidestep the GIL entirely.

Expected iteration counts are estimated from the damping factor (the
asymptotic convergence rate of the damped power method is ``damping`` per
iteration), capped by each task's ``max_iter`` budget, so the estimate
needs nothing but the task objects themselves.  Selection never affects
results — every backend is bitwise-deterministic — only wall-clock.
"""

from __future__ import annotations

import math
from collections import deque
from time import perf_counter
from typing import Optional, Sequence

from .. import obs
from ..exceptions import ValidationError
from .executor import Executor, default_n_jobs, make_executor

def power_method_flops(n: int, nnz: int, iterations: int) -> float:
    """Estimated flops of an ``iterations``-step power method run.

    The single source of the package's flop convention (a sparse
    matrix-vector product costs ``2·nnz``; teleportation, dangling
    corrections and normalisation cost ``~5·n`` per iteration), shared by
    the adaptive backend selection here and the distributed cost model
    (:mod:`repro.distributed.cost`).
    """
    if n < 0 or nnz < 0 or iterations < 0:
        raise ValidationError("n, nnz and iterations must be non-negative")
    return float(iterations) * (2.0 * nnz + 5.0 * n)


#: Estimated flops below which pool dispatch costs more than the batch.
SERIAL_FLOPS_THRESHOLD = 2e7

#: Estimated flops above which worker-process spawn pays off.
#:
#: Re-priced for the zero-copy arena transport (:mod:`repro.engine.arena`):
#: the process backend no longer pays a per-nnz pickle penalty to ship each
#: site's adjacency — workers attach to the shared segment instead — so its
#: remaining fixed costs (worker spawn, per-task dispatch) amortise roughly
#: 3x earlier than under the 1.2 ship-by-value transport (5e8).
PROCESS_FLOPS_THRESHOLD = 1.5e8

#: Serial cut-off for batches dominated by fused
#: :class:`~repro.engine.plan.BatchedSiteTask` payloads.  What made pools
#: attractive at 2e7 flops was not the linear algebra but the thousands of
#: Python-level per-site solver loops a pool could overlap; the fused
#: block-diagonal kernel (:mod:`repro.linalg.block_solver`) removes that
#: interpreter overhead entirely, so the serial backend stays the cheapest
#: choice roughly an order of magnitude longer.
BATCHED_SERIAL_FLOPS_THRESHOLD = 2e8

#: Process cut-off for fused batches.  A batched batch contains only a
#: handful of large tasks, so a process pool has little to overlap, pays
#: the worker spawn, and its per-task wins are bounded by the (few) fused
#: SpMV streams — threads, which share the packed CSR without any
#: transport at all, displace processes for most small-site workloads.
BATCHED_PROCESS_FLOPS_THRESHOLD = 1.5e9


def expected_iterations(damping: float, tol: float, max_iter: int) -> int:
    """Estimated power iterations to reach *tol* at convergence rate *damping*.

    The damped power method contracts the error by a factor of ``damping``
    per iteration, so ``damping**k <= tol`` gives the classical
    ``k = log(tol) / log(damping)`` estimate (capped by the budget).
    """
    if not 0.0 < damping < 1.0 or not 0.0 < tol < 1.0:
        return max(1, max_iter)
    estimate = int(math.ceil(math.log(tol) / math.log(damping)))
    return max(1, min(estimate, max_iter))


def task_flops(task) -> float:
    """Estimated flops of one engine task (local DocRank or SiteRank).

    Uses the shared per-iteration convention ``2·nnz + 5·n`` times the
    expected iteration count.  Works for any object exposing either
    ``(nnz, n_documents)`` (:class:`~repro.engine.plan.LocalRankTask`) or a
    ``sitegraph`` (:class:`~repro.engine.plan.SiteRankTask`); payloads the
    model knows nothing about are priced at zero, so a batch of them falls
    back to the serial backend.
    """
    sitegraph = getattr(task, "sitegraph", None)
    if sitegraph is not None:
        n = sitegraph.n_sites
        nnz = int(sitegraph.adjacency.nnz)
    elif hasattr(task, "nnz") and hasattr(task, "n_documents"):
        n = task.n_documents
        nnz = task.nnz
    else:
        return 0.0
    iterations = expected_iterations(task.damping, task.tol, task.max_iter)
    return power_method_flops(n, nnz, iterations)


def batch_flops(tasks: Sequence) -> float:
    """Estimated flops of a whole batch of engine tasks."""
    return sum(task_flops(task) for task in tasks)


def _batched_fraction(tasks: Sequence, total: float) -> float:
    """Share of a batch's flops carried by fused batched-site payloads."""
    if total <= 0.0:
        return 0.0
    fused = sum(task_flops(task) for task in tasks
                if getattr(task, "is_fused_batch", False))
    return fused / total


def select_backend(tasks: Sequence, *,
                   serial_threshold: Optional[float] = None,
                   process_threshold: Optional[float] = None) -> str:
    """Choose ``"serial"`` / ``"threaded"`` / ``"process"`` for a batch.

    A batch of fewer than two tasks is always serial — there is nothing to
    overlap — regardless of its size.  Batches whose flops are carried
    mostly by fused :class:`~repro.engine.plan.BatchedSiteTask` payloads
    are priced against the *batched* cut-offs (the fused kernel already
    amortises the per-site overhead a pool would have hidden), which
    displaces the process backend for most small-site workloads.  Explicit
    thresholds win; otherwise the active
    :class:`~repro.engine.calibrate.CalibrationProfile` (when one is
    loaded) supplies measured values, falling back to the module
    constants.
    """
    if len(tasks) < 2:
        return "serial"
    cost = batch_flops(tasks)
    if serial_threshold is None or process_threshold is None:
        from .calibrate import batched_flop_thresholds, flop_thresholds

        if _batched_fraction(tasks, cost) >= 0.5:
            default_serial, default_process = batched_flop_thresholds()
        else:
            default_serial, default_process = flop_thresholds()
        if serial_threshold is None:
            serial_threshold = default_serial
        if process_threshold is None:
            process_threshold = default_process
    if cost < serial_threshold:
        return "serial"
    if cost < process_threshold:
        return "threaded"
    return "process"


def auto_executor(tasks: Sequence,
                  n_jobs: Optional[int] = None) -> Executor:
    """Build the executor :func:`select_backend` picks for a batch.

    *n_jobs* bounds the worker count of a pooled backend; when omitted one
    worker per CPU is used, never more than there are tasks.
    """
    backend = select_backend(tasks)
    if backend == "serial":
        return make_executor("serial")
    workers = n_jobs if n_jobs is not None else default_n_jobs()
    workers = max(1, min(workers, len(tasks)))
    return make_executor(backend, workers)


class AutoExecutor:
    """An :class:`~repro.engine.executor.Executor` that re-selects per batch.

    Every ``map`` call prices the batch it receives and delegates to the
    backend :func:`select_backend` picks.  This is what ``n_jobs="auto"``
    resolves to, so one executor object adapts across heterogeneous
    batches — a full plan, an incremental refresh of two sites — each at
    its own scale.  Only batches of engine task objects are priced;
    payloads the cost model does not recognise (e.g. the serving layer's
    shard tuples) fall back to the serial delegate.

    Delegate pools are created lazily, one per backend kind, and *reused*
    across batches: a long-lived caller (incremental ranker, serving
    layer) must not pay worker-spawn cost on every refresh.  :meth:`close`
    shuts down whatever pools were created.
    """

    name = "auto"

    def __init__(self, n_jobs: Optional[int] = None) -> None:
        self.n_jobs = n_jobs if n_jobs is not None else default_n_jobs()
        #: Backend the most recent batch actually ran on (introspection).
        self.last_backend: Optional[str] = None
        #: Dispatch accounting mirrored from the delegate that ran the
        #: most recent batch (see repro.engine.executor._BaseExecutor).
        self.last_transport = "in-process"
        self.last_dispatch_bytes = 0
        self.total_dispatch_bytes = 0
        #: Decision provenance: one record per batch (backend chosen, the
        #: priced flop estimate, and the measured wall) so the calibration
        #: model can be audited.  Bounded; surfaced through
        #: ``RankingResult.provenance["auto_decisions"]``.
        self.decisions: deque = deque(maxlen=64)
        self._delegates: dict = {}
        self._closed = False

    def _delegate(self, backend: str) -> Executor:
        # Fail fast after close(): recreating a delegate would leak a pool
        # nobody is left to shut down.
        if self._closed:
            raise ValidationError("executor is closed")
        # Pools are sized at n_jobs even when the current batch is smaller:
        # concurrent.futures spawns workers lazily as tasks are submitted,
        # so a small batch on a wide pool only starts the workers it uses,
        # while later, larger batches can still fan all the way out.
        delegate = self._delegates.get(backend)
        if delegate is None:
            delegate = (make_executor(backend) if backend == "serial"
                        else make_executor(backend, self.n_jobs))
            self._delegates[backend] = delegate
        return delegate

    def map(self, fn, items):
        if self._closed:
            raise ValidationError("executor is closed")
        items = list(items)
        backend = select_backend(items)
        self.last_backend = backend
        delegate = self._delegate(backend)
        priced = batch_flops(items)
        started = perf_counter()
        results = delegate.map(fn, items)
        wall = perf_counter() - started
        self.last_transport = getattr(delegate, "last_transport",
                                      "in-process")
        self.last_dispatch_bytes = getattr(delegate, "last_dispatch_bytes", 0)
        self.total_dispatch_bytes += self.last_dispatch_bytes
        self.decisions.append({"backend": backend, "priced_flops": priced,
                               "n_tasks": len(items),
                               "wall_seconds": wall})
        obs.inc("engine_auto_decisions_total", backend=backend)
        obs.observe("engine_auto_batch_flops", priced, backend=backend)
        obs.observe("engine_auto_batch_seconds", wall, backend=backend)
        return results

    def warmup(self, tasks: Optional[Sequence] = None) -> None:
        """Pre-spawn the delegate a batch will use.

        With *tasks* (the batch about to run), only the backend the cost
        model selects for it is started — a serial-priced batch spawns
        nothing.  Without a batch there is nothing to predict, so this is
        a no-op and the delegates keep spawning lazily at first use.
        """
        if tasks is None:
            return
        backend = select_backend(list(tasks))
        if backend != "serial":
            self._delegate(backend).warmup()

    def close(self) -> None:
        self._closed = True
        for delegate in self._delegates.values():
            delegate.close()
        self._delegates.clear()

    def __enter__(self) -> "AutoExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AutoExecutor(n_jobs={self.n_jobs})"
