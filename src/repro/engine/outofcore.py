"""Out-of-core execution of the layered method over an mmap'd DiskGraph.

The layered decomposition is what makes ranking a web larger than RAM
possible at all: step 3 touches one site's local adjacency at a time and
step 4 only the (tiny) SiteGraph, so no step ever needs the global link
matrix resident.  This module drives those steps against a
:class:`repro.io.diskgraph.DiskGraph` — every adjacency block is hydrated
from the store with a *fresh, short-lived* ``np.memmap`` and dropped as
soon as its unit is solved, so the pages are unmapped again and peak RSS
is bounded by the largest solve unit, not the web.

Bitwise parity with the in-memory pipeline is a hard requirement (the
out-of-core path must be an *optimisation*, not a different ranking), so
the solve schedule replicates :func:`repro.engine.plan.batch_site_tasks`
exactly — same fused chunks, same trailing-singleton rule, same dedicated
tasks — and the solved blocks run through the verbatim
:class:`~repro.engine.plan.BatchedSiteTask` / ``LocalRankTask`` code.
Results stream straight into a :class:`repro.io.artifacts.GenerationWriter`
in site-major order; its ``finalize`` performs the same single-sum
normalisation :func:`repro._validation.normalize_distribution` applies to
the concatenated in-memory vector.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ValidationError
from ..io.artifacts import ArtifactStore, RankedGeneration
from ..io.diskgraph import DiskGraph
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..web.siterank import SiteRankResult, siterank
from .plan import (
    BATCH_SITE_MAX_DOCS,
    BATCH_TARGET_DOCS,
    BatchedSiteTask,
    LocalRankTask,
)
from .warm import WarmStartState, align_warm_start


@dataclass(frozen=True)
class SolveUnit:
    """One schedulable unit of step-3 work: a fused chunk or one big site."""

    kind: str  #: ``"fused"`` (block-diagonal batch) or ``"dedicated"``
    sites: Tuple[str, ...]


def plan_solve_units(sites: Sequence[str], sizes: Mapping[str, int], *,
                     max_docs: int = BATCH_SITE_MAX_DOCS,
                     target_docs: int = BATCH_TARGET_DOCS
                     ) -> List[SolveUnit]:
    """The :func:`~repro.engine.plan.batch_site_tasks` schedule, from sizes only.

    Because the out-of-core tasks all share one parameter set, chunk
    membership depends only on each site's document count — which the
    disk-graph manifest records — so the whole schedule is planned without
    mapping a single adjacency block.  The grouping rules are replicated
    verbatim: sites over *max_docs* get dedicated tasks, small sites fuse
    in site order with a flush whenever a chunk would exceed *target_docs*,
    and only a *trailing* single-site chunk falls back to a dedicated task
    (mid-stream singleton flushes stay fused, exactly as the batcher does).
    """
    if max_docs < 0 or target_docs < 1:
        raise ValidationError(
            "max_docs must be non-negative and target_docs positive")
    fused: List[Tuple[str, ...]] = []
    dedicated: List[str] = []
    chunk: List[str] = []
    chunk_docs = 0
    for site in sites:
        try:
            n_documents = int(sizes[site])
        except KeyError:
            raise ValidationError(f"no size recorded for site {site!r}") \
                from None
        if n_documents > max_docs:
            dedicated.append(site)
            continue
        if chunk and chunk_docs + n_documents > target_docs:
            fused.append(tuple(chunk))
            chunk, chunk_docs = [], 0
        chunk.append(site)
        chunk_docs += n_documents
    if len(chunk) == 1:
        dedicated.append(chunk[0])
    elif chunk:
        fused.append(tuple(chunk))
    return ([SolveUnit("fused", group) for group in fused]
            + [SolveUnit("dedicated", (site,)) for site in dedicated])


class GenerationWarmStart:
    """Warm-start vectors read lazily from a previous ranked generation.

    The artifact store persists every site's converged *local* vector
    (``local_scores.bin``) next to the composed scores, so the next
    out-of-core rank can resume power iterations from it without any
    in-RAM :class:`~repro.engine.warm.WarmStartState` surviving between
    runs — the vectors round-trip through the store.  Alignment semantics
    are exactly :func:`~repro.engine.warm.align_warm_start`, so a warm
    resume from disk is bitwise the in-memory warm resume.
    """

    def __init__(self, generation: RankedGeneration) -> None:
        self._generation = generation
        self._shards = {str(shard["site"]): shard
                        for shard in generation.shards()}

    def local_start(self, site: str,
                    doc_ids: Sequence[int]) -> Optional[np.ndarray]:
        """Start vector for one site's local DocRank (``None`` → cold)."""
        shard = self._shards.get(site)
        if shard is None:
            return None
        offset, count = int(shard["offset"]), int(shard["count"])
        ids = self._generation.map_array("doc_ids")
        vectors = self._generation.map_array("local_scores")
        previous_ids = [int(doc_id) for doc_id in ids[offset:offset + count]]
        previous = np.array(vectors[offset:offset + count], dtype=float)
        return align_warm_start(previous_ids, previous, doc_ids)

    def siterank_start(self, sites: Sequence[str]) -> Optional[np.ndarray]:
        """Start vector for the SiteRank (``None`` → cold start)."""
        block = self._generation.siterank()
        previous_sites = [str(site) for site in block.get("sites", ())]
        scores = np.asarray(block.get("scores", ()), dtype=float)
        if len(previous_sites) != scores.size or not previous_sites:
            return None
        return align_warm_start(previous_sites, scores, list(sites))


@dataclass
class OutOfCoreRanking:
    """What one :func:`rank_outofcore` run produced (scores stay on disk).

    The composed score vector is *not* held here — it lives in the
    published generation's ``scores.bin``; serve it with
    :class:`repro.serving.mmapstore.MmapScoreStore` or compare it against
    an in-memory run via :attr:`generation`'s arrays.
    """

    store: ArtifactStore
    generation: RankedGeneration
    siterank: SiteRankResult
    method: str
    iterations: int

    @property
    def n_documents(self) -> int:
        """Documents ranked."""
        return self.generation.n_documents


def rank_outofcore(graph: DiskGraph,
                   store: Union[ArtifactStore, str, os.PathLike],
                   damping: float = DEFAULT_DAMPING, *,
                   site_damping: Optional[float] = None,
                   site_preference: Optional[np.ndarray] = None,
                   tol: float = DEFAULT_TOL,
                   max_iter: int = DEFAULT_MAX_ITER,
                   warm: Union[WarmStartState, RankedGeneration,
                               GenerationWarmStart, None] = None,
                   max_docs: int = BATCH_SITE_MAX_DOCS,
                   target_docs: int = BATCH_TARGET_DOCS,
                   ) -> OutOfCoreRanking:
    """Rank a DiskGraph in bounded memory, publishing a ranked generation.

    Steps 2 and 4 run in RAM (the SiteGraph is orders of magnitude smaller
    than the web); step 3 streams the solve units of
    :func:`plan_solve_units` through memory one at a time, hydrating each
    site's adjacency from the block file only for the lifetime of its
    unit.  Each solved site is appended to the artifact store immediately
    — held vectors never exceed one chunk's worth plus the units a fused
    chunk straddles — and the finished generation is published with an
    atomic manifest-pointer flip.

    *warm* may be a live :class:`~repro.engine.warm.WarmStartState` (also
    recorded into, like :meth:`RankingPlan.execute`) or a previous
    :class:`~repro.io.artifacts.RankedGeneration` / the store itself
    persisting the vectors between processes.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store, create=True)

    record: Optional[WarmStartState] = None
    if warm is None:
        seed = None
    elif isinstance(warm, WarmStartState):
        seed = record = warm
    elif isinstance(warm, RankedGeneration):
        seed = GenerationWarmStart(warm)
    elif isinstance(warm, GenerationWarmStart):
        seed = warm
    else:
        raise ValidationError(
            "warm must be a WarmStartState, a RankedGeneration or a "
            "GenerationWarmStart")

    if site_damping is None:
        site_damping = damping
    sites = graph.sites()
    sizes = graph.site_sizes()

    # Step 4 — the SiteGraph fits in RAM by construction; its adjacency is
    # still read straight off the block file (dropped right after).
    sitegraph = graph.sitegraph()
    site_start = (seed.siterank_start(sitegraph.sites)
                  if seed is not None else None)
    site_result = siterank(sitegraph, site_damping,
                           preference=site_preference, tol=tol,
                           max_iter=max_iter, start=site_start)
    del sitegraph

    preferences: Dict[str, np.ndarray] = {}
    for site in sites:
        preference = graph.preference(site)
        if preference is not None:
            preferences[site] = preference
    method = ("layered-personalized"
              if site_preference is not None or preferences else "layered")

    unit_of: Dict[str, SolveUnit] = {}
    for unit in plan_solve_units(sites, sizes, max_docs=max_docs,
                                 target_docs=target_docs):
        for site in unit.sites:
            unit_of[site] = unit

    writer = store.create_generation(method=method,
                                     n_documents=graph.n_documents)
    solved: Dict[str, object] = {}
    iterations = site_result.iterations
    try:
        for site in sites:
            if site not in solved:
                unit = unit_of[site]
                tasks = []
                for member in unit.sites:
                    adjacency, member_ids = graph.local_block(member)
                    doc_ids = tuple(int(doc_id) for doc_id in member_ids)
                    start = (seed.local_start(member, list(doc_ids))
                             if seed is not None else None)
                    tasks.append(LocalRankTask(
                        site=member, adjacency=adjacency, doc_ids=doc_ids,
                        damping=damping,
                        preference=preferences.get(member),
                        tol=tol, max_iter=max_iter, start=start))
                if unit.kind == "fused":
                    # Packing copies the blocks into one block-diagonal
                    # CSR; dropping the tasks unmaps the source pages
                    # before the solve runs.
                    batched = BatchedSiteTask.from_tasks(tasks)
                    del tasks
                    for rank in batched.run():
                        solved[rank.site] = rank
                    del batched
                else:
                    rank = tasks[0].run()
                    del tasks
                    solved[rank.site] = rank
            rank = solved.pop(site)
            writer.append_site(site, rank.doc_ids,
                               graph.urls_of_positions(rank.doc_ids),
                               rank.scores, site_result.score_of(site),
                               rank.iterations)
            iterations += rank.iterations
            if record is not None:
                record.record_local(site, rank.doc_ids, rank.scores)
        generation = writer.finalize(
            siterank_sites=site_result.sites,
            siterank_scores=site_result.scores,
            siterank_iterations=site_result.iterations,
            siterank_damping=site_result.damping,
            iterations=iterations)
    except BaseException:
        writer.abort()
        raise
    if record is not None:
        record.record_siterank(site_result.sites, site_result.scores)
    store.publish(generation.name)
    return OutOfCoreRanking(store=store, generation=generation,
                            siterank=site_result, method=method,
                            iterations=iterations)


__all__ = [
    "GenerationWarmStart",
    "OutOfCoreRanking",
    "SolveUnit",
    "plan_solve_units",
    "rank_outofcore",
]
