"""Execution backends of the parallel ranking engine.

The paper's central claim is that the layered decomposition makes the
global ranking *decentralizable*: every site's local DocRank is independent
of every other site's and of the SiteRank (Section 3.2), so step 3 and
step 4 of the layered method are embarrassingly parallel.  An
:class:`Executor` is the package's single abstraction over *how* that
independent work is scheduled:

* :class:`SerialExecutor` — runs tasks in submission order on the calling
  thread; the deterministic reference every other backend must match
  bit-for-bit;
* :class:`ThreadedExecutor` — a thread pool; effective when the work
  releases the GIL (large sparse/dense matrix products) or is I/O bound;
* :class:`ProcessExecutor` — a process pool; sidesteps the GIL entirely
  and is the backend that realises wall-clock speedup for the many small
  per-site power-method runs of a real web.

All backends preserve submission order in their results, so any
composition performed after the barrier (step 5 of the layered method)
is independent of scheduling — the property the determinism-guard tests
pin down.

Executors are context managers; :func:`resolve_executor` turns the
user-facing ``executor=`` / ``n_jobs=`` parameter pair that the compute
layers expose into a concrete backend.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Protocol, Sequence, Tuple, TypeVar, runtime_checkable

from .. import obs
from ..exceptions import ValidationError

_T = TypeVar("_T")
_R = TypeVar("_R")


class _WorkerResult:
    """A task result travelling back with the worker's telemetry delta."""

    def __init__(self, result, delta) -> None:
        self.result = result
        self.delta = delta


class _InstrumentedCall:
    """Wraps the mapped callable with per-task telemetry.

    Records queue wait (time between dispatch and the task starting,
    ``time.monotonic`` is system-wide on Linux so the parent's dispatch
    stamp is comparable inside a worker process) and execute time, both
    labelled by the payload's task type.  With ``capture=True`` (the
    process backend) the wrapper also checkpoints the worker-side registry
    before the task and ships the delta back inside a
    :class:`_WorkerResult`, which the parent merges — process-backend runs
    report the same counters as serial ones.  Picklable by construction:
    plain attributes, module-level class.
    """

    def __init__(self, fn: Callable, dispatched_at: float,
                 capture: bool) -> None:
        self.fn = fn
        self.dispatched_at = dispatched_at
        self.capture = capture

    def __call__(self, item):
        started = time.monotonic()
        mark = obs.registry().checkpoint() if self.capture else None
        result = self.fn(item)
        ended = time.monotonic()
        kind = type(item).__name__
        obs.inc("engine_tasks_total", kind=kind)
        obs.observe("engine_task_queue_wait_seconds",
                    max(0.0, started - self.dispatched_at), kind=kind)
        obs.observe("engine_task_execute_seconds", ended - started,
                    kind=kind)
        if mark is not None:
            return _WorkerResult(result, obs.registry().delta_since(mark))
        return result


def _maybe_instrument(fn: Callable, *, capture: bool) -> Callable:
    """The per-task telemetry wrapper, or *fn* itself when obs is off."""
    if not obs.enabled():
        return fn
    return _InstrumentedCall(fn, time.monotonic(), capture)


def default_n_jobs() -> int:
    """Worker count used when ``n_jobs`` is omitted: one per available CPU."""
    return os.cpu_count() or 1


def normalize_n_jobs(value, *, name: str = "n_jobs"):
    """The single source of truth for what an ``n_jobs`` value may be.

    Returns the value as a positive ``int`` or the string ``"auto"``;
    raises :class:`ValidationError` otherwise.  The CLI (``--jobs``), the
    declarative config (``RankingConfig.n_jobs``) and
    :func:`resolve_executor` all funnel through this so the accepted
    grammar and its error message cannot drift apart.
    """
    if value == "auto":
        return "auto"
    if isinstance(value, int) and not isinstance(value, bool) and value >= 1:
        return value
    raise ValidationError(
        f"{name} must be a positive integer or 'auto', got {value!r}")


@runtime_checkable
class Executor(Protocol):
    """Protocol of an execution backend.

    An executor maps a callable over a batch of independent task payloads
    and returns the results *in submission order*.  ``map`` is a barrier:
    it returns only once every task of the batch has completed, which is
    exactly the synchronisation point step 5 of the layered method needs.
    """

    #: Human-readable backend identifier (``"serial"`` / ``"threaded"`` /
    #: ``"process"``), surfaced in reports and benchmarks.
    name: str

    #: Number of workers the backend schedules onto.
    n_jobs: int

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply *fn* to every item; results align with *items*."""
        ...

    def warmup(self, tasks: Optional[Sequence] = None) -> None:
        """Start any worker pool now instead of lazily at the first map.

        Pool start-up (thread creation, worker process spawn) otherwise
        lands inside the first batch's wall-clock; callers that *measure*
        batches — the benchmarks and the distributed simulator — warm up
        first so timings describe the work, not the pool.  *tasks* (the
        batch about to run) lets adaptive backends warm only the pool
        that batch will actually use; fixed backends ignore it.
        """
        ...

    def close(self) -> None:
        """Release any worker pool; the executor must not be used afterwards."""
        ...


class _BaseExecutor:
    """Shared context-manager plumbing of the concrete executors.

    Every backend also carries *dispatch accounting*: how the most recent
    batch's payloads reached the workers (``last_transport``: ``"in-process"``
    for backends that share the caller's address space, ``"pickle"`` or
    ``"arena"`` for the process pool) and how many bytes that shipment
    serialised (``last_dispatch_bytes`` / cumulative
    ``total_dispatch_bytes``).  Benchmarks, provenance records and the
    distributed simulator's reports all read these attributes.
    """

    name = "base"
    n_jobs = 1

    #: How the most recent batch's payloads reached the workers.
    last_transport = "in-process"
    #: Bytes the most recent batch serialised to dispatch its payloads.
    last_dispatch_bytes = 0
    #: Bytes serialised across every batch this executor dispatched.
    total_dispatch_bytes = 0

    def warmup(self, tasks: Optional[Sequence] = None) -> None:
        pass

    def close(self) -> None:  # pragma: no cover - overridden where non-trivial
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialExecutor(_BaseExecutor):
    """Run every task on the calling thread, in submission order.

    This is the default backend everywhere: it adds no overhead, keeps
    tracebacks trivial, and its output defines the reference results the
    parallel backends are tested against.
    """

    name = "serial"
    n_jobs = 1

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        fn = _maybe_instrument(fn, capture=False)
        return [fn(item) for item in items]


class ThreadedExecutor(_BaseExecutor):
    """Schedule tasks onto a lazily-created thread pool.

    Threads share the interpreter, so speedup depends on the work
    releasing the GIL (numpy/scipy matrix products do for non-trivial
    sizes).  Tasks need not be picklable, which makes this the backend of
    choice for in-process callbacks such as the serving layer's shard
    rebuilds.
    """

    name = "threaded"

    def __init__(self, n_jobs: Optional[int] = None) -> None:
        if n_jobs is not None and n_jobs < 1:
            raise ValidationError("n_jobs must be at least 1")
        self.n_jobs = n_jobs if n_jobs is not None else default_n_jobs()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def warmup(self, tasks: Optional[Sequence] = None) -> None:
        self._ensure_pool()

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        fn = _maybe_instrument(fn, capture=False)
        return list(self._ensure_pool().map(fn, items))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Fail fast after close(): silently recreating the pool would leak
        # threads nobody is left to shut down.
        if self._closed:
            raise ValidationError("executor is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_jobs)
        return self._pool

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(_BaseExecutor):
    """Schedule tasks onto a lazily-created process pool.

    Each worker is a separate interpreter, so the per-site power-method
    runs execute truly concurrently regardless of the GIL.  Task payloads
    and the mapped callable must be picklable — the engine's task types
    (:mod:`repro.engine.plan`) are plain dataclasses over numpy/scipy
    containers for exactly this reason.

    Graph payloads do **not** travel through pickle by default: around
    each batch the executor packs every shareable payload's CSR buffers
    into a :class:`~repro.engine.arena.GraphArena` (one shared-memory
    segment), ships only the tiny :class:`~repro.engine.arena.ArenaRef`
    addresses, and disposes the segment — close *and* unlink — once the
    batch's barrier returns, on success or error.  Workers attach by
    segment name at task-run time, which keeps the transport safe under
    both the ``fork`` and ``spawn`` start methods.  ``use_arena=False``
    restores the ship-by-value pickle transport (the benchmarks measure
    the difference as ``dispatch_bytes``).

    The batch is split into contiguous chunks to amortise per-task
    dispatch overhead; chunking never reorders results.

    Parameters
    ----------
    n_jobs:
        Worker count (one per CPU when omitted).
    use_arena:
        Whether matrix payloads ride the zero-copy shared-memory arena
        (default) or are pickled by value.
    start_method:
        Optional multiprocessing start method (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``) for the worker pool; platform default when
        omitted.
    """

    name = "process"

    def __init__(self, n_jobs: Optional[int] = None, *,
                 use_arena: bool = True,
                 start_method: Optional[str] = None) -> None:
        if n_jobs is not None and n_jobs < 1:
            raise ValidationError("n_jobs must be at least 1")
        self.n_jobs = n_jobs if n_jobs is not None else default_n_jobs()
        self.use_arena = use_arena
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.last_transport = "pickle"
        self.last_dispatch_bytes = 0
        self.total_dispatch_bytes = 0

    def warmup(self, tasks: Optional[Sequence] = None) -> None:
        # Run one trivial round trip so the workers actually exist (the
        # pool object alone spawns processes lazily on first use).
        list(self._ensure_pool().map(abs, [-1]))

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        from .arena import dispatch_bytes, share_batch

        items = list(items)
        if self._closed:
            raise ValidationError("executor is closed")
        if not items:
            return []
        # Pack the batch's graph buffers into one shared-memory segment;
        # the workers receive refs instead of matrices.  The arena lives
        # exactly as long as the batch: the finally below closes and
        # unlinks it even when a task raises.
        if self.use_arena:
            shipped, arena = share_batch(items)
        else:
            shipped, arena = items, None
        self.last_transport = "arena" if arena is not None else "pickle"
        self.last_dispatch_bytes = dispatch_bytes(shipped)
        self.total_dispatch_bytes += self.last_dispatch_bytes
        obs.inc("engine_dispatches_total", transport=self.last_transport)
        obs.inc("engine_dispatch_bytes_total",
                float(self.last_dispatch_bytes),
                transport=self.last_transport)
        obs.observe("engine_dispatch_bytes",
                    float(self.last_dispatch_bytes),
                    transport=self.last_transport)
        wrapped = _maybe_instrument(fn, capture=True)
        chunksize = max(1, len(items) // (4 * self.n_jobs))
        try:
            raw = list(self._ensure_pool().map(wrapped, shipped,
                                               chunksize=chunksize))
        finally:
            if arena is not None:
                arena.dispose()
        if wrapped is fn:
            return raw
        # Merge each worker's telemetry delta, then unwrap its result.
        registry = obs.registry()
        results: List[_R] = []
        for entry in raw:
            if isinstance(entry, _WorkerResult):
                registry.merge(entry.delta)
                results.append(entry.result)
            else:  # worker had telemetry disabled locally
                results.append(entry)
        return results

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Fail fast after close(): silently recreating the pool would leak
        # worker processes nobody is left to shut down.
        if self._closed:
            raise ValidationError("executor is closed")
        if self._pool is None:
            context = (multiprocessing.get_context(self.start_method)
                       if self.start_method is not None else None)
            self._pool = ProcessPoolExecutor(max_workers=self.n_jobs,
                                             mp_context=context)
        return self._pool

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def warmup_for(executor: "Executor", tasks: Sequence) -> None:
    """Warm an executor for a pending batch, tolerating older executors.

    The 1.1 Executor protocol's ``warmup()`` took no arguments; 1.2 added
    the optional batch so adaptive backends warm only the pool the batch
    will use.  Callers that hold an *arbitrary* executor (the distributed
    coordinator accepts user-supplied ones) go through this helper, which
    falls back to the zero-argument spelling for pre-1.2 implementations.
    The spelling is chosen by signature inspection, not by catching
    ``TypeError`` — a ``TypeError`` raised *inside* a warmup body must
    propagate, not silently degrade to a no-warmup retry.
    """
    import inspect

    try:
        accepts_batch = bool(
            inspect.signature(executor.warmup).parameters)
    except (TypeError, ValueError):  # builtins/C callables: assume current
        accepts_batch = True
    if accepts_batch:
        executor.warmup(tasks)
    else:
        executor.warmup()


#: Backend names accepted by :func:`resolve_executor`.
BACKENDS = ("serial", "threaded", "process")


def make_executor(backend: str, n_jobs: Optional[int] = None) -> Executor:
    """Instantiate a backend by name (``"serial"``/``"threaded"``/``"process"``)."""
    if backend == "serial":
        return SerialExecutor()
    if backend == "threaded":
        return ThreadedExecutor(n_jobs)
    if backend == "process":
        return ProcessExecutor(n_jobs)
    raise ValidationError(
        f"unknown executor backend {backend!r}; expected one of {BACKENDS}")


def resolve_executor(executor: Optional[Executor] = None,
                     n_jobs: Optional[int] = None, *,
                     backend: str = "process") -> Tuple[Executor, bool]:
    """Resolve the ``executor=`` / ``n_jobs=`` parameter pair of the compute layers.

    Precedence:

    * an explicit *executor* wins (*n_jobs* must then be omitted);
    * ``n_jobs`` of ``None``/``1`` selects the serial reference backend —
      existing callers that pass neither parameter keep their exact
      behaviour and determinism;
    * ``n_jobs="auto"`` selects the adaptive backend
      (:class:`~repro.engine.adaptive.AutoExecutor`), which prices every
      batch with the plan's cost model and picks serial / threaded /
      process per batch;
    * ``n_jobs > 1`` creates a *backend* executor (process pool by
      default, the backend that beats the GIL for rank computation) owned
      by the caller.

    Returns
    -------
    ``(executor, owned)`` where *owned* tells the caller whether it is
    responsible for closing the executor after use.
    """
    if executor is not None:
        if n_jobs is not None:
            raise ValidationError("pass either executor or n_jobs, not both")
        return executor, False
    if n_jobs is None or n_jobs == 1:
        return SerialExecutor(), True
    n_jobs = normalize_n_jobs(n_jobs)
    if n_jobs == "auto":
        from .adaptive import AutoExecutor
        return AutoExecutor(), True
    return make_executor(backend, n_jobs), True
