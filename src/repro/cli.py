"""Command-line interface: ``python -m repro <command>``.

Sub-commands
------------

``rank``
    Rank a web graph (URL edge list or a generated synthetic web) with any
    registered ranking method and print the top-k documents.  The run can
    be driven entirely by a config file: ``repro rank --config ranking.toml``.

``generate``
    Generate a synthetic web (``campus`` or ``hierarchical``) and write it
    as a lossless DocGraph file (readable by ``rank --format docgraph``).

``compare``
    Rank a graph with both the layered method and flat PageRank and report
    their agreement (Kendall tau, top-k overlap) plus, for generated campus
    webs, the farm contamination of each top list.

``example``
    Print the paper's 12-state worked example (Figure 2 reproduction).

``serve``
    Rank a web graph and expose it over the JSON/HTTP query endpoint
    (:mod:`repro.serving.httpd`).  ``--state PATH`` persists the engine's
    warm-start vectors so a restarted server resumes its power iterations
    from the previous run.

``query``
    Rank a web graph, build the serving stack in-process and answer one or
    more free-text queries with the combined (text + link) ranking.

``config``
    Inspect (``config show``) and validate (``config validate PATH``)
    declarative ranking configs (:class:`repro.api.RankingConfig`, JSON or
    TOML).

``cluster``
    Live distributed deployment (:mod:`repro.cluster`): ``cluster
    coordinator`` runs the round coordinator on a TCP port (with optional
    durable ``--ledger`` for crash-resumable rounds and ``--metrics-port``
    for Prometheus scrapes), ``cluster peer`` runs one ranking peer
    process against it, and ``cluster rank`` is the one-command localhost
    deployment — coordinator in-process plus ``--peers`` forked peer
    processes, reaped on exit.

``stats``
    Rank a graph and print the telemetry snapshot (:mod:`repro.obs`) the
    run produced — solver runs/iterations, per-phase timings, engine task
    and dispatch counters — as a table or (``--prometheus``) in Prometheus
    text exposition format.

Every ranking sub-command is a thin shell over :class:`repro.api.Ranker`:
CLI flags build (or override) a :class:`~repro.api.RankingConfig`, and the
facade does the rest.  Flags given explicitly on the command line win over
values from ``--config``; config-file values win over built-in defaults.

All numeric output is deterministic for a fixed ``--seed``.  The graph
sub-commands accept ``--jobs N`` to run the rank computation on a process
pool of N workers, or ``--jobs auto`` to let the engine pick a backend
from its cost model; the default of 1 keeps the serial reference path and
every backend produces identical scores.  Errors — bad input paths,
malformed graph or config files, invalid parameter values — print one
``error:`` line to stderr and exit with status 2 (argument *syntax* the
parser itself cannot read still produces argparse's usage message, also
with status 2).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from typing import List, Optional

from . import __version__
from .api import Ranker, RankingConfig, available_methods, resolve_method_name
from .cluster import (
    DEFAULT_HEARTBEAT_SECONDS as CLUSTER_HEARTBEAT_SECONDS,
    DEFAULT_ROUND_TIMEOUT as CLUSTER_ROUND_TIMEOUT,
    ClusterCoordinator,
    run_live_cluster,
    run_peer,
)
from .core import all_approaches, example_lmm
from .exceptions import ReproError, ValidationError
from .graphgen import generate_campus_web, generate_synthetic_web
from .io import read_docgraph, read_url_edgelist, write_docgraph
from .linalg.power_iteration import (
    DEFAULT_MAX_ITER as DEFAULT_SOLVER_MAX_ITER,
    DEFAULT_TOL as DEFAULT_SOLVER_TOL,
)
from .ir import synthesize_corpus
from .metrics import kendall_tau, top_k_contamination, top_k_overlap
from .serving import AsyncRankingServer, FrontendConfig, RankingHTTPServer
from .web import DocGraph

#: Exit code of anticipated failures (bad paths, malformed inputs/values).
EXIT_ERROR = 2

#: Parser defaults, also used by the config merge as a fallback when the
#: explicit-flag record is unavailable (handlers invoked outside main()).
#: Derived from RankingConfig so the CLI cannot drift from the library.
_CONFIG_DEFAULTS = RankingConfig()
DEFAULT_DAMPING_ARG = _CONFIG_DEFAULTS.damping
DEFAULT_JOBS_ARG = 1
DEFAULT_CACHE_SIZE_ARG = _CONFIG_DEFAULTS.cache_size
DEFAULT_RULE_ARG = _CONFIG_DEFAULTS.rule
DEFAULT_WEIGHT_ARG = _CONFIG_DEFAULTS.weight

#: Option strings whose presence on the command line makes them override a
#: --config file (mapped to their argparse dest names).
_OVERRIDE_FLAGS = {
    "--method": "method",
    "--damping": "damping",
    "--jobs": "jobs",
    "--cache-size": "cache_size",
    "--rule": "rule",
    "--weight": "weight",
}


def _explicit_flags(argv) -> set:
    """Dest names of override flags literally present on the command line.

    Comparing parsed values against parser defaults cannot distinguish
    ``--damping 0.85`` (explicit, must beat the config file) from the flag
    being absent (config file wins), so the merge needs the raw argv.
    Both ``--flag value`` and ``--flag=value`` spellings are recognised;
    the parsers are built with ``allow_abbrev=False`` so an abbreviated
    spelling cannot slip past this scan.
    """
    explicit = set()
    for token in argv:
        if not isinstance(token, str):
            continue
        if token == "--":
            break  # everything after the separator is positional
        if token.startswith("--"):
            dest = _OVERRIDE_FLAGS.get(token.split("=", 1)[0])
            if dest is not None:
                explicit.add(dest)
    return explicit


def _is_explicit(args: argparse.Namespace, dest: str, default) -> bool:
    """Whether *dest* should override a --config file value."""
    explicit = getattr(args, "_explicit", None)
    if explicit is not None:
        return dest in explicit
    # Fallback for handlers driven outside main(): a value that differs
    # from the parser default must have been given explicitly.
    return getattr(args, dest) != default


# --------------------------------------------------------------------- #
# Centralised argument validation (uniform one-line errors, exit code 2)
# --------------------------------------------------------------------- #
def _parse_jobs(value) -> object:
    """Normalise ``--jobs`` to a positive int or ``"auto"``.

    Delegates the accepted grammar to the engine's
    :func:`~repro.engine.executor.normalize_n_jobs`; this wrapper only
    converts the CLI's string form to an int first.
    """
    from .engine.executor import normalize_n_jobs

    parsed = value
    if isinstance(value, str) and value != "auto":
        try:
            parsed = int(value)
        except ValueError:
            pass  # normalize_n_jobs produces the canonical error
    try:
        return normalize_n_jobs(parsed, name="--jobs")
    except ValidationError:
        raise ValidationError(
            f"--jobs must be a positive integer or 'auto', got {value!r}"
        ) from None


def _parse_damping(value) -> float:
    """Normalise ``--damping`` to a float in the open interval (0, 1)."""
    from ._validation import ensure_damping

    return ensure_damping(value, name="--damping")


def _validate_args(args: argparse.Namespace) -> None:
    """Semantic validation shared by every sub-command.

    Runs before the handler so all value errors — whether argparse could
    have caught them or not — take the same path: one ``error:`` line on
    stderr and exit code :data:`EXIT_ERROR`.  Parsed values are written
    back onto *args* (``--jobs``/``--damping`` arrive as strings so that
    malformed numbers land here instead of in argparse's usage dump).
    """
    if hasattr(args, "jobs"):
        args.jobs = _parse_jobs(args.jobs)
    if hasattr(args, "damping"):
        args.damping = _parse_damping(args.damping)
    if getattr(args, "top", 1) < 1:
        raise ValidationError(f"--top must be at least 1, got {args.top}")
    if hasattr(args, "weight") and not 0.0 <= args.weight <= 1.0:
        raise ValidationError(
            f"--weight must be between 0 and 1, got {args.weight}")
    if getattr(args, "cache_size", 1) < 1:
        raise ValidationError(
            f"--cache-size must be at least 1, got {args.cache_size}")


# --------------------------------------------------------------------- #
# Config assembly
# --------------------------------------------------------------------- #
def _ranking_config(args: argparse.Namespace, **extra) -> RankingConfig:
    """Build the effective RankingConfig for a sub-command.

    Precedence (lowest to highest): built-in defaults, the ``--config``
    file, CLI flags given explicitly on the command line, *extra*.
    """
    if getattr(args, "config", None):
        config = RankingConfig.load(args.config)
    else:
        config = RankingConfig()
    changes = {}
    if hasattr(args, "damping") and _is_explicit(args, "damping",
                                                 DEFAULT_DAMPING_ARG):
        changes["damping"] = args.damping
    if hasattr(args, "jobs") and _is_explicit(args, "jobs", DEFAULT_JOBS_ARG):
        if args.jobs == "auto":
            # Preserve the config file's n_jobs as a worker cap on the
            # adaptive pools — except an n_jobs of 1, which spelled
            # "serial", not "cap the pools at one worker".
            changes.update(executor="auto")
            if config.n_jobs == 1:
                changes.update(n_jobs=None)
        elif args.jobs == 1:
            changes.update(executor="serial", n_jobs=None)
        else:
            # An explicit worker count adjusts the config's pooled backend
            # rather than replacing it: a file saying executor="threaded"
            # keeps threads, only the worker count changes.  Process is
            # the default only when the config has no pooled backend.
            executor = (config.executor if config.executor != "serial"
                        else "process")
            changes.update(executor=executor, n_jobs=args.jobs)
    if hasattr(args, "cache_size") and _is_explicit(args, "cache_size",
                                                    DEFAULT_CACHE_SIZE_ARG):
        changes["cache_size"] = args.cache_size
    if hasattr(args, "rule") and _is_explicit(args, "rule", DEFAULT_RULE_ARG):
        changes["rule"] = args.rule
    if hasattr(args, "weight") and _is_explicit(args, "weight",
                                                DEFAULT_WEIGHT_ARG):
        changes["weight"] = args.weight
    changes.update(extra)  # *extra* is the handler's word: highest precedence
    return config.replace(**changes) if changes else config


def _load_graph(args: argparse.Namespace) -> DocGraph:
    """Load or generate the graph a sub-command operates on."""
    if args.input is not None:
        if args.format == "edgelist":
            return read_url_edgelist(args.input)
        return read_docgraph(args.input)
    if args.generate == "campus":
        return generate_campus_web(n_sites=args.sites,
                                   n_documents=args.documents,
                                   seed=args.seed).docgraph
    return generate_synthetic_web(n_sites=args.sites,
                                  n_documents=args.documents, seed=args.seed)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="path to a graph file")
    parser.add_argument("--format", choices=["edgelist", "docgraph"],
                        default="edgelist",
                        help="input file format (default: edgelist)")
    parser.add_argument("--generate", choices=["campus", "hierarchical"],
                        default="hierarchical",
                        help="synthetic web to generate when no --input")
    parser.add_argument("--sites", type=int, default=20)
    parser.add_argument("--documents", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", default=DEFAULT_JOBS_ARG, metavar="N",
                        help="worker processes for the rank computation "
                             "(default: 1, serial; 'auto' lets the engine "
                             "pick a backend — results are identical "
                             "either way)")
    parser.add_argument("--config", metavar="PATH",
                        help="RankingConfig file (.json or .toml) driving "
                             "the run; explicit flags override it")


def _command_rank(args: argparse.Namespace) -> int:
    if args.on_disk:
        return _command_rank_on_disk(args)
    if args.output is not None:
        raise ValidationError("--output requires --on-disk")
    config = _ranking_config(args)
    graph = _load_graph(args)
    print(f"graph: {graph.n_documents} documents, {graph.n_links} links, "
          f"{graph.n_sites} sites")
    if args.method == "both":
        methods = ["layered", "pagerank"]
    elif _is_explicit(args, "method", "layered"):
        methods = [args.method]
    else:
        # --method left at its default: defer to the config file's method
        # (which itself defaults to "layered").
        methods = [config.method]
    for method in methods:
        result = Ranker(config.replace(method=method)).fit(
            graph, trace=args.trace)
        print(f"\ntop-{args.top} by {method}:")
        for rank, url in enumerate(result.top_k_urls(args.top), start=1):
            print(f"  {rank:3d}. {url}")
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    return 0


def _command_rank_on_disk(args: argparse.Namespace) -> int:
    """The out-of-core path: mmap'd DiskGraph, streamed solves, disk store.

    The graph goes straight into an on-disk block store (URL edge lists
    stream through in bounded memory, never materialising a DocGraph),
    the layered solve hydrates one solve unit's adjacency at a time, and
    the composed scores are published as a ranked generation an
    ``repro serve --store`` process can mmap.  Re-running against the
    same ``--output`` warm-starts from the published generation.
    """
    from .engine.outofcore import rank_outofcore
    from .io.artifacts import ArtifactStore
    from .io.diskgraph import DiskGraphBuilder, write_diskgraph
    from .io.edgelist import stream_url_edgelist
    from .serving.mmapstore import MmapScoreStore
    from .serving.topk import TopKEngine

    if args.output is None:
        raise ValidationError("--on-disk requires --output DIR")
    config = _ranking_config(args)
    method = args.method if _is_explicit(args, "method", "layered") \
        else config.method
    if resolve_method_name(method) != "layered":
        raise ValidationError(
            f"--on-disk supports only the layered method, got {method!r}")
    graph_dir = os.path.join(args.output, "graph")
    if args.input is not None and args.format == "edgelist":
        builder = DiskGraphBuilder(graph_dir)
        try:
            builder.consume(stream_url_edgelist(args.input))
            graph = builder.finalize()
        except BaseException:
            builder.abort()
            raise
    else:
        graph = write_diskgraph(_load_graph(args), graph_dir)
    print(f"graph: {graph.n_documents} documents, {graph.n_links} links, "
          f"{graph.n_sites} sites  [on disk: {graph.nbytes} block bytes]")
    store = ArtifactStore(args.output, create=True)
    warm = store.generation() if store.current is not None else None
    if warm is not None:
        print(f"warm-starting from generation {warm.name}")
    result = rank_outofcore(graph, store, damping=config.damping, warm=warm)
    print(f"published generation {result.generation.name} to {args.output} "
          f"({result.iterations} power iterations)")
    engine = TopKEngine(MmapScoreStore(result.generation))
    print(f"\ntop-{args.top} by {result.method}:")
    for rank, url in enumerate(engine.top_k_urls(args.top), start=1):
        print(f"  {rank:3d}. {url}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "campus":
        graph = generate_campus_web(n_sites=args.sites,
                                    n_documents=args.documents,
                                    seed=args.seed).docgraph
    else:
        graph = generate_synthetic_web(n_sites=args.sites,
                                       n_documents=args.documents,
                                       seed=args.seed)
    write_docgraph(graph, args.output)
    print(f"wrote {graph.n_documents} documents / {graph.n_links} links "
          f"({graph.n_sites} sites) to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    config = _ranking_config(args)
    campus = None
    if args.input is None and args.generate == "campus":
        campus = generate_campus_web(n_sites=args.sites,
                                     n_documents=args.documents,
                                     seed=args.seed)
        graph = campus.docgraph
    else:
        graph = _load_graph(args)
    layered = Ranker(config.replace(method="layered")).fit(graph)
    flat = Ranker(config.replace(method="pagerank")).fit(graph)
    tau = kendall_tau(layered.scores_by_doc_id(), flat.scores_by_doc_id())
    overlap = top_k_overlap(layered.top_k(args.top), flat.top_k(args.top),
                            args.top)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    print(f"Kendall tau (layered vs PageRank): {tau:.3f}")
    print(f"top-{args.top} overlap: {overlap:.0%}")
    if campus is not None:
        for name, result in (("PageRank", flat), ("layered", layered)):
            contamination = top_k_contamination(result.top_k(args.top),
                                                campus.farm_doc_ids, args.top)
            print(f"farm pages in {name} top-{args.top}: {contamination:.0%}")
    return 0


def _build_service(args: argparse.Namespace):
    """Rank the selected graph and wrap it in a RankingService."""
    state_path = getattr(args, "state", None)
    config = _ranking_config(args, warm_start=True) if state_path \
        else _ranking_config(args)
    if state_path and resolve_method_name(config.method) != "layered":
        # Only the layered method records/consumes warm-start vectors; a
        # silent no-op state file would falsely promise resumption.
        raise ValidationError(
            f"--state requires the layered method (method="
            f"{config.method!r} records no warm-start vectors)")
    graph = _load_graph(args)
    ranker = Ranker(config)
    if state_path and os.path.exists(state_path):
        ranker.load_state(state_path)
        print(f"resuming power iterations from {state_path}")
    ranker.fit(graph)
    if state_path:
        ranker.save_state(state_path)
    corpus = synthesize_corpus(graph, seed=args.seed)
    service = ranker.serve(corpus=corpus,
                           replicas=getattr(args, "replicas", 1))
    return graph, service, config


def _build_store_service(args: argparse.Namespace):
    """Boot the serving stack off a published artifact store (no ranking).

    The score columns stay on disk: every replica's
    :class:`~repro.serving.mmapstore.MmapScoreStore` clone shares one
    memory mapping, so startup reads only the generation manifest and
    queries fault in just the pages they touch.
    """
    from .serving.mmapstore import MmapScoreStore
    from .serving.replicas import ReplicaSet
    from .serving.service import RankingService

    replicas = getattr(args, "replicas", 1)
    if replicas < 1:
        raise ValidationError("--replicas must be at least 1")
    config = _ranking_config(args)
    store = MmapScoreStore.from_store(args.store)
    serving_kwargs = dict(cache_size=config.cache_size, rule=config.rule,
                          weight=config.weight)
    services = [RankingService(store if number == 0 else store.clone(),
                               **serving_kwargs)
                for number in range(replicas)]
    service = ReplicaSet(services) if replicas > 1 else services[0]
    generation = store.ranked_generation
    header = (f"store: {generation.n_documents} documents over "
              f"{store.n_shards} sites (generation {generation.name} "
              f"of {args.store}, mmap)")
    return service, header


def _command_serve(args: argparse.Namespace) -> int:
    if getattr(args, "store", None) is not None:
        if args.state:
            raise ValidationError(
                "--state applies to ranking at startup; a --store serve "
                "never ranks")
        service, header = _build_store_service(args)
    else:
        graph, service, _config = _build_service(args)
        header = (f"graph: {graph.n_documents} documents over "
                  f"{graph.n_sites} sites")
    verbose = args.verbose or args.access_log
    if args.async_frontend:
        config = FrontendConfig(coalesce_window=args.coalesce_window,
                                max_inflight=args.max_inflight)
        server = AsyncRankingServer(service, host=args.host, port=args.port,
                                    config=config, verbose=verbose)
        mode = (f"async front end, {args.replicas} replica(s), "
                f"coalesce window {config.coalesce_window * 1000:.1f}ms, "
                f"max in-flight {config.max_inflight}")
        thread = None
    else:
        server = RankingHTTPServer(service, host=args.host, port=args.port,
                                   verbose=verbose)
        mode = f"threaded, {args.replicas} replica(s)"
        thread = server.start_background()
    print(header)
    print(f"serving on {server.url}  [{mode}]  "
          f"(endpoints: /top /query /score /stats /health /healthz "
          f"/readyz /metrics)", flush=True)
    try:
        if args.duration is not None:
            if thread is not None:
                thread.join(args.duration)
            else:
                time.sleep(args.duration)
        else:  # pragma: no cover - interactive mode
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.close()
        service.close()
    print("server stopped")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    graph, service, config = _build_service(args)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    segment = getattr(args, "segment", None)
    batches = service.query_many(args.queries, args.top, segment=segment)
    for text, hits in zip(args.queries, batches):
        # config.rule, not args.rule: a --config file may set the rule.
        qualifier = f", segment {segment!r}" if segment else ""
        print(f"\ntop-{args.top} for {text!r} "
              f"({config.rule} combination{qualifier}):")
        if not hits:
            print("  (no matching documents)")
        for rank, hit in enumerate(hits, start=1):
            url = service.store.document(hit.doc_id).url
            print(f"  {rank:3d}. {url}  "
                  f"combined={hit.combined_score:.4f} "
                  f"query={hit.query_score:.4f} link={hit.link_score:.6f}")
    stats = service.cache_stats
    print(f"\ncache: {stats.hits} hits / {stats.lookups} lookups "
          f"({stats.hit_rate:.0%} hit rate)")
    return 0


def _command_example(args: argparse.Namespace) -> int:
    model = example_lmm()
    results = all_approaches(model, damping=args.damping)
    print("paper worked example: 3 phases, 12 global system states")
    for name, result in results.items():
        rounded = [round(float(score), 4) for score in result.scores]
        print(f"{name}: {rounded}")
    print(f"rank order (Approach 2/4): "
          f"{results['approach-2'].rank_positions().tolist()}")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    from .engine.calibrate import calibrate

    profile = calibrate(quick=args.quick, n_jobs=args.jobs_int)
    print(f"measured on {profile.machine} ({profile.cpu_count} CPUs), "
          f"{profile.measured_at}")
    print(f"dense cutoff:                      {profile.dense_cutoff} docs")
    print(f"serial -> threaded threshold:      "
          f"{profile.serial_flops_threshold:.3g} flops")
    print(f"threaded -> process threshold:     "
          f"{profile.process_flops_threshold:.3g} flops")
    print(f"batched serial -> pool threshold:  "
          f"{profile.batched_serial_flops_threshold:.3g} flops")
    print(f"batched pool -> process threshold: "
          f"{profile.batched_process_flops_threshold:.3g} flops")
    if args.output:
        profile.save(args.output)
        print(f"profile written to {args.output} (activate it with "
              f"REPRO_CALIBRATION={args.output})")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from . import obs

    config = _ranking_config(args)
    graph = _load_graph(args)
    result = Ranker(config).fit(graph)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    print(f"ranked by {result.method!r} in {result.wall_seconds:.3f}s "
          f"({result.iterations} power iterations)")
    timings = ", ".join(f"{name}={seconds:.3f}s"
                        for name, seconds in sorted(result.timings.items()))
    print(f"timings: {timings}\n")
    if args.prometheus:
        print(obs.render_prometheus(), end="")
    else:
        print(obs.render_table())
    return 0


def _command_config_show(args: argparse.Namespace) -> int:
    if args.config:
        config = RankingConfig.load(args.config)
        print(f"# effective config from {args.config}")
    else:
        config = RankingConfig()
        print("# built-in defaults (repro.api.RankingConfig())")
    print(f"# registered methods: {', '.join(available_methods())}")
    print(config.to_toml(), end="")
    return 0


def _command_config_validate(args: argparse.Namespace) -> int:
    config = RankingConfig.load(args.path)
    config.require_method()  # unknown methods must fail validation too
    print(f"ok: {args.path} is a valid ranking config "
          f"(method={config.method!r}, executor={config.executor!r})")
    return 0


# --------------------------------------------------------------------- #
# Live cluster deployment
# --------------------------------------------------------------------- #
def _parse_connect(connect: str) -> tuple:
    """Split a ``host:port`` coordinator address."""
    host, separator, port_text = connect.rpartition(":")
    if not separator or not host:
        raise ValidationError(
            f"--connect must be host:port, got {connect!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"--connect port must be an integer, got {port_text!r}"
        ) from None
    return host, port


def _print_cluster_report(report, top: int) -> None:
    print(f"round complete: mode={report.mode} peers={report.n_peers} "
          f"makespan={report.makespan_seconds:.3f}s")
    if report.reassignment_count:
        print(f"fault tolerance: {report.reassignment_count} site(s) "
              f"re-assigned after a peer failure "
              f"({', '.join(report.reassigned_sites)})")
    print(f"traffic: {report.message_count} messages, "
          f"{report.total_bytes} bytes on the wire")
    for peer_name in sorted(report.per_peer_wall_seconds):
        seconds = report.per_peer_wall_seconds[peer_name]
        print(f"  {peer_name}: {seconds:.3f}s compute")
    print(f"\ntop-{top} documents:")
    for rank, url in enumerate(report.ranking.top_k_urls(top), start=1):
        print(f"  {rank:3d}. {url}")


def _cluster_report_summary(report) -> dict:
    """The JSON artifact shape of one live round (``--json``)."""
    return {
        "mode": report.mode,
        "architecture": report.architecture,
        "n_peers": report.n_peers,
        "makespan_seconds": report.makespan_seconds,
        "serial_compute_seconds": report.serial_compute_seconds,
        "coordinator_seconds": report.coordinator_seconds,
        "per_peer_wall_seconds": report.per_peer_wall_seconds,
        "reassigned_sites": list(report.reassigned_sites),
        "message_count": report.message_count,
        "total_bytes": report.total_bytes,
        "bytes_by_type": report.bytes_by_type,
        "messages_by_type": report.messages_by_type,
        "iterations": report.ranking.iterations,
    }


def _command_cluster_coordinator(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    coordinator = ClusterCoordinator(
        graph, host=args.host, port=args.port, n_peers=args.peers,
        damping=args.damping, tol=args.tol, max_iter=args.max_iter,
        batch_sites=args.batch_sites, ledger_path=args.ledger,
        heartbeat_seconds=args.heartbeat, round_timeout=args.timeout)

    async def _run():
        await coordinator.start(metrics_port=args.metrics_port)
        line = (f"coordinator listening on {coordinator.address} "
                f"(waiting for {coordinator.n_slots} peers")
        if coordinator.metrics_port is not None:
            line += f"; metrics on port {coordinator.metrics_port}"
        print(line + ")", flush=True)
        if coordinator.ledger.resumed_sites:
            print(f"ledger resume: {len(coordinator.ledger.resumed_sites)} "
                  f"site(s) recovered, "
                  f"{len(coordinator.ledger.pending_sites())} pending",
                  flush=True)
        return await coordinator.wait()

    report = asyncio.run(_run())
    _print_cluster_report(report, args.top)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(_cluster_report_summary(report), handle, indent=2)
        print(f"report written to {args.json}")
    return 0


def _command_cluster_peer(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    graph = _load_graph(args)
    print(f"peer connecting to {host}:{port} "
          f"({graph.n_sites} sites available locally)", flush=True)
    ranked = run_peer(graph, host, port, name=args.name,
                      fail_after=args.fail_after)
    print(f"peer done: ranked {ranked} site(s)")
    return 0


def _command_cluster_rank(args: argparse.Namespace) -> int:
    graph = _load_graph(args)

    async def _run():
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as workdir:
            return await run_live_cluster(
                graph, workdir, n_peers=args.peers, damping=args.damping,
                tol=args.tol, max_iter=args.max_iter,
                batch_sites=args.batch_sites, ledger_path=args.ledger,
                heartbeat_seconds=args.heartbeat,
                round_timeout=args.timeout)

    report = asyncio.run(_run())
    _print_cluster_report(report, args.top)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(_cluster_report_summary(report), handle, indent=2)
        print(f"report written to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    # allow_abbrev=False everywhere: an abbreviated flag (--dampi) must not
    # parse silently, both for predictability and because the config merge
    # identifies explicit flags by their full option strings.
    parser = argparse.ArgumentParser(
        prog="repro", allow_abbrev=False,
        description="Layered Markov Model web ranking (Wu & Aberer, ICDCS 2005)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    rank = subparsers.add_parser("rank", allow_abbrev=False, help="rank a web graph")
    _add_graph_arguments(rank)
    rank.add_argument("--method",
                      choices=[*available_methods(), "pagerank", "both"],
                      default="layered",
                      help="registered ranking method, or 'both' for "
                           "layered + pagerank side by side (when omitted, "
                           "a --config file's method applies)")
    rank.add_argument("--top", type=int, default=15)
    rank.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
    rank.add_argument("--trace", metavar="PATH", default=None,
                      help="write the run's span trace as JSON "
                           "(repro.obs trace schema)")
    rank.add_argument("--on-disk", action="store_true", dest="on_disk",
                      help="rank out of core: stream the graph into an "
                           "mmap'd disk store and solve it in bounded "
                           "memory (requires --output; layered method "
                           "only)")
    rank.add_argument("--output", metavar="DIR", default=None,
                      help="artifact-store directory --on-disk publishes "
                           "its ranked generation into (servable with "
                           "'repro serve --store DIR'; re-runs "
                           "warm-start from the published generation)")
    rank.set_defaults(handler=_command_rank)

    generate = subparsers.add_parser("generate",
                                     allow_abbrev=False, help="generate a synthetic web graph")
    generate.add_argument("kind", choices=["campus", "hierarchical"])
    generate.add_argument("output", help="path of the DocGraph file to write")
    generate.add_argument("--sites", type=int, default=20)
    generate.add_argument("--documents", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(handler=_command_generate)

    compare = subparsers.add_parser(
        "compare", allow_abbrev=False, help="compare the layered ranking with flat PageRank")
    _add_graph_arguments(compare)
    compare.add_argument("--top", type=int, default=15)
    compare.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
    compare.set_defaults(handler=_command_compare)

    example = subparsers.add_parser(
        "example", allow_abbrev=False, help="print the paper's 12-state worked example")
    example.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
    example.set_defaults(handler=_command_example)

    def _add_serving_arguments(sub: argparse.ArgumentParser) -> None:
        _add_graph_arguments(sub)
        sub.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
        sub.add_argument("--cache-size", type=int,
                         default=DEFAULT_CACHE_SIZE_ARG,
                         help="capacity of the query result cache")
        sub.add_argument("--rule", choices=["linear", "rrf"],
                         default=DEFAULT_RULE_ARG,
                         help="query/link combination rule")
        sub.add_argument("--weight", type=float, default=DEFAULT_WEIGHT_ARG,
                         help="λ of the linear combination")

    serve = subparsers.add_parser(
        "serve", allow_abbrev=False, help="serve ranking queries over JSON/HTTP")
    _add_serving_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (0 picks a free port)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then exit "
                            "(default: until interrupted)")
    serve.add_argument("--async", action="store_true", dest="async_frontend",
                       help="serve through the asyncio front end "
                            "(request coalescing + admission control) "
                            "instead of the thread-per-connection server")
    serve.add_argument("--replicas", type=int, default=1, metavar="N",
                       help="serve N score-store replicas behind a "
                            "consistent-hash router; incremental updates "
                            "roll across them with zero downtime")
    serve.add_argument("--max-inflight", type=int, default=256, metavar="M",
                       dest="max_inflight",
                       help="admission-control bound of the async front "
                            "end: requests beyond M concurrent are shed "
                            "with 429 + Retry-After")
    serve.add_argument("--coalesce-window", type=float, default=0.002,
                       metavar="SECONDS", dest="coalesce_window",
                       help="how long the async front end waits for a "
                            "burst to pile up before issuing one "
                            "deduplicated batch (0 still coalesces "
                            "arrivals during an in-flight batch)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="serve a published artifact store (written by "
                            "'rank --on-disk --output DIR') straight off "
                            "its mmap'd score files — boots without "
                            "ranking and without loading score columns")
    serve.add_argument("--state", metavar="PATH",
                       help="warm-start state file: loaded on startup when "
                            "present, written after ranking, so a restarted "
                            "server resumes its power iterations")
    serve.add_argument("--verbose", action="store_true",
                       help="log requests to stderr")
    serve.add_argument("--access-log", action="store_true",
                       dest="access_log",
                       help="structured access log (method, path, status, "
                            "duration_ms) on the repro.serving logger")
    serve.set_defaults(handler=_command_serve)

    query = subparsers.add_parser(
        "query", allow_abbrev=False, help="answer text queries with combined text+link ranking")
    _add_serving_arguments(query)
    query.add_argument("queries", nargs="+", metavar="QUERY",
                       help="free-text queries (answered as one batch)")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--segment", default=None, metavar="NAME",
                       help="combine with a personalisation segment's "
                            "scores instead of the base ranking (the "
                            "segment must be declared in the --config "
                            "file's [personalization] section)")
    query.set_defaults(handler=_command_query)

    calibrate = subparsers.add_parser(
        "calibrate", allow_abbrev=False,
        help="measure the engine's performance cut-offs on this machine")
    calibrate.add_argument("--output", metavar="PATH",
                           help="write the measured profile as JSON "
                                "(loadable via the REPRO_CALIBRATION "
                                "environment variable)")
    calibrate.add_argument("--quick", action="store_true",
                           help="shrunk measurement sizes (seconds instead "
                                "of minutes; coarser cut-offs)")
    calibrate.add_argument("--jobs", type=int, default=None, dest="jobs_int",
                           help="worker count for the pooled backends "
                                "(default: one per CPU)")
    calibrate.set_defaults(handler=_command_calibrate)

    stats = subparsers.add_parser(
        "stats", allow_abbrev=False,
        help="rank a graph and print the run's telemetry snapshot")
    _add_graph_arguments(stats)
    stats.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
    stats.add_argument("--prometheus", action="store_true",
                       help="print the Prometheus text exposition instead "
                            "of the snapshot table")
    stats.set_defaults(handler=_command_stats)

    cluster = subparsers.add_parser(
        "cluster", allow_abbrev=False,
        help="run the distributed ranking protocol over real TCP peers")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)

    def _add_round_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--peers", type=int, default=3,
                         help="number of peer processes the round expects")
        sub.add_argument("--damping", default=DEFAULT_DAMPING_ARG)
        sub.add_argument("--tol", type=float, default=DEFAULT_SOLVER_TOL)
        sub.add_argument("--max-iter", type=int,
                         default=DEFAULT_SOLVER_MAX_ITER, dest="max_iter")
        sub.add_argument("--batch-sites", action="store_true",
                         dest="batch_sites",
                         help="let peers fuse small sites into batched "
                              "solves (faster, but scores then follow the "
                              "batched path instead of the per-site serial "
                              "reference)")
        sub.add_argument("--ledger", metavar="PATH", default=None,
                         help="durable job ledger: a restarted coordinator "
                              "resumes the round instead of recomputing")
        sub.add_argument("--heartbeat", type=float,
                         default=CLUSTER_HEARTBEAT_SECONDS,
                         help="seconds between peer heartbeats")
        sub.add_argument("--timeout", type=float,
                         default=CLUSTER_ROUND_TIMEOUT,
                         help="seconds before the coordinator abandons "
                              "the round")
        sub.add_argument("--top", type=int, default=10)
        sub.add_argument("--json", metavar="PATH", default=None,
                         help="write the round report as JSON")

    cluster_coordinator = cluster_sub.add_parser(
        "coordinator", allow_abbrev=False,
        help="run the round coordinator on a TCP port")
    _add_graph_arguments(cluster_coordinator)
    _add_round_arguments(cluster_coordinator)
    cluster_coordinator.add_argument("--host", default="127.0.0.1")
    cluster_coordinator.add_argument("--port", type=int, default=0,
                                     help="bind port (0 picks a free port, "
                                          "printed on startup)")
    cluster_coordinator.add_argument("--metrics-port", type=int,
                                     default=None, dest="metrics_port",
                                     help="also serve GET /metrics "
                                          "(Prometheus text format) on "
                                          "this port")
    cluster_coordinator.set_defaults(handler=_command_cluster_coordinator)

    cluster_peer = cluster_sub.add_parser(
        "peer", allow_abbrev=False,
        help="run one ranking peer against a coordinator")
    _add_graph_arguments(cluster_peer)
    cluster_peer.add_argument("--connect", required=True, metavar="HOST:PORT",
                              help="coordinator address")
    cluster_peer.add_argument("--name", default="",
                              help="requested peer name (the coordinator "
                                   "assigns the logical wire name)")
    cluster_peer.add_argument("--fail-after", type=int, default=None,
                              dest="fail_after",
                              help="crash the process after sending N "
                                   "results (deterministic fault injection "
                                   "for tests)")
    cluster_peer.set_defaults(handler=_command_cluster_peer)

    cluster_rank = cluster_sub.add_parser(
        "rank", allow_abbrev=False,
        help="one-command localhost deployment: coordinator + forked peers")
    _add_graph_arguments(cluster_rank)
    _add_round_arguments(cluster_rank)
    cluster_rank.set_defaults(handler=_command_cluster_rank)

    config = subparsers.add_parser(
        "config", allow_abbrev=False, help="inspect and validate ranking configs")
    config_sub = config.add_subparsers(dest="config_command", required=True)
    show = config_sub.add_parser(
        "show", allow_abbrev=False, help="print the effective config as TOML")
    show.add_argument("--config", metavar="PATH",
                      help="config file to show (built-in defaults when "
                           "omitted)")
    show.set_defaults(handler=_command_config_show)
    validate = config_sub.add_parser(
        "validate", allow_abbrev=False, help="check a config file and exit 0 if it is usable")
    validate.add_argument("path", help="config file (.json or .toml)")
    validate.set_defaults(handler=_command_config_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Anticipated failures — missing or malformed input files, invalid
    graphs, configs or parameter values — print one ``error:`` line to
    stderr and return :data:`EXIT_ERROR` instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    args._explicit = _explicit_flags(sys.argv[1:] if argv is None else argv)
    try:
        _validate_args(args)
        return args.handler(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
