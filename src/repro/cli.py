"""Command-line interface: ``python -m repro <command>``.

Sub-commands
------------

``rank``
    Rank a web graph (URL edge list or a generated synthetic web) with the
    layered method, flat PageRank, or both, and print the top-k documents.

``generate``
    Generate a synthetic web (``campus`` or ``hierarchical``) and write it
    as a lossless DocGraph file (readable by ``rank --format docgraph``).

``compare``
    Rank a graph with both methods and report their agreement (Kendall tau,
    top-k overlap) plus, for generated campus webs, the farm contamination
    of each top list.

``example``
    Print the paper's 12-state worked example (Figure 2 reproduction).

``serve``
    Rank a web graph and expose it over the JSON/HTTP query endpoint
    (:mod:`repro.serving.httpd`).

``query``
    Rank a web graph, build the serving stack in-process and answer one or
    more free-text queries with the combined (text + link) ranking.

All numeric output is deterministic for a fixed ``--seed``.  The graph
sub-commands accept ``--jobs N`` to run the layered rank computation on a
process pool of N workers (through :mod:`repro.engine`); the default of 1
keeps the serial reference path and N > 1 produces identical scores.
Errors (bad input paths, malformed graph files, invalid parameters) print
a message to stderr and exit with status 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core import all_approaches, example_lmm
from .exceptions import ReproError
from .graphgen import generate_campus_web, generate_synthetic_web
from .io import read_docgraph, read_url_edgelist, write_docgraph
from .ir import synthesize_corpus
from .metrics import kendall_tau, top_k_contamination, top_k_overlap
from .serving import RankingHTTPServer, RankingService
from .web import DocGraph, flat_pagerank_ranking, layered_docrank

#: Exit code of anticipated failures (bad paths, malformed inputs).
EXIT_ERROR = 2


def _load_graph(args: argparse.Namespace) -> DocGraph:
    """Load or generate the graph a sub-command operates on."""
    if args.input is not None:
        if args.format == "edgelist":
            return read_url_edgelist(args.input)
        return read_docgraph(args.input)
    if args.generate == "campus":
        return generate_campus_web(n_sites=args.sites,
                                   n_documents=args.documents,
                                   seed=args.seed).docgraph
    return generate_synthetic_web(n_sites=args.sites,
                                  n_documents=args.documents, seed=args.seed)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="path to a graph file")
    parser.add_argument("--format", choices=["edgelist", "docgraph"],
                        default="edgelist",
                        help="input file format (default: edgelist)")
    parser.add_argument("--generate", choices=["campus", "hierarchical"],
                        default="hierarchical",
                        help="synthetic web to generate when no --input")
    parser.add_argument("--sites", type=int, default=20)
    parser.add_argument("--documents", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the layered rank "
                             "computation (default: 1, serial — results "
                             "are identical for any N)")


def _command_rank(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    print(f"graph: {graph.n_documents} documents, {graph.n_links} links, "
          f"{graph.n_sites} sites")
    methods = (["layered", "pagerank"] if args.method == "both"
               else [args.method])
    for method in methods:
        result = (layered_docrank(graph, damping=args.damping,
                                  n_jobs=args.jobs)
                  if method == "layered"
                  else flat_pagerank_ranking(graph, damping=args.damping))
        print(f"\ntop-{args.top} by {method}:")
        for rank, url in enumerate(result.top_k_urls(args.top), start=1):
            print(f"  {rank:3d}. {url}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "campus":
        graph = generate_campus_web(n_sites=args.sites,
                                    n_documents=args.documents,
                                    seed=args.seed).docgraph
    else:
        graph = generate_synthetic_web(n_sites=args.sites,
                                       n_documents=args.documents,
                                       seed=args.seed)
    write_docgraph(graph, args.output)
    print(f"wrote {graph.n_documents} documents / {graph.n_links} links "
          f"({graph.n_sites} sites) to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    campus = None
    if args.input is None and args.generate == "campus":
        campus = generate_campus_web(n_sites=args.sites,
                                     n_documents=args.documents,
                                     seed=args.seed)
        graph = campus.docgraph
    else:
        graph = _load_graph(args)
    layered = layered_docrank(graph, damping=args.damping, n_jobs=args.jobs)
    flat = flat_pagerank_ranking(graph, damping=args.damping)
    tau = kendall_tau(layered.scores_by_doc_id(), flat.scores_by_doc_id())
    overlap = top_k_overlap(layered.top_k(args.top), flat.top_k(args.top),
                            args.top)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    print(f"Kendall tau (layered vs PageRank): {tau:.3f}")
    print(f"top-{args.top} overlap: {overlap:.0%}")
    if campus is not None:
        for name, result in (("PageRank", flat), ("layered", layered)):
            contamination = top_k_contamination(result.top_k(args.top),
                                                campus.farm_doc_ids, args.top)
            print(f"farm pages in {name} top-{args.top}: {contamination:.0%}")
    return 0


def _build_service(args: argparse.Namespace):
    """Rank the selected graph and wrap it in a RankingService."""
    graph = _load_graph(args)
    ranking = layered_docrank(graph, damping=args.damping, n_jobs=args.jobs)
    corpus = synthesize_corpus(graph, seed=args.seed)
    service = RankingService.from_ranking(ranking, graph, corpus=corpus,
                                          cache_size=args.cache_size,
                                          rule=args.rule, weight=args.weight)
    return graph, service


def _command_serve(args: argparse.Namespace) -> int:
    graph, service = _build_service(args)
    server = RankingHTTPServer(service, host=args.host, port=args.port,
                               verbose=args.verbose)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    print(f"serving on {server.url}  "
          f"(endpoints: /top /query /score /stats /health)", flush=True)
    thread = server.start_background()
    try:
        if args.duration is not None:
            thread.join(args.duration)
        else:  # pragma: no cover - interactive mode
            while thread.is_alive():
                thread.join(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.close()
    print("server stopped")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    graph, service = _build_service(args)
    print(f"graph: {graph.n_documents} documents over {graph.n_sites} sites")
    batches = service.query_many(args.queries, args.top)
    for text, hits in zip(args.queries, batches):
        print(f"\ntop-{args.top} for {text!r} ({args.rule} combination):")
        if not hits:
            print("  (no matching documents)")
        for rank, hit in enumerate(hits, start=1):
            url = service.store.document(hit.doc_id).url
            print(f"  {rank:3d}. {url}  "
                  f"combined={hit.combined_score:.4f} "
                  f"query={hit.query_score:.4f} link={hit.link_score:.6f}")
    stats = service.cache_stats
    print(f"\ncache: {stats.hits} hits / {stats.lookups} lookups "
          f"({stats.hit_rate:.0%} hit rate)")
    return 0


def _command_example(args: argparse.Namespace) -> int:
    model = example_lmm()
    results = all_approaches(model, damping=args.damping)
    print("paper worked example: 3 phases, 12 global system states")
    for name, result in results.items():
        rounded = [round(float(score), 4) for score in result.scores]
        print(f"{name}: {rounded}")
    print(f"rank order (Approach 2/4): "
          f"{results['approach-2'].rank_positions().tolist()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Layered Markov Model web ranking (Wu & Aberer, ICDCS 2005)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    rank = subparsers.add_parser("rank", help="rank a web graph")
    _add_graph_arguments(rank)
    rank.add_argument("--method", choices=["layered", "pagerank", "both"],
                      default="layered")
    rank.add_argument("--top", type=int, default=15)
    rank.add_argument("--damping", type=float, default=0.85)
    rank.set_defaults(handler=_command_rank)

    generate = subparsers.add_parser("generate",
                                     help="generate a synthetic web graph")
    generate.add_argument("kind", choices=["campus", "hierarchical"])
    generate.add_argument("output", help="path of the DocGraph file to write")
    generate.add_argument("--sites", type=int, default=20)
    generate.add_argument("--documents", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(handler=_command_generate)

    compare = subparsers.add_parser(
        "compare", help="compare the layered ranking with flat PageRank")
    _add_graph_arguments(compare)
    compare.add_argument("--top", type=int, default=15)
    compare.add_argument("--damping", type=float, default=0.85)
    compare.set_defaults(handler=_command_compare)

    example = subparsers.add_parser(
        "example", help="print the paper's 12-state worked example")
    example.add_argument("--damping", type=float, default=0.85)
    example.set_defaults(handler=_command_example)

    def _add_serving_arguments(sub: argparse.ArgumentParser) -> None:
        _add_graph_arguments(sub)
        sub.add_argument("--damping", type=float, default=0.85)
        sub.add_argument("--cache-size", type=int, default=1024,
                         help="capacity of the query result cache")
        sub.add_argument("--rule", choices=["linear", "rrf"],
                         default="linear",
                         help="query/link combination rule")
        sub.add_argument("--weight", type=float, default=0.5,
                         help="λ of the linear combination")

    serve = subparsers.add_parser(
        "serve", help="serve ranking queries over JSON/HTTP")
    _add_serving_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (0 picks a free port)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then exit "
                            "(default: until interrupted)")
    serve.add_argument("--verbose", action="store_true",
                       help="log requests to stderr")
    serve.set_defaults(handler=_command_serve)

    query = subparsers.add_parser(
        "query", help="answer text queries with combined text+link ranking")
    _add_serving_arguments(query)
    query.add_argument("queries", nargs="+", metavar="QUERY",
                       help="free-text queries (answered as one batch)")
    query.add_argument("--top", type=int, default=10)
    query.set_defaults(handler=_command_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Anticipated failures — missing or malformed input files, invalid
    graphs or parameters — print one ``error:`` line to stderr and return
    :data:`EXIT_ERROR` instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
