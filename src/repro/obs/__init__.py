"""``repro.obs`` — dependency-free telemetry for the whole stack.

One process-local :class:`~repro.obs.registry.MetricsRegistry` (counters,
gauges, fixed-bucket histograms with p50/p90/p99 summaries), lightweight
:func:`span` trace scopes, and a handful of surfaces:

* Prometheus text exposition — :func:`render_prometheus`, served by
  ``RankingHTTPServer`` at ``/metrics``;
* a JSON snapshot — :func:`snapshot`, attached to
  ``RankingResult.provenance`` and rendered by ``repro stats``;
* trace JSON export — ``Ranker.fit(trace="out.json")`` or
  ``repro rank --trace out.json``.

Counters/gauges/histograms are **on by default** (they are a dict update
behind one lock); span *history* is opt-in via
:func:`~repro.obs.trace.enable_tracing`.  :func:`disable` turns everything
off: every recording helper returns after a single module-flag check and
:func:`span` hands back one preallocated null scope, so the disabled path
performs no allocation in the solver or executor hot loops.

Canonical phase names — shared by spans, ``RankingResult.timings``,
``WebRankingResult.timings`` and ``SimulationReport.timings``::

    plan.build      steps 1-2: site aggregation + task construction
    plan.execute    steps 3-4: local DocRank + SiteRank task batch
    plan.compose    step 5: score composition pi_S(s) * pi_D(d)
    fit.total       the whole Ranker.fit() call

Cross-process runs stay consistent: the process executor wraps each task
so workers return their registry deltas alongside results, and the parent
merges them — a process-backend run reports the same solver/task counters
as a serial one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .registry import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    FLOPS_BUCKETS,
    ITERATION_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Sample,
    default_buckets,
    escape_label_value,
    validate_exposition,
)
from .trace import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
)
from .trace import span as _trace_span

__all__ = [
    # switches
    "enable", "disable", "enabled",
    # recording
    "inc", "observe", "set_gauge", "add_gauge", "record_solver", "span",
    # registry access / surfaces
    "registry", "reset", "snapshot", "render_prometheus", "render_table",
    "MetricsRegistry", "Sample", "validate_exposition",
    "escape_label_value", "default_buckets",
    # tracing
    "Tracer", "enable_tracing", "disable_tracing", "current_tracer",
    # phase names
    "PHASE_PLAN_BUILD", "PHASE_PLAN_EXECUTE", "PHASE_PLAN_COMPOSE",
    "PHASE_PLAN_SEGMENTS", "PHASE_FIT",
    # bucket presets
    "LATENCY_BUCKETS", "ITERATION_BUCKETS", "BYTES_BUCKETS",
    "FLOPS_BUCKETS", "COUNT_BUCKETS",
]

#: Canonical phase-name keys (see the module docstring).
PHASE_PLAN_BUILD = "plan.build"
PHASE_PLAN_EXECUTE = "plan.execute"
PHASE_PLAN_COMPOSE = "plan.compose"
PHASE_PLAN_SEGMENTS = "plan.segments"
PHASE_FIT = "fit.total"

_ENABLED = True
_REGISTRY = MetricsRegistry()


# --------------------------------------------------------------------- #
# Switches
# --------------------------------------------------------------------- #
def enable() -> None:
    """Turn telemetry recording on (the default)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn all telemetry recording off (single-branch, zero-allocation)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry recording is on."""
    return _ENABLED


def registry() -> MetricsRegistry:
    """The process-local registry."""
    return _REGISTRY


def reset() -> None:
    """Clear every recorded metric (collectors stay registered)."""
    _REGISTRY.reset()


# --------------------------------------------------------------------- #
# Recording helpers (each checks the switch first)
# --------------------------------------------------------------------- #
def inc(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter when telemetry is enabled."""
    if _ENABLED:
        _REGISTRY.inc(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation when telemetry is enabled."""
    if _ENABLED:
        _REGISTRY.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge when telemetry is enabled."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value, **labels)


def add_gauge(name: str, delta: float, **labels: str) -> None:
    """Add to a gauge when telemetry is enabled."""
    if _ENABLED:
        _REGISTRY.add_gauge(name, delta, **labels)


def record_solver(solver: str, iterations: int, residual: float,
                  converged: bool, *, vectors: int = 1) -> None:
    """Record one solver run (called once per run, after the loop).

    ``vectors`` is the number of solution columns the run advanced per
    matrix sweep (K for a fused multi-vector solve, 1 classically); the
    ``solver_sweeps_per_vector`` gauge is the run's iteration count
    amortised over those columns — the SpMM win made visible.
    """
    if not _ENABLED:
        return
    _REGISTRY.inc("solver_runs_total", 1.0, solver=solver)
    _REGISTRY.inc("solver_iterations_total", float(iterations),
                  solver=solver)
    _REGISTRY.inc("solver_vectors_total", float(max(vectors, 1)),
                  solver=solver)
    _REGISTRY.observe("solver_run_iterations", float(iterations),
                      solver=solver)
    _REGISTRY.set_gauge("solver_last_residual", float(residual),
                        solver=solver)
    _REGISTRY.set_gauge("solver_sweeps_per_vector",
                        float(iterations) / float(max(vectors, 1)),
                        solver=solver)
    if not converged:
        _REGISTRY.inc("solver_nonconverged_total", 1.0, solver=solver)


def span(name: str):
    """A context manager timing one named phase (see :mod:`.trace`)."""
    return _trace_span(name, enabled=_ENABLED)


def _record_phase(name: str, seconds: float) -> None:
    """Span sink: fold a finished span into the phase histogram."""
    if _ENABLED:
        _REGISTRY.observe("phase_seconds", seconds, phase=name)


# --------------------------------------------------------------------- #
# Surfaces
# --------------------------------------------------------------------- #
def snapshot(*, include_collected: bool = True) -> Dict[str, list]:
    """JSON-serialisable snapshot of every metric in the registry."""
    return _REGISTRY.snapshot(include_collected=include_collected)


def render_prometheus() -> str:
    """The registry in Prometheus text exposition format."""
    return _REGISTRY.to_prometheus()


def _format_name(entry: Dict) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{inner}}}"


def render_table(snap: Optional[Dict[str, list]] = None) -> str:
    """A plain-text table of the snapshot (used by ``repro stats``)."""
    if snap is None:
        snap = snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        for entry in snap["counters"]:
            lines.append(f"  {_format_name(entry):56s} "
                         f"{entry['value']:>14g}")
    if snap["gauges"]:
        lines.append("gauges:")
        for entry in snap["gauges"]:
            lines.append(f"  {_format_name(entry):56s} "
                         f"{entry['value']:>14g}")
    if snap["histograms"]:
        lines.append("histograms:"
                     f"{'':48s}{'count':>8s}{'p50':>12s}{'p90':>12s}"
                     f"{'p99':>12s}")
        for entry in snap["histograms"]:
            lines.append(f"  {_format_name(entry):56s}"
                         f"{entry['count']:>9d}"
                         f"{entry['p50']:>12.4g}"
                         f"{entry['p90']:>12.4g}"
                         f"{entry['p99']:>12.4g}")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
