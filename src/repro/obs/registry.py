"""The process-local :class:`MetricsRegistry`: counters, gauges, histograms.

This is the storage half of :mod:`repro.obs`.  Everything is plain Python
and stdlib-only — one lock, three dicts — because the registry sits on the
engine's dispatch path and the serving layer's request path:

* **counters** are monotonic floats (``inc``), keyed by metric name plus a
  sorted label tuple;
* **gauges** are set-or-add floats (``set_gauge`` / ``add_gauge``) for
  point-in-time values such as in-flight requests;
* **histograms** are fixed-bucket (``observe``): each metric family owns
  one bucket boundary tuple, chosen by name suffix (``_seconds``,
  ``_iterations``, ``_bytes``, ``_flops``) or declared explicitly, and the
  p50/p90/p99 summaries are interpolated from the cumulative bucket counts
  at snapshot time, never maintained per observation.

Cross-process support is built from two primitives: :meth:`~MetricsRegistry.checkpoint`
captures the raw internal state, :meth:`~MetricsRegistry.delta_since`
diffs the current state against a checkpoint into a picklable delta, and
:meth:`~MetricsRegistry.merge` adds a delta into another registry.  The
process executor wraps each task with checkpoint/delta in the worker and
merges in the parent, so process-backend runs report the same counters as
serial ones.

Scrape-time *collectors* — callables returning ``(kind, name, labels,
value)`` samples — let subsystems that already keep their own counters
(the serving cache, the score store) appear in snapshots and in the
Prometheus exposition without double accounting.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: A metric identity: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: A collector sample: ``(kind, name, labels, value)`` with *kind* one of
#: ``"counter"`` / ``"gauge"``.
Sample = Tuple[str, str, Dict[str, str], float]

#: Default latency buckets (seconds), Prometheus-style.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Buckets for iteration/sweep counts.
ITERATION_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: Buckets for byte sizes (dispatch payloads).
BYTES_BUCKETS: Tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144,
    1_048_576, 4_194_304, 16_777_216, 67_108_864)

#: Buckets for priced flop estimates (the adaptive cost model's range).
FLOPS_BUCKETS: Tuple[float, ...] = (
    1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11)

#: Buckets for small cardinalities (tasks per batch, blocks per sweep).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: Suffix-driven default bucket choice (checked in order).
_SUFFIX_BUCKETS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("_seconds", LATENCY_BUCKETS),
    ("_iterations", ITERATION_BUCKETS),
    ("_bytes", BYTES_BUCKETS),
    ("_flops", FLOPS_BUCKETS),
)


def default_buckets(name: str) -> Tuple[float, ...]:
    """Bucket boundaries used for a histogram that was never declared."""
    for suffix, buckets in _SUFFIX_BUCKETS:
        if name.endswith(suffix):
            return buckets
    return COUNT_BUCKETS


class _Histogram:
    """Fixed-bucket histogram: cumulative-friendly counts plus sum."""

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        #: Per-bucket counts; the final slot is the ``+Inf`` bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # Prometheus ``le`` semantics: a value equal to a bound belongs to
        # that bound's bucket, which is what bisect_left yields.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile by linear interpolation in its bucket."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if index >= len(self.bounds):
                    # The +Inf bucket has no upper bound to interpolate to.
                    return self.bounds[-1] if self.bounds else 0.0
                upper = self.bounds[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1] if self.bounds else 0.0


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    if not labels:
        return name, ()
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labels_dict(key: MetricKey) -> Dict[str, str]:
    return dict(key[1])


class MetricsRegistry:
    """Thread-safe process-local store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, _Histogram] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add *value* (default 1) to a monotonic counter."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge to *value*."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def add_gauge(self, name: str, delta: float, **labels: str) -> None:
        """Add *delta* to a gauge (for in-flight style up/down counts)."""
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = self._gauges.get(key, 0.0) + delta

    def declare_histogram(self, name: str,
                          buckets: Tuple[float, ...]) -> None:
        """Fix a histogram family's bucket boundaries explicitly."""
        bounds = tuple(float(b) for b in buckets)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must strictly increase")
        with self._lock:
            self._buckets[name] = bounds

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into a histogram."""
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                bounds = self._buckets.get(name) or default_buckets(name)
                histogram = self._histograms[key] = _Histogram(bounds)
            histogram.observe(float(value))

    # ------------------------------------------------------------------ #
    # Scrape-time collectors
    # ------------------------------------------------------------------ #
    def add_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Register a callable sampled at snapshot/exposition time."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def remove_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Unregister a collector (no-op when absent)."""
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _collected(self) -> List[Sample]:
        with self._lock:
            collectors = list(self._collectors)
        samples: List[Sample] = []
        for fn in collectors:
            samples.extend(fn())
        return samples

    # ------------------------------------------------------------------ #
    # Cross-process deltas
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> Dict[str, dict]:
        """Capture the raw internal state (for a later :meth:`delta_since`)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {key: (list(h.counts), h.sum)
                               for key, h in self._histograms.items()},
            }

    def delta_since(self, mark: Dict[str, dict]) -> Dict[str, dict]:
        """The picklable difference between now and a :meth:`checkpoint`."""
        delta: Dict[str, dict] = {"counters": {}, "gauges": {},
                                  "histograms": {}}
        with self._lock:
            for key, value in self._counters.items():
                change = value - mark["counters"].get(key, 0.0)
                if change:
                    delta["counters"][key] = change
            for key, value in self._gauges.items():
                if value != mark["gauges"].get(key):
                    delta["gauges"][key] = value
            for key, histogram in self._histograms.items():
                before = mark["histograms"].get(key)
                counts = list(histogram.counts)
                total_sum = histogram.sum
                if before is not None:
                    counts = [c - b for c, b in zip(counts, before[0])]
                    total_sum -= before[1]
                if any(counts):
                    delta["histograms"][key] = (tuple(histogram.bounds),
                                                counts, total_sum)
        return delta

    def merge(self, delta: Dict[str, dict]) -> None:
        """Fold a :meth:`delta_since` delta into this registry."""
        with self._lock:
            for key, change in delta.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + change
            for key, value in delta.get("gauges", {}).items():
                self._gauges[key] = value
            for key, (bounds, counts, total_sum) in \
                    delta.get("histograms", {}).items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(
                        tuple(bounds))
                for index, count in enumerate(counts):
                    histogram.counts[index] += count
                added = sum(counts)
                histogram.total += added
                histogram.sum += total_sum

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: str) -> float:
        """Current value of one gauge (0.0 when never set)."""
        with self._lock:
            return self._gauges.get(_key(name, labels), 0.0)

    def snapshot(self, *, include_collected: bool = True) -> Dict[str, list]:
        """A JSON-serialisable view of every metric.

        Histograms carry their count/sum plus interpolated p50/p90/p99
        summaries and the cumulative bucket table.
        """
        with self._lock:
            counters = [{"name": key[0], "labels": _labels_dict(key),
                         "value": value}
                        for key, value in sorted(self._counters.items())]
            gauges = [{"name": key[0], "labels": _labels_dict(key),
                       "value": value}
                      for key, value in sorted(self._gauges.items())]
            histograms = []
            for key, histogram in sorted(self._histograms.items()):
                cumulative = 0
                buckets = []
                for bound, count in zip(histogram.bounds, histogram.counts):
                    cumulative += count
                    buckets.append([bound, cumulative])
                histograms.append({
                    "name": key[0], "labels": _labels_dict(key),
                    "count": histogram.total, "sum": histogram.sum,
                    "p50": histogram.quantile(0.50),
                    "p90": histogram.quantile(0.90),
                    "p99": histogram.quantile(0.99),
                    "buckets": buckets,
                })
        if include_collected:
            for kind, name, labels, value in self._collected():
                entry = {"name": name, "labels": dict(labels),
                         "value": float(value)}
                (counters if kind == "counter" else gauges).append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        """Drop every recorded value (collectors stay registered)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------ #
    # Prometheus text exposition
    # ------------------------------------------------------------------ #
    def to_prometheus(self, *, prefix: str = "repro_") -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: List[str] = []
        snap = self.snapshot()
        seen_types: Dict[str, str] = {}

        def full(name: str) -> str:
            return name if name.startswith(prefix) else prefix + name

        def emit_type(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types[name] = kind
                lines.append(f"# HELP {name} repro {kind}")
                lines.append(f"# TYPE {name} {kind}")

        for entry in snap["counters"]:
            name = full(entry["name"])
            emit_type(name, "counter")
            lines.append(f"{name}{_render_labels(entry['labels'])} "
                         f"{_render_value(entry['value'])}")
        for entry in snap["gauges"]:
            name = full(entry["name"])
            emit_type(name, "gauge")
            lines.append(f"{name}{_render_labels(entry['labels'])} "
                         f"{_render_value(entry['value'])}")
        for entry in snap["histograms"]:
            name = full(entry["name"])
            emit_type(name, "histogram")
            for bound, cumulative in entry["buckets"]:
                labels = dict(entry["labels"])
                labels["le"] = _render_value(float(bound))
                lines.append(f"{name}_bucket{_render_labels(labels)} "
                             f"{cumulative}")
            inf_labels = dict(entry["labels"])
            inf_labels["le"] = "+Inf"
            lines.append(f"{name}_bucket{_render_labels(inf_labels)} "
                         f"{entry['count']}")
            lines.append(f"{name}_sum{_render_labels(entry['labels'])} "
                         f"{_render_value(entry['sum'])}")
            lines.append(f"{name}_count{_render_labels(entry['labels'])} "
                         f"{entry['count']}")
        return "\n".join(lines) + "\n" if lines else ""


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# --------------------------------------------------------------------- #
# Exposition validation (used by the CI scrape smoke test)
# --------------------------------------------------------------------- #
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\",?)*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [0-9]+)?$")


def validate_exposition(text: str) -> None:
    """Raise ``ValueError`` when *text* is not valid Prometheus exposition.

    Checks the properties a scraper depends on: every non-comment line
    parses as ``name{labels} value``, metric names are legal, label values
    are properly quoted/escaped, ``# TYPE`` declarations are well-formed
    and precede their samples, and the payload ends with a newline.
    """
    if not text:
        raise ValueError("empty exposition payload")
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    declared: Dict[str, str] = {}
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if not _METRIC_NAME_RE.fullmatch(parts[2]):
                raise ValueError(
                    f"line {lineno}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(
                        f"line {lineno}: bad TYPE declaration {line!r}")
                declared[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                family = name[:-len(suffix)]
                break
        if declared and family not in declared and name not in declared:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration")


__all__ = [
    "MetricsRegistry",
    "Sample",
    "LATENCY_BUCKETS",
    "ITERATION_BUCKETS",
    "BYTES_BUCKETS",
    "FLOPS_BUCKETS",
    "COUNT_BUCKETS",
    "default_buckets",
    "escape_label_value",
    "validate_exposition",
]
