"""Lightweight trace spans for :mod:`repro.obs`.

A *span* is a named, possibly nested timing scope::

    with obs.span("plan.execute"):
        ...

Two sinks exist, both optional:

* the **phase histogram** — every finished span records its duration into
  the ``phase_seconds`` histogram of the process registry (cheap, on by
  default with the rest of the counters);
* the **span history** — when a :class:`Tracer` is active (opt-in via
  :func:`enable_tracing` or ``Ranker.fit(trace=...)``), finished spans are
  appended to it with start/end offsets, nesting depth, parent name and
  thread, and the whole history exports to JSON.

When telemetry is disabled *and* no tracer is active, :func:`span` returns
a single preallocated null scope — entering a span allocates nothing, so
the solver and executor hot paths pay only one branch.

Trace JSON schema (``version`` 1)::

    {
      "version": 1,
      "unit": "seconds",
      "spans": [
        {"name": "fit.total", "start": 0.0, "end": 1.25,
         "seconds": 1.25, "parent": null, "depth": 0,
         "thread": "MainThread"},
        ...
      ]
    }

``start`` / ``end`` are offsets from the tracer's creation (monotonic
clock), not wall-clock timestamps.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import Any, Dict, List, Optional

__all__ = [
    "Tracer",
    "enable_tracing",
    "disable_tracing",
    "current_tracer",
    "span",
]


class Tracer:
    """Collects finished spans; thread-safe; exports to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0 = perf_counter()
        self.spans: List[Dict[str, Any]] = []

    def record(self, name: str, started: float, ended: float,
               parent: Optional[str], depth: int) -> None:
        """Append one finished span (times are raw ``perf_counter`` values)."""
        entry = {
            "name": name,
            "start": started - self._t0,
            "end": ended - self._t0,
            "seconds": ended - started,
            "parent": parent,
            "depth": depth,
            "thread": threading.current_thread().name,
        }
        with self._lock:
            self.spans.append(entry)

    def to_json(self) -> Dict[str, Any]:
        """The trace as a JSON-serialisable dict (schema version 1)."""
        with self._lock:
            spans = list(self.spans)
        return {"version": 1, "unit": "seconds", "spans": spans}

    def export(self, path: str) -> None:
        """Write :meth:`to_json` to *path* as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")


# The active tracer (None = span history off) and the per-thread span
# stack used to reconstruct parent/depth for nested scopes.
_TRACER: Optional[Tracer] = None
_STACK = threading.local()


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Activate span-history collection; returns the active tracer."""
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    _TRACER = tracer
    return tracer


def disable_tracing() -> Optional[Tracer]:
    """Deactivate span history; returns the tracer that was active."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    """The active :class:`Tracer`, or ``None``."""
    return _TRACER


class _Span:
    """A live span scope; ``seconds`` holds the duration after exit."""

    __slots__ = ("name", "_started", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Span":
        stack = getattr(_STACK, "frames", None)
        if stack is None:
            stack = _STACK.frames = []
        stack.append(self.name)
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = perf_counter()
        self.seconds = ended - self._started
        stack = _STACK.frames
        stack.pop()
        from . import _record_phase  # late import: obs package init order
        _record_phase(self.name, self.seconds)
        tracer = _TRACER
        if tracer is not None:
            parent = stack[-1] if stack else None
            tracer.record(self.name, self._started, ended, parent,
                          len(stack))


class _NullSpan:
    """The disabled-path span: a shared, allocation-free no-op scope."""

    __slots__ = ()
    name = ""
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, *, enabled: bool = True) -> Any:
    """A context manager timing one named phase.

    Returns the shared null scope when *enabled* is false (the caller
    passes the package-level telemetry switch) and no tracer is active.
    """
    if not enabled and _TRACER is None:
        return _NULL_SPAN
    return _Span(name)
