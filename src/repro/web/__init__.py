"""Web application layer: DocGraph, SiteGraph, SiteRank, DocRank, pipeline."""

from .diagnostics import GraphDiagnostics, SiteDiagnostics, diagnose
from .docgraph import DocGraph, Document
from .docrank import (
    LocalDocRank,
    SiteColumns,
    all_local_docranks,
    local_docrank,
    solve_local_columns,
)
from .incremental import IncrementalLayeredRanker, UpdateReport
from .pipeline import (
    SegmentPreferences,
    WebRankingResult,
    build_segment_preferences,
    lmm_from_docgraph,
    solve_segment_columns,
)
from .sitegraph import SiteGraph, aggregate_sitegraph
from .siterank import SiteRankResult, siterank
from .url import (
    ParsedURL,
    is_dynamic_url,
    make_site_extractor,
    normalize_url,
    parse_url,
    site_of,
)

__all__ = [
    "GraphDiagnostics",
    "SiteDiagnostics",
    "diagnose",
    "DocGraph",
    "Document",
    "IncrementalLayeredRanker",
    "UpdateReport",
    "LocalDocRank",
    "SiteColumns",
    "all_local_docranks",
    "local_docrank",
    "solve_local_columns",
    "SegmentPreferences",
    "WebRankingResult",
    "build_segment_preferences",
    "lmm_from_docgraph",
    "solve_segment_columns",
    "SiteGraph",
    "aggregate_sitegraph",
    "SiteRankResult",
    "siterank",
    "ParsedURL",
    "is_dynamic_url",
    "make_site_extractor",
    "normalize_url",
    "parse_url",
    "site_of",
]
