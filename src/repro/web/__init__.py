"""Web application layer: DocGraph, SiteGraph, SiteRank, DocRank, pipeline."""

from .diagnostics import GraphDiagnostics, SiteDiagnostics, diagnose
from .docgraph import DocGraph, Document
from .docrank import LocalDocRank, all_local_docranks, local_docrank
from .incremental import IncrementalLayeredRanker, UpdateReport
from .pipeline import (
    WebRankingResult,
    flat_pagerank_ranking,
    layered_docrank,
    lmm_from_docgraph,
)
from .sitegraph import SiteGraph, aggregate_sitegraph
from .siterank import SiteRankResult, siterank
from .url import (
    ParsedURL,
    is_dynamic_url,
    make_site_extractor,
    normalize_url,
    parse_url,
    site_of,
)

__all__ = [
    "GraphDiagnostics",
    "SiteDiagnostics",
    "diagnose",
    "DocGraph",
    "Document",
    "IncrementalLayeredRanker",
    "UpdateReport",
    "LocalDocRank",
    "all_local_docranks",
    "local_docrank",
    "WebRankingResult",
    "flat_pagerank_ranking",
    "layered_docrank",
    "lmm_from_docgraph",
    "SiteGraph",
    "aggregate_sitegraph",
    "SiteRankResult",
    "siterank",
    "ParsedURL",
    "is_dynamic_url",
    "make_site_extractor",
    "normalize_url",
    "parse_url",
    "site_of",
]
