"""Structural diagnostics of a web graph.

A search-engine operator adopting the layered method wants to know, before
ranking, what the crawl looks like: how many dangling pages, whether the
graph has rank sinks, how skewed the in-degree distribution is, which sites
look like link-farm agglomerations.  These diagnostics are exactly the
observations Section 3.3 of the paper makes informally ("further
investigation shows that all of them have a huge in-degree number", "most of
its originating pages have the same URL prefix").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..exceptions import GraphStructureError
from ..markov.classification import rank_sinks
from .docgraph import DocGraph
from .sitegraph import aggregate_sitegraph


@dataclass
class SiteDiagnostics:
    """Per-site structural statistics.

    Attributes
    ----------
    site:
        Site identifier.
    n_documents:
        Number of documents of the site.
    internal_links:
        DocLinks whose both endpoints are in the site.
    outgoing_links / incoming_links:
        DocLinks crossing the site boundary, per direction.
    dynamic_fraction:
        Fraction of the site's documents that are dynamically generated.
    insularity:
        ``internal / (internal + outgoing)`` — how self-referential the
        site's linking is.  Link-farm agglomerations sit near 1.0.
    link_density:
        Internal links per document.
    """

    site: str
    n_documents: int
    internal_links: int
    outgoing_links: int
    incoming_links: int
    dynamic_fraction: float
    insularity: float
    link_density: float


@dataclass
class GraphDiagnostics:
    """Whole-graph structural statistics plus the per-site breakdown."""

    n_documents: int
    n_links: int
    n_sites: int
    n_dangling: int
    n_rank_sinks: int
    largest_rank_sink: int
    max_in_degree: int
    mean_in_degree: float
    in_degree_gini: float
    dynamic_fraction: float
    sites: List[SiteDiagnostics] = field(default_factory=list)

    def suspicious_sites(self, *, min_documents: int = 20,
                         min_insularity: float = 0.95,
                         min_link_density: float = 5.0) -> List[SiteDiagnostics]:
        """Sites that look like link-farm agglomerations.

        The heuristic flags sites that are large, almost entirely
        self-referential and densely interlinked — the combination that
        inflates flat PageRank (Figure 3) and that the layered method caps.
        """
        return [site for site in self.sites
                if site.n_documents >= min_documents
                and site.insularity >= min_insularity
                and site.link_density >= min_link_density]


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 = equal, →1 = skewed)."""
    if values.size == 0:
        return 0.0
    sorted_values = np.sort(values.astype(float))
    total = sorted_values.sum()
    if total == 0:
        return 0.0
    n = sorted_values.size
    cumulative = np.cumsum(sorted_values)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)


def diagnose(docgraph: DocGraph) -> GraphDiagnostics:
    """Compute whole-graph and per-site diagnostics for *docgraph*."""
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot diagnose an empty DocGraph")
    adjacency = docgraph.adjacency()
    in_degrees = np.asarray(adjacency.sum(axis=0)).ravel()
    out_degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    sinks = rank_sinks(adjacency)

    site_of_doc = {document.doc_id: document.site
                   for document in docgraph.documents()}
    internal: Dict[str, int] = {site: 0 for site in docgraph.sites()}
    outgoing: Dict[str, int] = {site: 0 for site in docgraph.sites()}
    incoming: Dict[str, int] = {site: 0 for site in docgraph.sites()}
    for source, target in docgraph.edges():
        source_site = site_of_doc[source]
        target_site = site_of_doc[target]
        if source_site == target_site:
            internal[source_site] += 1
        else:
            outgoing[source_site] += 1
            incoming[target_site] += 1

    dynamic_by_site: Dict[str, int] = {site: 0 for site in docgraph.sites()}
    for document in docgraph.documents():
        if document.is_dynamic:
            dynamic_by_site[document.site] += 1

    sites = []
    for site in docgraph.sites():
        n_docs = len(docgraph.documents_of_site(site))
        boundary = internal[site] + outgoing[site]
        sites.append(SiteDiagnostics(
            site=site,
            n_documents=n_docs,
            internal_links=internal[site],
            outgoing_links=outgoing[site],
            incoming_links=incoming[site],
            dynamic_fraction=dynamic_by_site[site] / n_docs,
            insularity=(internal[site] / boundary) if boundary else 0.0,
            link_density=internal[site] / n_docs,
        ))

    n_dynamic = sum(1 for document in docgraph.documents()
                    if document.is_dynamic)
    return GraphDiagnostics(
        n_documents=docgraph.n_documents,
        n_links=docgraph.n_links,
        n_sites=docgraph.n_sites,
        n_dangling=int(np.sum(out_degrees == 0)),
        n_rank_sinks=len(sinks),
        largest_rank_sink=max((len(sink) for sink in sinks), default=0),
        max_in_degree=int(in_degrees.max()),
        mean_in_degree=float(in_degrees.mean()),
        in_degree_gini=_gini(in_degrees),
        dynamic_fraction=n_dynamic / docgraph.n_documents,
        sites=sites,
    )
