"""SiteRank: ranking the web sites of a SiteGraph (Section 3.2, Step 4).

The SiteRank is the principal eigenvector of the primitive transition matrix
``M̂(G_S)`` derived from the SiteGraph — i.e. PageRank applied at site
granularity.  Its computation is "of a comparably low complexity" (the
SiteGraph has orders of magnitude fewer nodes than the DocGraph) and can be
performed centrally or shared among peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ValidationError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank
from .sitegraph import SiteGraph


@dataclass
class SiteRankResult:
    """SiteRank scores over the sites of a SiteGraph.

    Attributes
    ----------
    sites:
        Site identifiers, aligned with *scores*.
    scores:
        The SiteRank probability distribution ``π_S``.
    iterations:
        Power iterations used.
    damping:
        Damping factor of the underlying PageRank run.
    """

    sites: List[str]
    scores: np.ndarray
    iterations: int
    damping: float = DEFAULT_DAMPING
    _index: Dict[str, int] = field(init=False, repr=False,
                                   default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.sites) != self.scores.size:
            raise ValidationError("sites and scores must align")
        self._index = {site: i for i, site in enumerate(self.sites)}

    def score_of(self, site: str) -> float:
        """SiteRank value ``π_S(s)`` of one site."""
        try:
            return float(self.scores[self._index[site]])
        except KeyError:
            raise ValidationError(f"unknown site {site!r}") from None

    def as_dict(self) -> Dict[str, float]:
        """Mapping from site identifier to SiteRank value."""
        return {site: float(score)
                for site, score in zip(self.sites, self.scores)}

    def top_k(self, k: int) -> List[str]:
        """The ``k`` highest-ranked sites, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [self.sites[int(i)] for i in order[:k]]


def siterank(sitegraph: SiteGraph, damping: float = DEFAULT_DAMPING, *,
             preference: Optional[np.ndarray] = None,
             tol: float = DEFAULT_TOL,
             max_iter: int = DEFAULT_MAX_ITER,
             start: Optional[np.ndarray] = None) -> SiteRankResult:
    """Compute the SiteRank of a SiteGraph.

    Parameters
    ----------
    sitegraph:
        The aggregated site-level graph; edge weights are SiteLink counts.
    damping:
        Damping factor of the underlying PageRank computation (``M̂(G_S)``
        is primitive for any damping < 1, as Theorem 2 requires).
    preference:
        Optional personalisation distribution over sites — this is exactly
        where site-layer personalisation (Section 3.2) plugs in.
    start:
        Optional warm-start distribution in site order (e.g. a previously
        converged SiteRank); uniform when omitted.
    """
    from ..engine.calibrate import dense_cutoff

    result = pagerank(sitegraph.adjacency, damping=damping,
                      preference=preference, tol=tol, max_iter=max_iter,
                      method="dense" if sitegraph.n_sites <= dense_cutoff()
                      else "sparse",
                      start=start, record_residuals=False)
    return SiteRankResult(sites=list(sitegraph.sites), scores=result.scores,
                          iterations=result.iterations, damping=damping)
