"""Local DocRank: ranking the documents *within* one web site (Step 3).

"For each Web site s, derive the subgraph G^s_d, its matrix representation
M̂^s_d = M̂(G^s_d) and compute its π_D(s) = DocRank(M̂^s_d) using the classical
PageRank algorithm.  This step can be completely decentralized in a
peer-to-peer search system."

A local DocRank only ever looks at the intra-site links of its own site, so
every site's computation is independent — the property the distributed
simulation (:mod:`repro.distributed`) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ValidationError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank
from .docgraph import DocGraph


@dataclass
class LocalDocRank:
    """The DocRank of one site's local document collection.

    Attributes
    ----------
    site:
        The owning web site.
    doc_ids:
        Global document ids in local order (the order of *scores*).
    scores:
        Local DocRank distribution ``π_D(s)`` over the site's documents.
    iterations:
        Power iterations used for this site.
    """

    site: str
    doc_ids: List[int]
    scores: np.ndarray
    iterations: int
    _position: Dict[int, int] = field(init=False, repr=False,
                                      default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.doc_ids) != self.scores.size:
            raise ValidationError("doc_ids and scores must align")
        self._position = {doc_id: i for i, doc_id in enumerate(self.doc_ids)}

    @property
    def n_documents(self) -> int:
        """Number of documents of the site."""
        return len(self.doc_ids)

    def score_of(self, doc_id: int) -> float:
        """Local DocRank value of a global document id."""
        try:
            return float(self.scores[self._position[doc_id]])
        except KeyError:
            raise ValidationError(
                f"document {doc_id} does not belong to site {self.site!r}"
            ) from None

    def top_k(self, k: int) -> List[int]:
        """The ``k`` best documents of the site (global ids), best first.

        For ``k ≪ n`` (the serving layer's per-shard rebuild pattern) this
        avoids a full ``O(n log n)`` sort: an ``O(n)`` partition finds the
        k-th score, only the candidates at or above it are sorted, and
        ties are broken by local position exactly like the historical full
        ``np.lexsort`` — including ties *across* the cut, which the
        candidate set keeps in full so the deterministic tie-break decides
        them, not the partition's arbitrary placement.
        """
        n = self.scores.size
        if k <= 0:
            return []
        if k < n:
            cutoff = np.partition(self.scores, n - k)[n - k]
            candidates = np.flatnonzero(self.scores >= cutoff)
            order = candidates[np.lexsort((candidates,
                                           -self.scores[candidates]))]
        else:
            order = np.lexsort((np.arange(n), -self.scores))
        return [self.doc_ids[int(i)] for i in order[:k]]


@dataclass
class SiteColumns:
    """Per-segment local DocRank columns of one site (multi-vector solve).

    The K-column sibling of :class:`LocalDocRank`: ``columns[:, k]`` is the
    site's local stationary distribution under preference column ``k``.
    Produced by :func:`solve_local_columns` and by the engine's fused
    multi-vector batches.
    """

    site: str
    doc_ids: List[int]
    columns: np.ndarray
    iterations: int

    def __post_init__(self) -> None:
        self.columns = np.asarray(self.columns, dtype=float)
        if self.columns.ndim != 2 or len(self.doc_ids) != self.columns.shape[0]:
            raise ValidationError("doc_ids and columns must align")

    @property
    def n_documents(self) -> int:
        """Number of documents of the site."""
        return len(self.doc_ids)

    @property
    def n_vectors(self) -> int:
        """Number of preference columns solved."""
        return int(self.columns.shape[1])

    def column(self, index: int) -> np.ndarray:
        """One segment's local distribution (view, in local doc order)."""
        return self.columns[:, index]


def solve_local_columns(site: str, local_adjacency, doc_ids: List[int],
                        preference: np.ndarray,
                        damping: float = DEFAULT_DAMPING, *,
                        tol: float = DEFAULT_TOL,
                        max_iter: int = DEFAULT_MAX_ITER,
                        start: Optional[np.ndarray] = None) -> SiteColumns:
    """Solve one site's local DocRank for K preference columns in one pass.

    The multi-vector kernel behind segment personalisation: *preference* is
    an ``(n, K)`` matrix and the site is solved as a single-block fused
    multi-vector power iteration (:func:`repro.linalg.block_solver.solve_blocks`)
    — one matrix sweep advances all K segment columns.
    """
    from ..linalg.block_solver import pack_blocks, solve_blocks

    preference = np.asarray(preference, dtype=float)
    if preference.ndim != 2 or preference.shape[0] != len(doc_ids):
        raise ValidationError(
            f"preference for site {site!r} must be ({len(doc_ids)}, K), "
            f"got shape {preference.shape!r}")
    packed = pack_blocks([(local_adjacency, start, preference)])
    result = solve_blocks(packed, damping, tol=tol, max_iter=max_iter)
    columns = result.vectors[0]
    if columns.ndim == 1:  # K == 1 degenerates to the classic path
        columns = columns[:, None]
    return SiteColumns(site=site, doc_ids=list(doc_ids), columns=columns,
                       iterations=int(np.max(result.iterations)))


def solve_local_docrank(site: str, local_adjacency, doc_ids: List[int],
                        damping: float = DEFAULT_DAMPING, *,
                        preference: Optional[np.ndarray] = None,
                        tol: float = DEFAULT_TOL,
                        max_iter: int = DEFAULT_MAX_ITER,
                        start: Optional[np.ndarray] = None) -> LocalDocRank:
    """Solve one site's local DocRank from its already-extracted subgraph.

    This is the pure computational kernel shared by :func:`local_docrank`
    and the execution engine's per-site tasks
    (:class:`repro.engine.plan.LocalRankTask`): it touches no
    :class:`DocGraph`, only the picklable ``(adjacency, doc_ids)`` pair, so
    it can run unchanged on the calling thread, a pool thread, or a worker
    process.
    """
    from ..engine.calibrate import dense_cutoff

    if preference is not None:
        preference = np.asarray(preference, dtype=float)
        if preference.size != len(doc_ids):
            raise ValidationError(
                f"preference for site {site!r} has length {preference.size}, "
                f"expected {len(doc_ids)}")
    # The dense/sparse switch is the calibrated cut-off (historically the
    # hardcoded 2000); residual histories stay off — this is an engine hot
    # path and LocalDocRank does not carry them anyway.
    result = pagerank(local_adjacency, damping=damping, preference=preference,
                      tol=tol, max_iter=max_iter,
                      method="dense" if len(doc_ids) <= dense_cutoff()
                      else "sparse",
                      start=start, record_residuals=False)
    return LocalDocRank(site=site, doc_ids=list(doc_ids),
                        scores=result.scores, iterations=result.iterations)


def local_docrank(docgraph: DocGraph, site: str,
                  damping: float = DEFAULT_DAMPING, *,
                  preference: Optional[np.ndarray] = None,
                  tol: float = DEFAULT_TOL,
                  max_iter: int = DEFAULT_MAX_ITER,
                  start: Optional[np.ndarray] = None) -> LocalDocRank:
    """Compute the local DocRank of a single site.

    Parameters
    ----------
    docgraph:
        The global DocGraph (only the site's local subgraph is used).
    site:
        Site identifier.
    preference:
        Optional personalisation distribution over the site's documents (in
        local order) — document-layer personalisation of Section 3.2.
    start:
        Optional warm-start distribution in local order (e.g. the site's
        previously converged vector); uniform when omitted.
    """
    local_adjacency, doc_ids = docgraph.local_adjacency(site)
    return solve_local_docrank(site, local_adjacency, doc_ids, damping,
                               preference=preference, tol=tol,
                               max_iter=max_iter, start=start)


def all_local_docranks(docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                       preferences: Optional[Dict[str, np.ndarray]] = None,
                       tol: float = DEFAULT_TOL,
                       max_iter: int = DEFAULT_MAX_ITER,
                       executor=None, n_jobs: Optional[int] = None,
                       warm=None,
                       batch_sites: bool = True) -> Dict[str, LocalDocRank]:
    """Compute the local DocRank of every site of a DocGraph.

    The per-site computations are mutually independent (the paper's
    decentralisability claim), so they are dispatched through the execution
    engine: pass ``n_jobs`` or an ``executor`` to run them concurrently;
    the default remains a serial in-order run with identical results.  A
    process backend ships the per-site matrices through the engine's
    shared-memory arena (one segment per batch, attached zero-copy by the
    workers) rather than pickling them.

    Parameters
    ----------
    executor / n_jobs:
        Execution backend selection, resolved by
        :func:`repro.engine.resolve_executor` (serial when both omitted).
    warm:
        Optional :class:`repro.engine.WarmStartState` supplying previously
        converged vectors to resume from.
    batch_sites:
        Fuse small sites into block-diagonal batched tasks solved by one
        power iteration with per-site convergence freezing
        (:mod:`repro.linalg.block_solver`) — the default, and the path
        that makes many-small-sites webs fast.  ``False`` keeps the
        historical one-solver-per-site reference path.
    """
    from ..engine.plan import execute_site_tasks, site_tasks_for

    preferences = preferences or {}
    tasks = site_tasks_for(docgraph, damping, preferences=preferences,
                           tol=tol, max_iter=max_iter, warm=warm)
    results = execute_site_tasks(tasks, executor=executor, n_jobs=n_jobs,
                                 batch_sites=batch_sites)
    return {result.site: result for result in results}
