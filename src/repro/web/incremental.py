"""Incremental maintenance of the layered DocRank.

A practical consequence of the Partition Theorem that the paper's
architecture section hints at ("its value changes less rapidly" about the
shared SiteRank): when the web changes, the layered ranking can be repaired
with work proportional to the *changed part*, not the whole web:

* if only a site's **internal** link structure changed, only that site's
  local DocRank needs recomputation — the SiteRank and every other site's
  vector are untouched;
* if **inter-site** links changed, the (tiny) SiteRank is recomputed and all
  existing local DocRanks are reused;
* the final composition is always a single O(N_D) multiplication pass.

:class:`IncrementalLayeredRanker` keeps the per-site vectors and the
SiteRank cached, applies targeted updates, and can report how much work each
update needed compared to ranking from scratch — the quantity the
incremental-update ablation benchmark measures.  Flat PageRank has no such
decomposition: any change invalidates the single global vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ..exceptions import GraphStructureError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from .docgraph import DocGraph
from .docrank import LocalDocRank, SiteColumns
from .pipeline import (
    SITERANK_BLOCK,
    SegmentPreferences,
    WebRankingResult,
    build_segment_preferences,
    compose_ranking,
    ensure_site_columns,
)
from .sitegraph import SiteGraph, aggregate_sitegraph
from .siterank import SiteRankResult


@dataclass
class UpdateReport:
    """What one incremental update had to recompute.

    Attributes
    ----------
    recomputed_sites:
        Sites whose local DocRank was recomputed.
    siterank_recomputed:
        Whether the SiteRank had to be recomputed.
    local_iterations:
        Power iterations spent in the recomputed local DocRanks.
    siterank_iterations:
        Power iterations spent on the SiteRank (0 when reused).
    documents_recomputed:
        Number of documents whose local vector was recomputed.
    documents_total:
        Total documents in the graph after the update.
    """

    recomputed_sites: List[str]
    siterank_recomputed: bool
    local_iterations: int
    siterank_iterations: int
    documents_recomputed: int
    documents_total: int
    #: Power iterations spent re-solving personalisation segment columns
    #: (0 when the ranker maintains no segments).
    segment_iterations: int = 0

    @property
    def recompute_fraction(self) -> float:
        """Fraction of the corpus whose local ranking was recomputed."""
        if self.documents_total == 0:
            return 0.0
        return self.documents_recomputed / self.documents_total


#: Signature of an update-notification callback (see
#: :meth:`IncrementalLayeredRanker.subscribe`).
UpdateListener = Callable[[UpdateReport], None]


class IncrementalLayeredRanker:
    """Maintains a layered DocRank over a mutable :class:`DocGraph`.

    The ranker owns the graph reference; callers mutate the graph through
    the ranker's ``add_*`` methods (or mutate it directly and then call
    :meth:`refresh` with the affected sites), and read the current ranking
    with :meth:`ranking`.
    """

    def __init__(self, docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                 site_damping: Optional[float] = None,
                 include_site_self_links: bool = False,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER,
                 executor=None, n_jobs: Optional[int] = None,
                 batch_sites: bool = True,
                 personalization: Optional[Mapping] = None) -> None:
        from ..engine.executor import resolve_executor

        if docgraph.n_documents == 0:
            raise GraphStructureError(
                "cannot build an incremental ranker over an empty DocGraph")
        self._docgraph = docgraph
        self._damping = damping
        self._site_damping = site_damping if site_damping is not None else damping
        self._include_site_self_links = include_site_self_links
        self._tol = tol
        self._max_iter = max_iter
        #: Whether refresh batches (and the initial build) fuse small sites
        #: into block-diagonal batched tasks (repro.linalg.block_solver).
        self._batch_sites = bool(batch_sites)
        # All (re)computations — the initial build, refresh batches and
        # full rebuilds — are dispatched through one engine executor, so a
        # ranker over many sites repairs a multi-site change concurrently.
        self._executor, self._owns_executor = resolve_executor(executor,
                                                               n_jobs)
        self._local: Dict[str, LocalDocRank] = {}
        self._siterank: Optional[SiteRankResult] = None
        self._listeners: List[UpdateListener] = []
        #: Declarative segment spec (the RankingConfig shape); the solved
        #: per-site columns and segment-level SiteRank columns are cached
        #: alongside the base factors and repaired by the same refreshes.
        self._personalization = (dict(personalization) if personalization
                                 else None)
        self._segments: Optional[SegmentPreferences] = None
        self._local_columns: Dict[str, SiteColumns] = {}
        self._segment_site_state: Optional[
            Tuple[Tuple[str, ...], np.ndarray]] = None
        # Packed-CSR reuse across refresh batches: a refresh's segment
        # batch shares the base batch's block-diagonal matrix, and a
        # structurally unchanged chunk skips repacking entirely (see
        # BatchedSiteTask.from_tasks).
        self._pack_cache: Dict = {}
        self.full_rebuild()

    @classmethod
    def _create(cls, *args, **kwargs) -> "IncrementalLayeredRanker":
        """Build a ranker (alias retained from the 1.x facade plumbing)."""
        return cls(*args, **kwargs)

    def close(self) -> None:
        """Release the engine executor if this ranker created it."""
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "IncrementalLayeredRanker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Update notifications
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: UpdateListener) -> UpdateListener:
        """Register a callback invoked after every completed update.

        The listener receives the :class:`UpdateReport` of each
        :meth:`refresh` / :meth:`full_rebuild` (and therefore of every
        ``add_*`` mutation) once the cached factors are consistent again —
        the hook the serving layer uses to invalidate exactly the affected
        shards and cache entries.  Returns the listener so the call can be
        used as a decorator.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: UpdateListener) -> None:
        """Remove a previously registered listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, report: UpdateReport) -> UpdateReport:
        for listener in list(self._listeners):
            listener(report)
        return report

    # ------------------------------------------------------------------ #
    # Full and partial recomputation
    # ------------------------------------------------------------------ #
    def full_rebuild(self) -> UpdateReport:
        """Recompute everything from scratch (construction and fallback).

        The rebuild runs as one cold-started :class:`~repro.engine.plan.RankingPlan`
        batch through the ranker's executor; it deliberately ignores any
        cached vectors so its cost is the honest from-scratch baseline the
        incremental reports are compared against.
        """
        from ..engine.plan import RankingPlan

        plan = RankingPlan.from_docgraph(
            self._docgraph, self._damping, site_damping=self._site_damping,
            include_site_self_links=self._include_site_self_links,
            tol=self._tol, max_iter=self._max_iter,
            batch_sites=self._batch_sites)
        execution = plan.execute(executor=self._executor)
        self._siterank = execution.siterank
        self._local = dict(execution.local)
        segment_iterations = (self._rebuild_segments()
                              if self._personalization else 0)
        return self._notify(UpdateReport(
            recomputed_sites=list(self._local),
            siterank_recomputed=True,
            local_iterations=sum(rank.iterations
                                 for rank in self._local.values()),
            siterank_iterations=self._siterank.iterations,
            documents_recomputed=self._docgraph.n_documents,
            documents_total=self._docgraph.n_documents,
            segment_iterations=segment_iterations,
        ))

    def refresh(self, changed_sites: Iterable[str], *,
                intersite_changed: bool) -> UpdateReport:
        """Repair the cached ranking after an external mutation.

        All changed sites (plus, when needed, the SiteRank) are submitted
        to the engine as *one* batch, so a multi-site change is repaired
        concurrently on parallel executors (with the matrices riding the
        engine's shared-memory arena on a process backend); every power
        iteration is warm-started from the site's previously converged
        vector.

        Parameters
        ----------
        changed_sites:
            Sites whose *internal* link structure (or document set) changed.
        intersite_changed:
            Whether any link between two different sites was added or
            removed (requires a SiteRank recomputation).
        """
        from ..engine.plan import (
            batch_site_tasks,
            collect_site_results,
            execute_tasks,
        )

        changed: Set[str] = set(changed_sites)
        known_sites = set(self._docgraph.sites())
        unknown = changed - known_sites
        if unknown:
            raise GraphStructureError(
                f"unknown site {sorted(unknown)[0]!r}")
        new_sites = known_sites - set(self._local)
        changed |= new_sites
        ordered = sorted(changed)

        siterank_recomputed = bool(intersite_changed or new_sites)
        sitegraph: Optional[SiteGraph] = None
        if self._personalization:
            # Preference columns are re-lowered each refresh: document
            # columns are row-aligned to the *current* local adjacency and
            # site columns to the current SiteGraph, either of which the
            # mutation may have changed.
            sitegraph = self._sitegraph()
            self._segments = build_segment_preferences(
                self._docgraph, sitegraph, self._personalization)

        site_tasks = [self._local_task(site) for site in ordered]
        # The changed-site set rides the same batched path as a full plan:
        # small sites fuse into block-diagonal tasks, large ones keep
        # dedicated tasks a parallel backend can overlap.  The pack cache
        # lets structurally unchanged chunks — and the segment batch below,
        # which packs the same adjacencies — reuse the packed CSR.
        site_payload = (batch_site_tasks(site_tasks,
                                         pack_cache=self._pack_cache)
                        if self._batch_sites else site_tasks)
        segment_tasks: List = []
        if self._segments is not None:
            segment_tasks = [self._segment_local_task(site)
                             for site in ordered]
            if siterank_recomputed:
                segment_tasks.append(self._segment_site_task(sitegraph))
        segment_payload = (batch_site_tasks(segment_tasks,
                                            pack_cache=self._pack_cache)
                           if self._batch_sites else segment_tasks)
        tasks = [*site_payload, *segment_payload]
        if siterank_recomputed:
            # Prepend so the site-level task overlaps the per-site work on
            # parallel backends (mirroring RankingPlan.execute).
            tasks.insert(0, self._siterank_task(sitegraph))
        results, _wall_seconds = execute_tasks(tasks,
                                               executor=self._executor)

        siterank_iterations = 0
        if siterank_recomputed:
            self._siterank = results.pop(0)
            siterank_iterations = self._siterank.iterations

        by_site = collect_site_results(site_payload,
                                       results[:len(site_payload)])
        local_iterations = 0
        documents_recomputed = 0
        for site in ordered:
            rank = by_site[site]
            self._local[site] = rank
            local_iterations += rank.iterations
            documents_recomputed += rank.n_documents

        segment_iterations = 0
        if self._segments is not None:
            segment_iterations = self._store_segment_results(
                collect_site_results(segment_payload,
                                     results[len(site_payload):]),
                sitegraph=sitegraph)

        return self._notify(UpdateReport(
            recomputed_sites=ordered,
            siterank_recomputed=siterank_recomputed,
            local_iterations=local_iterations,
            siterank_iterations=siterank_iterations,
            documents_recomputed=documents_recomputed,
            documents_total=self._docgraph.n_documents,
            segment_iterations=segment_iterations,
        ))

    # ------------------------------------------------------------------ #
    # Mutation helpers
    # ------------------------------------------------------------------ #
    def add_link(self, source_url: str, target_url: str) -> UpdateReport:
        """Add a DocLink and repair exactly the affected state."""
        source_id, target_id = self._docgraph.add_link(source_url, target_url)
        source_site = self._docgraph.site_of_document(source_id)
        target_site = self._docgraph.site_of_document(target_id)
        if source_site == target_site:
            return self.refresh([source_site], intersite_changed=False)
        # An inter-site link does not change either side's *local* subgraph,
        # but new documents may have been created on either side.
        changed = [site for site in (source_site, target_site)
                   if site not in self._local
                   or len(self._docgraph.documents_of_site(site))
                   != self._local[site].n_documents]
        return self.refresh(changed, intersite_changed=True)

    def add_document(self, url: str, *, site: Optional[str] = None) -> UpdateReport:
        """Add an (isolated) document and repair its site's local ranking."""
        doc_id = self._docgraph.add_document(url, site=site)
        owning_site = self._docgraph.site_of_document(doc_id)
        # A brand new site also changes the SiteGraph's node set.
        new_site = owning_site not in self._local
        return self.refresh([owning_site], intersite_changed=new_site)

    # ------------------------------------------------------------------ #
    # Reading the current ranking
    # ------------------------------------------------------------------ #
    @property
    def docgraph(self) -> DocGraph:
        """The (mutable) DocGraph the ranker maintains a ranking over."""
        return self._docgraph

    def ranking(self) -> WebRankingResult:
        """Compose the cached factors into the current global DocRank.

        When the ranker maintains personalisation segments, the per-segment
        score columns are composed from the cached segment factors in the
        same site-major document order and attached to the result.
        """
        assert self._siterank is not None
        sites = self._docgraph.sites()
        result = compose_ranking(self._docgraph, sites,
                                 self._siterank, dict(self._local),
                                 method="layered-incremental")
        if self._segments is not None and self._segment_site_state is not None:
            site_order, site_matrix = self._segment_site_state
            position = {site: index for index, site in enumerate(site_order)}
            blocks = [self._local_columns[site].columns
                      * site_matrix[position[site]][None, :]
                      for site in sites]
            matrix = np.concatenate(blocks, axis=0)
            totals = matrix.sum(axis=0)
            result.segments = self._segments.names
            result.segment_columns = matrix / np.where(totals > 0.0,
                                                       totals, 1.0)
        return result

    @property
    def segments(self) -> Tuple[str, ...]:
        """Personalisation segment names the ranker maintains (``()`` when off)."""
        return self._segments.names if self._segments is not None else ()

    @property
    def siterank(self) -> SiteRankResult:
        """The cached SiteRank."""
        assert self._siterank is not None
        return self._siterank

    def local(self, site: str) -> LocalDocRank:
        """The cached local DocRank of one site."""
        if site not in self._local:
            raise GraphStructureError(f"unknown site {site!r}")
        return self._local[site]

    def segment_shard_columns(self, site: str) -> Optional[np.ndarray]:
        """One site's composed per-segment score columns (``None`` when off).

        ``local_columns · site_weights`` — the site's slice of
        :attr:`~repro.web.pipeline.WebRankingResult.segment_columns`, row
        aligned with :meth:`local`'s ``doc_ids``, before the global
        per-column renormalisation (which only absorbs float drift: every
        composed column already sums to one by construction).  The serving
        layer rebuilds one shard's segment scores from this without
        touching any other site.
        """
        if self._segments is None or self._segment_site_state is None:
            return None
        site_order, site_matrix = self._segment_site_state
        if site not in self._local_columns:
            raise GraphStructureError(f"unknown site {site!r}")
        try:
            weights = site_matrix[site_order.index(site)]
        except ValueError:
            raise GraphStructureError(f"unknown site {site!r}") from None
        return self._local_columns[site].columns * weights[None, :]

    # ------------------------------------------------------------------ #
    # Engine task construction (warm-started)
    # ------------------------------------------------------------------ #
    def _local_task(self, site: str):
        """Build one site's engine task, seeded from the cached vector.

        Power iteration used to restart from uniform on every refresh even
        though the previous stationary vector was sitting in the cache; the
        warm start makes refresh iteration counts drop by an order of
        magnitude (asserted by the tests and benchmark E14).  New documents
        of the site receive the uniform share before renormalisation.
        """
        from ..engine.plan import LocalRankTask
        from ..engine.warm import align_warm_start

        adjacency, doc_ids = self._docgraph.local_adjacency(site)
        previous = self._local.get(site)
        start = (align_warm_start(previous.doc_ids, previous.scores, doc_ids)
                 if previous is not None else None)
        return LocalRankTask(site=site, adjacency=adjacency,
                             doc_ids=tuple(doc_ids), damping=self._damping,
                             tol=self._tol, max_iter=self._max_iter,
                             start=start)

    def _sitegraph(self) -> SiteGraph:
        """Aggregate the current SiteGraph (step 2, cheap and serial)."""
        return aggregate_sitegraph(
            self._docgraph,
            include_self_links=self._include_site_self_links)

    def _siterank_task(self, sitegraph: Optional[SiteGraph] = None):
        """Build the SiteRank engine task, seeded from the cached vector."""
        from ..engine.plan import SiteRankTask
        from ..engine.warm import align_warm_start

        if sitegraph is None:
            sitegraph = self._sitegraph()
        start = (align_warm_start(self._siterank.sites,
                                  self._siterank.scores, sitegraph.sites)
                 if self._siterank is not None else None)
        return SiteRankTask(sitegraph=sitegraph, damping=self._site_damping,
                            tol=self._tol, max_iter=self._max_iter,
                            start=start)

    def _compute_local(self, site: str) -> LocalDocRank:
        """Recompute one site's local DocRank, warm-started from the cache."""
        return self._local_task(site).run()

    def _compute_siterank(self) -> SiteRankResult:
        """Recompute the SiteRank, warm-started from the cache."""
        return self._siterank_task().run()

    # ------------------------------------------------------------------ #
    # Personalisation segment maintenance (fused multi-vector tasks)
    # ------------------------------------------------------------------ #
    def _segment_local_task(self, site: str):
        """One site's K-column segment task, warm-started from the cache."""
        from ..engine.plan import LocalRankTask

        assert self._segments is not None
        adjacency, doc_ids = self._docgraph.local_adjacency(site)
        return LocalRankTask(
            site=site, adjacency=adjacency, doc_ids=tuple(doc_ids),
            damping=self._damping,
            preference=self._segments.document_columns.get(site),
            tol=self._tol, max_iter=self._max_iter,
            start=self._segment_warm_start(site, doc_ids),
            n_vectors=self._segments.n_segments)

    def _segment_warm_start(self, site: str,
                            doc_ids) -> Optional[np.ndarray]:
        """Re-align the cached segment columns of one site, per column."""
        from ..engine.warm import align_warm_start

        previous = self._local_columns.get(site)
        if previous is None or previous.n_vectors != self._segments.n_segments:
            return None
        columns = [align_warm_start(previous.doc_ids,
                                    previous.columns[:, index], doc_ids)
                   for index in range(previous.n_vectors)]
        if any(column is None for column in columns):
            return None
        return np.stack(columns, axis=1)

    def _segment_site_task(self, sitegraph: SiteGraph):
        """The segment-level SiteRank block, riding the refresh batch.

        Mirrors the pipeline's :data:`~repro.web.pipeline.SITERANK_BLOCK`
        pseudo-site: the SiteGraph adjacency is just one more K-column
        block for the fused solver.
        """
        from ..engine.plan import LocalRankTask
        from ..engine.warm import align_warm_start

        assert self._segments is not None
        sites = list(sitegraph.sites)
        n_segments = self._segments.n_segments
        start = None
        if self._segment_site_state is not None:
            previous_sites, previous_matrix = self._segment_site_state
            if previous_matrix.shape[1] == n_segments:
                columns = [align_warm_start(previous_sites,
                                            previous_matrix[:, index], sites)
                           for index in range(n_segments)]
                if all(column is not None for column in columns):
                    start = np.stack(columns, axis=1)
        return LocalRankTask(
            site=SITERANK_BLOCK, adjacency=sitegraph.adjacency,
            doc_ids=tuple(range(len(sites))), damping=self._site_damping,
            preference=self._segments.site_columns,
            tol=self._tol, max_iter=self._max_iter, start=start,
            n_vectors=n_segments)

    def _store_segment_results(self, by_site: Dict[str, SiteColumns], *,
                               sitegraph: Optional[SiteGraph]) -> int:
        """Fold one batch's segment results back into the caches."""
        iterations = 0
        for site, result in by_site.items():
            solved = ensure_site_columns(result)
            if site == SITERANK_BLOCK:
                assert sitegraph is not None
                self._segment_site_state = (tuple(sitegraph.sites),
                                            solved.columns.copy())
            else:
                self._local_columns[site] = solved
            iterations += solved.iterations
        return iterations

    def _rebuild_segments(self) -> int:
        """Re-solve every site's segment columns (cold path, one batch)."""
        from ..engine.plan import (
            batch_site_tasks,
            collect_site_results,
            execute_tasks,
        )

        sitegraph = self._sitegraph()
        self._segments = build_segment_preferences(
            self._docgraph, sitegraph, self._personalization)
        self._local_columns = {}
        self._segment_site_state = None
        tasks = [self._segment_local_task(site)
                 for site in self._docgraph.sites()]
        tasks.append(self._segment_site_task(sitegraph))
        payload = (batch_site_tasks(tasks, pack_cache=self._pack_cache)
                   if self._batch_sites else tasks)
        results, _wall_seconds = execute_tasks(payload,
                                               executor=self._executor)
        return self._store_segment_results(
            collect_site_results(payload, results), sitegraph=sitegraph)
