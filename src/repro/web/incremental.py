"""Incremental maintenance of the layered DocRank.

A practical consequence of the Partition Theorem that the paper's
architecture section hints at ("its value changes less rapidly" about the
shared SiteRank): when the web changes, the layered ranking can be repaired
with work proportional to the *changed part*, not the whole web:

* if only a site's **internal** link structure changed, only that site's
  local DocRank needs recomputation — the SiteRank and every other site's
  vector are untouched;
* if **inter-site** links changed, the (tiny) SiteRank is recomputed and all
  existing local DocRanks are reused;
* the final composition is always a single O(N_D) multiplication pass.

:class:`IncrementalLayeredRanker` keeps the per-site vectors and the
SiteRank cached, applies targeted updates, and can report how much work each
update needed compared to ranking from scratch — the quantity the
incremental-update ablation benchmark measures.  Flat PageRank has no such
decomposition: any change invalidates the single global vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

import numpy as np

from .._validation import normalize_distribution
from ..exceptions import GraphStructureError
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..markov.irreducibility import DEFAULT_DAMPING
from .docgraph import DocGraph
from .docrank import LocalDocRank, local_docrank
from .pipeline import WebRankingResult
from .sitegraph import aggregate_sitegraph
from .siterank import SiteRankResult, siterank


@dataclass
class UpdateReport:
    """What one incremental update had to recompute.

    Attributes
    ----------
    recomputed_sites:
        Sites whose local DocRank was recomputed.
    siterank_recomputed:
        Whether the SiteRank had to be recomputed.
    local_iterations:
        Power iterations spent in the recomputed local DocRanks.
    siterank_iterations:
        Power iterations spent on the SiteRank (0 when reused).
    documents_recomputed:
        Number of documents whose local vector was recomputed.
    documents_total:
        Total documents in the graph after the update.
    """

    recomputed_sites: List[str]
    siterank_recomputed: bool
    local_iterations: int
    siterank_iterations: int
    documents_recomputed: int
    documents_total: int

    @property
    def recompute_fraction(self) -> float:
        """Fraction of the corpus whose local ranking was recomputed."""
        if self.documents_total == 0:
            return 0.0
        return self.documents_recomputed / self.documents_total


#: Signature of an update-notification callback (see
#: :meth:`IncrementalLayeredRanker.subscribe`).
UpdateListener = Callable[[UpdateReport], None]


class IncrementalLayeredRanker:
    """Maintains a layered DocRank over a mutable :class:`DocGraph`.

    The ranker owns the graph reference; callers mutate the graph through
    the ranker's ``add_*`` methods (or mutate it directly and then call
    :meth:`refresh` with the affected sites), and read the current ranking
    with :meth:`ranking`.
    """

    def __init__(self, docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                 site_damping: Optional[float] = None,
                 tol: float = DEFAULT_TOL,
                 max_iter: int = DEFAULT_MAX_ITER) -> None:
        if docgraph.n_documents == 0:
            raise GraphStructureError(
                "cannot build an incremental ranker over an empty DocGraph")
        self._docgraph = docgraph
        self._damping = damping
        self._site_damping = site_damping if site_damping is not None else damping
        self._tol = tol
        self._max_iter = max_iter
        self._local: Dict[str, LocalDocRank] = {}
        self._siterank: Optional[SiteRankResult] = None
        self._listeners: List[UpdateListener] = []
        self.full_rebuild()

    # ------------------------------------------------------------------ #
    # Update notifications
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: UpdateListener) -> UpdateListener:
        """Register a callback invoked after every completed update.

        The listener receives the :class:`UpdateReport` of each
        :meth:`refresh` / :meth:`full_rebuild` (and therefore of every
        ``add_*`` mutation) once the cached factors are consistent again —
        the hook the serving layer uses to invalidate exactly the affected
        shards and cache entries.  Returns the listener so the call can be
        used as a decorator.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: UpdateListener) -> None:
        """Remove a previously registered listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, report: UpdateReport) -> UpdateReport:
        for listener in list(self._listeners):
            listener(report)
        return report

    # ------------------------------------------------------------------ #
    # Full and partial recomputation
    # ------------------------------------------------------------------ #
    def full_rebuild(self) -> UpdateReport:
        """Recompute everything (used at construction and as a fallback)."""
        self._siterank = self._compute_siterank()
        self._local = {site: self._compute_local(site)
                       for site in self._docgraph.sites()}
        return self._notify(UpdateReport(
            recomputed_sites=list(self._local),
            siterank_recomputed=True,
            local_iterations=sum(rank.iterations
                                 for rank in self._local.values()),
            siterank_iterations=self._siterank.iterations,
            documents_recomputed=self._docgraph.n_documents,
            documents_total=self._docgraph.n_documents,
        ))

    def refresh(self, changed_sites: Iterable[str], *,
                intersite_changed: bool) -> UpdateReport:
        """Repair the cached ranking after an external mutation.

        Parameters
        ----------
        changed_sites:
            Sites whose *internal* link structure (or document set) changed.
        intersite_changed:
            Whether any link between two different sites was added or
            removed (requires a SiteRank recomputation).
        """
        changed: Set[str] = set(changed_sites)
        known_sites = set(self._docgraph.sites())
        new_sites = known_sites - set(self._local)
        changed |= new_sites

        local_iterations = 0
        documents_recomputed = 0
        for site in sorted(changed):
            if site not in known_sites:
                raise GraphStructureError(f"unknown site {site!r}")
            rank = self._compute_local(site)
            self._local[site] = rank
            local_iterations += rank.iterations
            documents_recomputed += rank.n_documents

        siterank_iterations = 0
        siterank_recomputed = bool(intersite_changed or new_sites)
        if siterank_recomputed:
            self._siterank = self._compute_siterank()
            siterank_iterations = self._siterank.iterations

        return self._notify(UpdateReport(
            recomputed_sites=sorted(changed),
            siterank_recomputed=siterank_recomputed,
            local_iterations=local_iterations,
            siterank_iterations=siterank_iterations,
            documents_recomputed=documents_recomputed,
            documents_total=self._docgraph.n_documents,
        ))

    # ------------------------------------------------------------------ #
    # Mutation helpers
    # ------------------------------------------------------------------ #
    def add_link(self, source_url: str, target_url: str) -> UpdateReport:
        """Add a DocLink and repair exactly the affected state."""
        source_id, target_id = self._docgraph.add_link(source_url, target_url)
        source_site = self._docgraph.site_of_document(source_id)
        target_site = self._docgraph.site_of_document(target_id)
        if source_site == target_site:
            return self.refresh([source_site], intersite_changed=False)
        # An inter-site link does not change either side's *local* subgraph,
        # but new documents may have been created on either side.
        changed = [site for site in (source_site, target_site)
                   if site not in self._local
                   or len(self._docgraph.documents_of_site(site))
                   != self._local[site].n_documents]
        return self.refresh(changed, intersite_changed=True)

    def add_document(self, url: str, *, site: Optional[str] = None) -> UpdateReport:
        """Add an (isolated) document and repair its site's local ranking."""
        doc_id = self._docgraph.add_document(url, site=site)
        owning_site = self._docgraph.site_of_document(doc_id)
        # A brand new site also changes the SiteGraph's node set.
        new_site = owning_site not in self._local
        return self.refresh([owning_site], intersite_changed=new_site)

    # ------------------------------------------------------------------ #
    # Reading the current ranking
    # ------------------------------------------------------------------ #
    @property
    def docgraph(self) -> DocGraph:
        """The (mutable) DocGraph the ranker maintains a ranking over."""
        return self._docgraph

    def ranking(self) -> WebRankingResult:
        """Compose the cached factors into the current global DocRank."""
        assert self._siterank is not None
        doc_ids: List[int] = []
        blocks: List[np.ndarray] = []
        for site in self._docgraph.sites():
            local = self._local[site]
            doc_ids.extend(local.doc_ids)
            blocks.append(self._siterank.score_of(site) * local.scores)
        scores = normalize_distribution(np.concatenate(blocks),
                                        name="incremental layered DocRank")
        urls = [self._docgraph.document(doc_id).url for doc_id in doc_ids]
        return WebRankingResult(doc_ids=doc_ids, urls=urls, scores=scores,
                                method="layered-incremental",
                                siterank=self._siterank,
                                local_docranks=dict(self._local))

    @property
    def siterank(self) -> SiteRankResult:
        """The cached SiteRank."""
        assert self._siterank is not None
        return self._siterank

    def local(self, site: str) -> LocalDocRank:
        """The cached local DocRank of one site."""
        if site not in self._local:
            raise GraphStructureError(f"unknown site {site!r}")
        return self._local[site]

    # ------------------------------------------------------------------ #
    def _compute_local(self, site: str) -> LocalDocRank:
        return local_docrank(self._docgraph, site, self._damping,
                             tol=self._tol, max_iter=self._max_iter)

    def _compute_siterank(self) -> SiteRankResult:
        sitegraph = aggregate_sitegraph(self._docgraph)
        return siterank(sitegraph, self._site_damping, tol=self._tol,
                        max_iter=self._max_iter)
