"""The 5-step Layered Method for DocRank (Section 3.2) and the flat baseline.

This is the user-facing entry point of the web application layer: given a
:class:`~repro.web.docgraph.DocGraph` it

1. (input) takes the global DocGraph ``G_D``,
2. aggregates the global SiteGraph ``G_S`` (SiteLink counts only),
3. computes every site's local DocRank ``π_D(s)`` (decentralisable),
4. computes the SiteRank ``π_S`` of the SiteGraph,
5. composes the final global DocRank
   ``DocRank(G_D) = (π_S(s_1)·π_D(s_1)', …, π_S(s_NS)·π_D(s_NS)')'``.

The result is returned as a :class:`WebRankingResult` aligned with the
DocGraph's document ids, so it can be compared entry-by-entry with the flat
PageRank baseline (:func:`flat_pagerank_ranking`).

The correspondence with :mod:`repro.core` is direct: the DocGraph induces a
:class:`~repro.core.lmm.LayeredMarkovModel` whose phases are the sites
(:func:`lmm_from_docgraph`), and the pipeline is Approach 4 applied to that
model — a fact the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from .._validation import normalize_distribution
from ..exceptions import GraphStructureError, ValidationError
from ..core.lmm import LayeredMarkovModel, Phase
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.stochastic import transition_matrix
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank
from .docgraph import DocGraph
from .docrank import LocalDocRank
from .sitegraph import SiteGraph, aggregate_sitegraph
from .siterank import SiteRankResult


@dataclass
class WebRankingResult:
    """A global ranking over all documents of a DocGraph.

    Attributes
    ----------
    doc_ids:
        Document ids in score order position (i.e. ``scores[i]`` is the
        score of document ``doc_ids[i]``); for the layered method this is
        site-major order, for the flat baseline it is plain id order.
    urls:
        URLs aligned with *doc_ids*.
    scores:
        The global ranking distribution.
    method:
        ``"layered"`` or ``"pagerank"`` (or a personalised variant).
    siterank:
        The SiteRank used (layered method only).
    local_docranks:
        The per-site local DocRanks (layered method only).
    iterations:
        Total power iterations: for the layered method the sum over sites
        plus the SiteRank iterations, for the flat baseline the global run.
    timings:
        Wall-clock seconds per phase, keyed by the canonical phase names
        of :mod:`repro.obs` (``plan.build`` for steps 1–2,
        ``plan.execute`` for steps 3–4, ``plan.compose`` for step 5).
        Empty for rankings built outside the layered pipeline.
    """

    doc_ids: List[int]
    urls: List[str]
    scores: np.ndarray
    method: str
    siterank: Optional[SiteRankResult] = None
    local_docranks: Optional[Dict[str, LocalDocRank]] = None
    iterations: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    _position: Dict[int, int] = field(init=False, repr=False,
                                      default_factory=dict)

    def __post_init__(self) -> None:
        if not (len(self.doc_ids) == len(self.urls) == self.scores.size):
            raise ValidationError("doc_ids, urls and scores must align")
        self._position = {doc_id: i for i, doc_id in enumerate(self.doc_ids)}

    @property
    def n_documents(self) -> int:
        """Number of ranked documents."""
        return len(self.doc_ids)

    def score_of(self, doc_id: int) -> float:
        """Global score of a document id."""
        try:
            return float(self.scores[self._position[doc_id]])
        except KeyError:
            raise ValidationError(f"unknown document id {doc_id}") from None

    def scores_by_doc_id(self) -> np.ndarray:
        """Scores re-indexed by document id (position ``i`` = document ``i``)."""
        n = max(self.doc_ids) + 1 if self.doc_ids else 0
        vector = np.zeros(n, dtype=float)
        for position, doc_id in enumerate(self.doc_ids):
            vector[doc_id] = self.scores[position]
        return vector

    def top_k(self, k: int) -> List[int]:
        """The ``k`` best document ids, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [self.doc_ids[int(i)] for i in order[:k]]

    def top_k_urls(self, k: int) -> List[str]:
        """The ``k`` best document URLs, best first — the paper's Figure 3/4 lists."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return [self.urls[int(i)] for i in order[:k]]


def compose_ranking(docgraph: DocGraph, sites: List[str],
                    site_result: SiteRankResult,
                    local: Dict[str, LocalDocRank], *,
                    method: str, iterations: int = 0) -> WebRankingResult:
    """Step 5: the ``π_S(s) · π_D(s)`` weighted concatenation.

    Shared by the centralized pipeline, the incremental ranker and the
    distributed coordinator's flat aggregation, so those layers compose in
    the same (site-major) order with the same floating point operations.
    (The super-peer architecture deliberately composes on the peers and
    only reassembles shards at the coordinator.)
    """
    doc_ids: List[int] = []
    scores_blocks: List[np.ndarray] = []
    for site in sites:
        local_rank = local[site]
        doc_ids.extend(local_rank.doc_ids)
        scores_blocks.append(site_result.score_of(site) * local_rank.scores)
    # The composition is a probability distribution by Theorem 1; renormalise
    # only to absorb floating point drift.
    scores = normalize_distribution(np.concatenate(scores_blocks),
                                    name="layered DocRank")
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls, scores=scores,
                            method=method, siterank=site_result,
                            local_docranks=local, iterations=iterations)


def _layered_docrank(docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                     site_damping: Optional[float] = None,
                     site_preference: Optional[np.ndarray] = None,
                     document_preferences: Optional[Dict[str, np.ndarray]] = None,
                     include_site_self_links: bool = False,
                     tol: float = DEFAULT_TOL,
                     max_iter: int = DEFAULT_MAX_ITER,
                     executor=None, n_jobs: Optional[int] = None,
                     warm=None, batch_sites: bool = True) -> WebRankingResult:
    """Run the full 5-step Layered Method for DocRank on a DocGraph.

    The method is executed as a :class:`repro.engine.RankingPlan`: step 3's
    per-site DocRank tasks and step 4's SiteRank task run as one concurrent
    batch, and step 5 composes at the batch's barrier.  The default
    (serial) backend performs exactly the operations the historical serial
    loop performed, in the same order.  On a process backend the run
    builds one shared-memory :class:`~repro.engine.arena.GraphArena` for
    the batch — every site's local adjacency and the SiteGraph are laid
    into it once, workers attach zero-copy, and the arena is unlinked at
    the barrier — so dispatch cost does not scale with the web's size.

    Parameters
    ----------
    damping:
        Damping factor of the per-site local DocRanks (the ``α`` of the
        gatekeeper construction).
    site_damping:
        Damping factor of the SiteRank computation (defaults to *damping*).
    site_preference:
        Optional site-layer personalisation distribution (over sites in
        DocGraph site order).
    document_preferences:
        Optional per-site document-layer personalisation vectors.
    include_site_self_links:
        Whether intra-site links count in the SiteGraph aggregation (see
        :func:`repro.web.sitegraph.aggregate_sitegraph`).
    executor / n_jobs:
        Execution backend for the concurrent batch, resolved by
        :func:`repro.engine.resolve_executor`; serial when both omitted,
        a process pool of ``n_jobs`` workers when ``n_jobs > 1``.
    warm:
        Optional :class:`repro.engine.WarmStartState` to resume power
        iterations from (and record the converged vectors into).
    batch_sites:
        Fuse small sites into block-diagonal batched tasks
        (:class:`repro.engine.plan.BatchedSiteTask`), the default;
        ``False`` opts out to the historical one-task-per-site path.
    """
    from ..engine.plan import RankingPlan

    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot rank an empty DocGraph")

    # Steps 1–2 (input + SiteGraph aggregation) happen at plan build time;
    # steps 3–4 run concurrently inside execute(); step 5 composes below.
    build_started = perf_counter()
    plan = RankingPlan.from_docgraph(
        docgraph, damping, site_damping=site_damping,
        site_preference=site_preference,
        document_preferences=document_preferences,
        include_site_self_links=include_site_self_links,
        tol=tol, max_iter=max_iter, batch_sites=batch_sites)
    build_seconds = perf_counter() - build_started
    execution = plan.execute(executor=executor, n_jobs=n_jobs, warm=warm)

    method = "layered"
    if site_preference is not None or document_preferences:
        method = "layered-personalized"
    compose_started = perf_counter()
    with obs.span(obs.PHASE_PLAN_COMPOSE):
        result = compose_ranking(docgraph, plan.sitegraph.sites,
                                 execution.siterank, execution.local,
                                 method=method,
                                 iterations=execution.total_iterations)
    result.timings = {
        obs.PHASE_PLAN_BUILD: build_seconds,
        obs.PHASE_PLAN_EXECUTE: execution.wall_seconds,
        obs.PHASE_PLAN_COMPOSE: perf_counter() - compose_started,
    }
    return result


def layered_docrank(docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                    site_damping: Optional[float] = None,
                    site_preference: Optional[np.ndarray] = None,
                    document_preferences: Optional[Dict[str, np.ndarray]] = None,
                    include_site_self_links: bool = False,
                    tol: float = DEFAULT_TOL,
                    max_iter: int = DEFAULT_MAX_ITER,
                    executor=None, n_jobs: Optional[int] = None,
                    warm=None, batch_sites: bool = True) -> WebRankingResult:
    """Deprecated 1.x entry point for :func:`_layered_docrank`.

    Use ``repro.api.Ranker(RankingConfig(method="layered")).fit(docgraph)``
    instead — the facade produces bitwise-identical scores from a single
    declarative config object.  This shim forwards unchanged (and warns
    once per process) for one release.
    """
    from .._deprecation import warn_deprecated

    warn_deprecated("repro.web.layered_docrank",
                    "repro.api.Ranker(config).fit(docgraph)")
    return _layered_docrank(
        docgraph, damping, site_damping=site_damping,
        site_preference=site_preference,
        document_preferences=document_preferences,
        include_site_self_links=include_site_self_links,
        tol=tol, max_iter=max_iter, executor=executor, n_jobs=n_jobs,
        warm=warm, batch_sites=batch_sites)


def _flat_pagerank_ranking(docgraph: DocGraph,
                           damping: float = DEFAULT_DAMPING, *,
                           preference: Optional[np.ndarray] = None,
                           tol: float = DEFAULT_TOL,
                           max_iter: int = DEFAULT_MAX_ITER) -> WebRankingResult:
    """The flat (classical PageRank) baseline over the same DocGraph.

    This is the ranking the paper's Figure 3 reports and that Figure 4's
    layered ranking is compared against.
    """
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot rank an empty DocGraph")
    result = pagerank(docgraph.adjacency(), damping=damping,
                      preference=preference, tol=tol, max_iter=max_iter)
    doc_ids = list(range(docgraph.n_documents))
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls, scores=result.scores,
                            method="pagerank", iterations=result.iterations)


def flat_pagerank_ranking(docgraph: DocGraph,
                          damping: float = DEFAULT_DAMPING, *,
                          preference: Optional[np.ndarray] = None,
                          tol: float = DEFAULT_TOL,
                          max_iter: int = DEFAULT_MAX_ITER) -> WebRankingResult:
    """Deprecated 1.x entry point for :func:`_flat_pagerank_ranking`.

    Use ``repro.api.Ranker(RankingConfig(method="flat")).fit(docgraph)``
    instead.  This shim forwards unchanged (and warns once per process)
    for one release.
    """
    from .._deprecation import warn_deprecated

    warn_deprecated("repro.web.flat_pagerank_ranking",
                    'repro.api.Ranker(RankingConfig(method="flat")).fit(docgraph)')
    return _flat_pagerank_ranking(docgraph, damping, preference=preference,
                                  tol=tol, max_iter=max_iter)


def lmm_from_docgraph(docgraph: DocGraph, *,
                      include_site_self_links: bool = False,
                      site_damping: float = DEFAULT_DAMPING,
                      ) -> LayeredMarkovModel:
    """Build the :class:`LayeredMarkovModel` induced by a DocGraph.

    Phases are the web sites; each phase's sub-state transition matrix is the
    row-normalised local link matrix (dangling pages jump uniformly within
    the site); the phase transition matrix is the *primitive* transition
    matrix ``M̂(G_S)`` of the SiteGraph, which is what Theorem 2 requires.

    The integration tests use this to check that
    :func:`layered_docrank` coincides with
    :func:`repro.core.layered_method.approach_4` on the induced model.
    """
    from ..markov.irreducibility import maximal_irreducibility

    sitegraph = aggregate_sitegraph(docgraph,
                                    include_self_links=include_site_self_links)
    site_transition = transition_matrix(sitegraph.adjacency,
                                        dangling="uniform")
    primitive_site_matrix = maximal_irreducibility(site_transition,
                                                   site_damping)
    phases = []
    for site in sitegraph.sites:
        local_adjacency, doc_ids = docgraph.local_adjacency(site)
        local_transition = transition_matrix(local_adjacency,
                                             dangling="uniform")
        dense = (local_transition.toarray()
                 if hasattr(local_transition, "toarray")
                 else np.asarray(local_transition, dtype=float))
        phases.append(Phase(name=site, transition=dense,
                            sub_state_names=[docgraph.document(d).url
                                             for d in doc_ids]))
    return LayeredMarkovModel(phases=phases,
                              phase_transition=primitive_site_matrix)
