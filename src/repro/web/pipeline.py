"""The 5-step Layered Method for DocRank (Section 3.2) and the flat baseline.

This is the user-facing entry point of the web application layer: given a
:class:`~repro.web.docgraph.DocGraph` it

1. (input) takes the global DocGraph ``G_D``,
2. aggregates the global SiteGraph ``G_S`` (SiteLink counts only),
3. computes every site's local DocRank ``π_D(s)`` (decentralisable),
4. computes the SiteRank ``π_S`` of the SiteGraph,
5. composes the final global DocRank
   ``DocRank(G_D) = (π_S(s_1)·π_D(s_1)', …, π_S(s_NS)·π_D(s_NS)')'``.

The result is returned as a :class:`WebRankingResult` aligned with the
DocGraph's document ids, so it can be compared entry-by-entry with the flat
PageRank baseline (the API facade's ``method="flat"``).

The correspondence with :mod:`repro.core` is direct: the DocGraph induces a
:class:`~repro.core.lmm.LayeredMarkovModel` whose phases are the sites
(:func:`lmm_from_docgraph`), and the pipeline is Approach 4 applied to that
model — a fact the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from .._validation import normalize_distribution
from ..exceptions import GraphStructureError, ValidationError
from ..core.lmm import LayeredMarkovModel, Phase
from ..linalg.power_iteration import DEFAULT_MAX_ITER, DEFAULT_TOL
from ..linalg.stochastic import transition_matrix
from ..markov.irreducibility import DEFAULT_DAMPING
from ..pagerank.pagerank import pagerank
from ..pagerank.personalized import preference_from_weights
from .docgraph import DocGraph
from .docrank import LocalDocRank, SiteColumns
from .sitegraph import SiteGraph, aggregate_sitegraph
from .siterank import SiteRankResult


@dataclass
class WebRankingResult:
    """A global ranking over all documents of a DocGraph.

    Attributes
    ----------
    doc_ids:
        Document ids in score order position (i.e. ``scores[i]`` is the
        score of document ``doc_ids[i]``); for the layered method this is
        site-major order, for the flat baseline it is plain id order.
    urls:
        URLs aligned with *doc_ids*.
    scores:
        The global ranking distribution.
    method:
        ``"layered"`` or ``"pagerank"`` (or a personalised variant).
    siterank:
        The SiteRank used (layered method only).
    local_docranks:
        The per-site local DocRanks (layered method only).
    iterations:
        Total power iterations: for the layered method the sum over sites
        plus the SiteRank iterations, for the flat baseline the global run.
    timings:
        Wall-clock seconds per phase, keyed by the canonical phase names
        of :mod:`repro.obs` (``plan.build`` for steps 1–2,
        ``plan.execute`` for steps 3–4, ``plan.compose`` for step 5,
        ``plan.segments`` for the fused per-segment pass).
        Empty for rankings built outside the layered pipeline.
    segments:
        Names of the personalisation segments solved alongside the base
        ranking (empty when personalisation is off).
    segment_columns:
        ``(n_documents, K)`` matrix of per-segment scores aligned with
        *doc_ids* (one column per entry of *segments*); ``None`` when
        personalisation is off.
    """

    doc_ids: List[int]
    urls: List[str]
    scores: np.ndarray
    method: str
    siterank: Optional[SiteRankResult] = None
    local_docranks: Optional[Dict[str, LocalDocRank]] = None
    iterations: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    segments: Tuple[str, ...] = ()
    segment_columns: Optional[np.ndarray] = None
    _position: Dict[int, int] = field(init=False, repr=False,
                                      default_factory=dict)

    def __post_init__(self) -> None:
        if not (len(self.doc_ids) == len(self.urls) == self.scores.size):
            raise ValidationError("doc_ids, urls and scores must align")
        self.segments = tuple(self.segments)
        if self.segment_columns is not None:
            self.segment_columns = np.asarray(self.segment_columns,
                                              dtype=float)
            if self.segment_columns.shape != (len(self.doc_ids),
                                              len(self.segments)):
                raise ValidationError(
                    "segment_columns must be (n_documents, n_segments)")
        elif self.segments:
            raise ValidationError(
                "segments named but no segment_columns given")
        self._position = {doc_id: i for i, doc_id in enumerate(self.doc_ids)}

    @property
    def n_documents(self) -> int:
        """Number of ranked documents."""
        return len(self.doc_ids)

    def score_of(self, doc_id: int) -> float:
        """Global score of a document id."""
        try:
            return float(self.scores[self._position[doc_id]])
        except KeyError:
            raise ValidationError(f"unknown document id {doc_id}") from None

    def scores_by_doc_id(self) -> np.ndarray:
        """Scores re-indexed by document id (position ``i`` = document ``i``)."""
        n = max(self.doc_ids) + 1 if self.doc_ids else 0
        vector = np.zeros(n, dtype=float)
        for position, doc_id in enumerate(self.doc_ids):
            vector[doc_id] = self.scores[position]
        return vector

    def segment_index(self, segment: str) -> int:
        """Position of a named segment's score column."""
        try:
            return self.segments.index(segment)
        except ValueError:
            raise ValidationError(
                f"unknown segment {segment!r}; available: "
                f"{list(self.segments)!r}") from None

    def segment_scores(self, segment: str) -> np.ndarray:
        """One segment's score column, aligned with :attr:`doc_ids`."""
        if self.segment_columns is None:
            raise ValidationError("ranking has no personalisation segments")
        return self.segment_columns[:, self.segment_index(segment)]

    def _ranking_scores(self, segment: Optional[str]) -> np.ndarray:
        if segment is None:
            return self.scores
        return self.segment_scores(segment)

    def top_k(self, k: int, *, segment: Optional[str] = None) -> List[int]:
        """The ``k`` best document ids, best first (per segment if named)."""
        scores = self._ranking_scores(segment)
        order = np.lexsort((np.arange(scores.size), -scores))
        return [self.doc_ids[int(i)] for i in order[:k]]

    def top_k_urls(self, k: int, *,
                   segment: Optional[str] = None) -> List[str]:
        """The ``k`` best document URLs, best first — the paper's Figure 3/4 lists."""
        scores = self._ranking_scores(segment)
        order = np.lexsort((np.arange(scores.size), -scores))
        return [self.urls[int(i)] for i in order[:k]]


def compose_ranking(docgraph: DocGraph, sites: List[str],
                    site_result: SiteRankResult,
                    local: Dict[str, LocalDocRank], *,
                    method: str, iterations: int = 0) -> WebRankingResult:
    """Step 5: the ``π_S(s) · π_D(s)`` weighted concatenation.

    Shared by the centralized pipeline, the incremental ranker and the
    distributed coordinator's flat aggregation, so those layers compose in
    the same (site-major) order with the same floating point operations.
    (The super-peer architecture deliberately composes on the peers and
    only reassembles shards at the coordinator.)
    """
    doc_ids: List[int] = []
    scores_blocks: List[np.ndarray] = []
    for site in sites:
        local_rank = local[site]
        doc_ids.extend(local_rank.doc_ids)
        scores_blocks.append(site_result.score_of(site) * local_rank.scores)
    # The composition is a probability distribution by Theorem 1; renormalise
    # only to absorb floating point drift.
    scores = normalize_distribution(np.concatenate(scores_blocks),
                                    name="layered DocRank")
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls, scores=scores,
                            method=method, siterank=site_result,
                            local_docranks=local, iterations=iterations)


#: Pseudo-site key under which the SiteRank block rides a fused segment
#: batch.  NUL is illegal in URLs/host names, so it can never collide with
#: a real site identifier.
SITERANK_BLOCK = "\x00siterank"


@dataclass(frozen=True)
class SegmentPreferences:
    """K personalisation segments lowered to solver-ready preference columns.

    Built once from the declarative ``personalization`` config section by
    :func:`build_segment_preferences`; consumed by the fused multi-vector
    segment pass (:func:`solve_segment_columns`) and by the incremental
    ranker's refresh batches.

    Attributes
    ----------
    names:
        Segment names, in declaration order (the column order everywhere).
    site_columns:
        ``(n_sites, K)`` SiteRank teleport columns, in SiteGraph site
        order.
    document_columns:
        Per-site ``(n_local_docs, K)`` local teleport columns, only for
        sites some segment actually weights; untouched sites solve with
        uniform columns.
    """

    names: Tuple[str, ...]
    site_columns: np.ndarray
    document_columns: Dict[str, np.ndarray]

    @property
    def n_segments(self) -> int:
        """Number of segments K."""
        return len(self.names)


def build_segment_preferences(docgraph: DocGraph, sitegraph: SiteGraph,
                              spec: Mapping[str, Mapping]
                              ) -> SegmentPreferences:
    """Lower a declarative ``personalization`` mapping to preference columns.

    *spec* maps segment names to ``{"sites": {site: weight},
    "documents": {url: weight}, "background": float}`` — the shape
    :class:`repro.api.RankingConfig` validates.  Site weights become the
    segment's SiteRank teleport column; document weights become local
    teleport columns within their owning sites (sharing
    :func:`repro.pagerank.personalized.preference_from_weights` and its
    NaN / negative-weight validation).  Omitted parts stay uniform.
    """
    if not spec:
        raise ValidationError("personalization must name at least one "
                              "segment")
    names = tuple(spec.keys())
    sites = list(sitegraph.sites)
    site_pos = {site: index for index, site in enumerate(sites)}
    n_sites = len(sites)
    site_columns = np.empty((n_sites, len(names)), dtype=float)
    # site -> (n_local, K) built lazily, plus each site's doc_id -> local row.
    document_columns: Dict[str, np.ndarray] = {}
    local_rows: Dict[str, Dict[int, int]] = {}

    for column, name in enumerate(names):
        segment = spec[name] or {}
        background = float(segment.get("background", 0.0))
        site_weights = segment.get("sites") or {}
        if site_weights:
            indexed = {}
            for site, weight in site_weights.items():
                if site not in site_pos:
                    raise ValidationError(
                        f"segment {name!r} weights unknown site {site!r}")
                indexed[site_pos[site]] = weight
            site_columns[:, column] = preference_from_weights(
                n_sites, indexed, background=background)
        else:
            site_columns[:, column] = 1.0 / n_sites

        by_site: Dict[str, Dict[int, float]] = {}
        for url, weight in (segment.get("documents") or {}).items():
            document = docgraph.document_by_url(url)
            by_site.setdefault(document.site, {})[document.doc_id] = weight
        for site, weights in by_site.items():
            if site not in local_rows:
                _, doc_ids = docgraph.local_adjacency(site)
                local_rows[site] = {doc_id: row
                                    for row, doc_id in enumerate(doc_ids)}
                document_columns[site] = np.full(
                    (len(doc_ids), len(names)),
                    1.0 / len(doc_ids))
            rows = local_rows[site]
            document_columns[site][:, column] = preference_from_weights(
                len(rows), {rows[doc_id]: weight
                            for doc_id, weight in weights.items()},
                background=background)
    return SegmentPreferences(names=names, site_columns=site_columns,
                              document_columns=dict(document_columns))


def ensure_site_columns(result) -> SiteColumns:
    """Adapt an engine result to column form.

    A ``n_vectors == 1`` task deliberately runs the verbatim single-vector
    solver (so the base ranking stays byte-identical) and yields a
    :class:`~repro.web.docrank.LocalDocRank`; the segment machinery is
    written against :class:`~repro.web.docrank.SiteColumns`, so the
    degenerate K=1 case is wrapped here.
    """
    if isinstance(result, SiteColumns):
        return result
    return SiteColumns(site=result.site, doc_ids=result.doc_ids,
                       columns=result.scores[:, None],
                       iterations=result.iterations)


def solve_segment_columns(docgraph: DocGraph, sitegraph: SiteGraph,
                          segments: SegmentPreferences,
                          damping: float = DEFAULT_DAMPING, *,
                          site_damping: Optional[float] = None,
                          tol: float = DEFAULT_TOL,
                          max_iter: int = DEFAULT_MAX_ITER,
                          executor=None, n_jobs: Optional[int] = None,
                          ) -> Tuple[np.ndarray, int]:
    """Solve all K segments' score columns in fused multi-vector batches.

    Every site becomes one K-column block; the SiteRank solve rides the
    same packed batch as just another block (it shares the damping factor
    whenever ``site_damping`` is unset, and the batcher fuses it whenever
    it is small enough).  One matrix sweep per batch advances all K
    segments — the SpMV → SpMM amortisation benchmark E17 measures.

    Returns the ``(n_documents, K)`` score matrix in the site-major
    document order of :func:`compose_ranking`, plus the iteration total.
    """
    from ..engine.plan import (
        LocalRankTask,
        batch_site_tasks,
        collect_site_results,
        execute_tasks,
    )

    if site_damping is None:
        site_damping = damping
    n_vectors = segments.n_segments
    tasks = []
    for site in sitegraph.sites:
        adjacency, doc_ids = docgraph.local_adjacency(site)
        tasks.append(LocalRankTask(
            site=site, adjacency=adjacency, doc_ids=tuple(doc_ids),
            damping=damping,
            preference=segments.document_columns.get(site),
            tol=tol, max_iter=max_iter, n_vectors=n_vectors))
    tasks.append(LocalRankTask(
        site=SITERANK_BLOCK, adjacency=sitegraph.adjacency,
        doc_ids=tuple(range(len(sitegraph.sites))), damping=site_damping,
        preference=segments.site_columns,
        tol=tol, max_iter=max_iter, n_vectors=n_vectors))
    payload = batch_site_tasks(tasks)
    results, _seconds = execute_tasks(payload, executor=executor,
                                      n_jobs=n_jobs)
    by_site = collect_site_results(payload, results)

    siterank_block = ensure_site_columns(by_site[SITERANK_BLOCK])
    site_scores = siterank_block.columns  # (n_sites, K)
    blocks = []
    iterations = siterank_block.iterations
    for index, site in enumerate(sitegraph.sites):
        solved = ensure_site_columns(by_site[site])
        blocks.append(solved.columns * site_scores[index][None, :])
        iterations += solved.iterations
    matrix = np.concatenate(blocks, axis=0)
    totals = matrix.sum(axis=0)
    matrix = matrix / np.where(totals > 0.0, totals, 1.0)
    return matrix, int(iterations)


def _layered_docrank(docgraph: DocGraph, damping: float = DEFAULT_DAMPING, *,
                     site_damping: Optional[float] = None,
                     site_preference: Optional[np.ndarray] = None,
                     document_preferences: Optional[Dict[str, np.ndarray]] = None,
                     include_site_self_links: bool = False,
                     tol: float = DEFAULT_TOL,
                     max_iter: int = DEFAULT_MAX_ITER,
                     executor=None, n_jobs: Optional[int] = None,
                     warm=None, batch_sites: bool = True,
                     personalization: Optional[Mapping] = None,
                     ) -> WebRankingResult:
    """Run the full 5-step Layered Method for DocRank on a DocGraph.

    The method is executed as a :class:`repro.engine.RankingPlan`: step 3's
    per-site DocRank tasks and step 4's SiteRank task run as one concurrent
    batch, and step 5 composes at the batch's barrier.  The default
    (serial) backend performs exactly the operations the historical serial
    loop performed, in the same order.  On a process backend the run
    builds one shared-memory :class:`~repro.engine.arena.GraphArena` for
    the batch — every site's local adjacency and the SiteGraph are laid
    into it once, workers attach zero-copy, and the arena is unlinked at
    the barrier — so dispatch cost does not scale with the web's size.

    Parameters
    ----------
    damping:
        Damping factor of the per-site local DocRanks (the ``α`` of the
        gatekeeper construction).
    site_damping:
        Damping factor of the SiteRank computation (defaults to *damping*).
    site_preference:
        Optional site-layer personalisation distribution (over sites in
        DocGraph site order).
    document_preferences:
        Optional per-site document-layer personalisation vectors.
    include_site_self_links:
        Whether intra-site links count in the SiteGraph aggregation (see
        :func:`repro.web.sitegraph.aggregate_sitegraph`).
    executor / n_jobs:
        Execution backend for the concurrent batch, resolved by
        :func:`repro.engine.resolve_executor`; serial when both omitted,
        a process pool of ``n_jobs`` workers when ``n_jobs > 1``.
    warm:
        Optional :class:`repro.engine.WarmStartState` to resume power
        iterations from (and record the converged vectors into).
    batch_sites:
        Fuse small sites into block-diagonal batched tasks
        (:class:`repro.engine.plan.BatchedSiteTask`), the default;
        ``False`` opts out to the historical one-task-per-site path.
    personalization:
        Optional declarative segment mapping (the shape
        :class:`repro.api.RankingConfig` validates).  The base ranking is
        computed exactly as without it; the K segments are then solved as
        one fused multi-vector pass and attached as score columns.
    """
    from ..engine.plan import RankingPlan

    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot rank an empty DocGraph")

    # Steps 1–2 (input + SiteGraph aggregation) happen at plan build time;
    # steps 3–4 run concurrently inside execute(); step 5 composes below.
    build_started = perf_counter()
    plan = RankingPlan.from_docgraph(
        docgraph, damping, site_damping=site_damping,
        site_preference=site_preference,
        document_preferences=document_preferences,
        include_site_self_links=include_site_self_links,
        tol=tol, max_iter=max_iter, batch_sites=batch_sites)
    build_seconds = perf_counter() - build_started
    execution = plan.execute(executor=executor, n_jobs=n_jobs, warm=warm)

    method = "layered"
    if site_preference is not None or document_preferences:
        method = "layered-personalized"
    compose_started = perf_counter()
    with obs.span(obs.PHASE_PLAN_COMPOSE):
        result = compose_ranking(docgraph, plan.sitegraph.sites,
                                 execution.siterank, execution.local,
                                 method=method,
                                 iterations=execution.total_iterations)
    result.timings = {
        obs.PHASE_PLAN_BUILD: build_seconds,
        obs.PHASE_PLAN_EXECUTE: execution.wall_seconds,
        obs.PHASE_PLAN_COMPOSE: perf_counter() - compose_started,
    }

    if personalization:
        segments_started = perf_counter()
        with obs.span(obs.PHASE_PLAN_SEGMENTS):
            segments = build_segment_preferences(docgraph, plan.sitegraph,
                                                 personalization)
            columns, segment_iterations = solve_segment_columns(
                docgraph, plan.sitegraph, segments, damping,
                site_damping=site_damping, tol=tol, max_iter=max_iter,
                executor=executor, n_jobs=n_jobs)
        result.segments = segments.names
        result.segment_columns = columns
        result.iterations += segment_iterations
        result.timings[obs.PHASE_PLAN_SEGMENTS] = (
            perf_counter() - segments_started)
    return result


def _flat_pagerank_ranking(docgraph: DocGraph,
                           damping: float = DEFAULT_DAMPING, *,
                           preference: Optional[np.ndarray] = None,
                           tol: float = DEFAULT_TOL,
                           max_iter: int = DEFAULT_MAX_ITER) -> WebRankingResult:
    """The flat (classical PageRank) baseline over the same DocGraph.

    This is the ranking the paper's Figure 3 reports and that Figure 4's
    layered ranking is compared against.
    """
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot rank an empty DocGraph")
    result = pagerank(docgraph.adjacency(), damping=damping,
                      preference=preference, tol=tol, max_iter=max_iter)
    doc_ids = list(range(docgraph.n_documents))
    urls = [docgraph.document(doc_id).url for doc_id in doc_ids]
    return WebRankingResult(doc_ids=doc_ids, urls=urls, scores=result.scores,
                            method="pagerank", iterations=result.iterations)


def lmm_from_docgraph(docgraph: DocGraph, *,
                      include_site_self_links: bool = False,
                      site_damping: float = DEFAULT_DAMPING,
                      ) -> LayeredMarkovModel:
    """Build the :class:`LayeredMarkovModel` induced by a DocGraph.

    Phases are the web sites; each phase's sub-state transition matrix is the
    row-normalised local link matrix (dangling pages jump uniformly within
    the site); the phase transition matrix is the *primitive* transition
    matrix ``M̂(G_S)`` of the SiteGraph, which is what Theorem 2 requires.

    The integration tests use this to check that
    the layered pipeline coincides with
    :func:`repro.core.layered_method.approach_4` on the induced model.
    """
    from ..markov.irreducibility import maximal_irreducibility

    sitegraph = aggregate_sitegraph(docgraph,
                                    include_self_links=include_site_self_links)
    site_transition = transition_matrix(sitegraph.adjacency,
                                        dangling="uniform")
    primitive_site_matrix = maximal_irreducibility(site_transition,
                                                   site_damping)
    phases = []
    for site in sitegraph.sites:
        local_adjacency, doc_ids = docgraph.local_adjacency(site)
        local_transition = transition_matrix(local_adjacency,
                                             dangling="uniform")
        dense = (local_transition.toarray()
                 if hasattr(local_transition, "toarray")
                 else np.asarray(local_transition, dtype=float))
        phases.append(Phase(name=site, transition=dense,
                            sub_state_names=[docgraph.document(d).url
                                             for d in doc_ids]))
    return LayeredMarkovModel(phases=phases,
                              phase_transition=primitive_site_matrix)
