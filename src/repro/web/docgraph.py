"""The DocGraph: the document-level web graph ``G_D(V_D, E_D)``.

A :class:`DocGraph` stores web documents (identified by URL), the DocLinks
between them, and the assignment of every document to its web site.  It is
the input of both the flat PageRank baseline and the layered ranking
pipeline, and the object the SiteGraph (:mod:`repro.web.sitegraph`) is
aggregated from.

The class is deliberately an explicit, append-only builder (``add_document``
/ ``add_link``) rather than a thin wrapper around networkx: the distributed
simulation needs cheap per-site slicing, and the benchmarks need
deterministic document indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphStructureError, ValidationError
from ..linalg.sparse_utils import coo_from_edges, submatrix
from .url import normalize_url, site_of


@dataclass(frozen=True)
class Document:
    """One web document.

    Attributes
    ----------
    doc_id:
        Dense integer identifier (index into the adjacency matrix).
    url:
        Canonical URL.
    site:
        Identifier of the owning web site.
    is_dynamic:
        Whether the page is dynamically generated (query string / script
        extension) — kept because the paper includes dynamic pages on
        purpose and they dominate its Figure 3.
    """

    doc_id: int
    url: str
    site: str
    is_dynamic: bool = False


class DocGraph:
    """A directed graph of web documents grouped into web sites.

    Parameters
    ----------
    site_extractor:
        Callable mapping a URL to its site identifier; defaults to the
        host-based :func:`repro.web.url.site_of`.
    normalize:
        Whether to normalise URLs on insertion (recommended; disable only
        when the caller guarantees canonical identifiers, e.g. synthetic
        generators).
    """

    def __init__(self, *, site_extractor: Optional[Callable[[str], str]] = None,
                 normalize: bool = True) -> None:
        self._site_extractor = site_extractor or site_of
        self._normalize = normalize
        self._documents: List[Document] = []
        self._id_by_url: Dict[str, int] = {}
        self._edges: List[Tuple[int, int]] = []
        self._docs_by_site: Dict[str, List[int]] = {}
        self._adjacency_cache: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_document(self, url: str, *, site: Optional[str] = None,
                     is_dynamic: Optional[bool] = None) -> int:
        """Add a document (idempotent) and return its integer id.

        Parameters
        ----------
        site:
            Explicit site identifier; derived from the URL when omitted.
        is_dynamic:
            Explicit dynamic-page flag; derived from the URL when omitted.
        """
        key = normalize_url(url) if self._normalize else url
        existing = self._id_by_url.get(key)
        if existing is not None:
            return existing
        if site is None:
            site = self._site_extractor(key)
        if is_dynamic is None:
            from .url import is_dynamic_url

            try:
                is_dynamic = is_dynamic_url(key)
            except ValidationError:
                is_dynamic = False
        doc_id = len(self._documents)
        document = Document(doc_id=doc_id, url=key, site=site,
                            is_dynamic=bool(is_dynamic))
        self._documents.append(document)
        self._id_by_url[key] = doc_id
        self._docs_by_site.setdefault(site, []).append(doc_id)
        self._adjacency_cache = None
        return doc_id

    def add_link(self, source_url: str, target_url: str) -> Tuple[int, int]:
        """Add a DocLink; both endpoints are added if missing.

        Self-links are kept (a page may link to itself), duplicate links are
        kept as parallel edges and accumulate weight in the adjacency matrix,
        which is exactly how the paper counts SiteLinks.
        """
        source = self.add_document(source_url)
        target = self.add_document(target_url)
        self._edges.append((source, target))
        self._adjacency_cache = None
        return source, target

    def add_link_by_id(self, source: int, target: int) -> None:
        """Add a DocLink between two already-registered document ids."""
        n = len(self._documents)
        if not (0 <= source < n and 0 <= target < n):
            raise GraphStructureError(
                f"link ({source}, {target}) references unknown documents "
                f"(graph has {n})")
        self._edges.append((source, target))
        self._adjacency_cache = None

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]], *,
                   site_extractor: Optional[Callable[[str], str]] = None,
                   normalize: bool = True) -> "DocGraph":
        """Build a DocGraph from an iterable of ``(source URL, target URL)``."""
        graph = cls(site_extractor=site_extractor, normalize=normalize)
        for source, target in edges:
            graph.add_link(source, target)
        return graph

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Number of documents ``N_D``."""
        return len(self._documents)

    @property
    def n_links(self) -> int:
        """Number of DocLinks (counting multiplicity)."""
        return len(self._edges)

    @property
    def n_sites(self) -> int:
        """Number of distinct web sites ``N_S``."""
        return len(self._docs_by_site)

    def __len__(self) -> int:
        return self.n_documents

    def __contains__(self, url: str) -> bool:
        key = normalize_url(url) if self._normalize else url
        return key in self._id_by_url

    def documents(self) -> Iterator[Document]:
        """Iterate over all documents in id order."""
        return iter(self._documents)

    def document(self, doc_id: int) -> Document:
        """The :class:`Document` with the given id."""
        if not 0 <= doc_id < len(self._documents):
            raise GraphStructureError(f"unknown document id {doc_id}")
        return self._documents[doc_id]

    def document_by_url(self, url: str) -> Document:
        """The :class:`Document` with the given URL."""
        key = normalize_url(url) if self._normalize else url
        doc_id = self._id_by_url.get(key)
        if doc_id is None:
            raise GraphStructureError(f"unknown document URL {url!r}")
        return self._documents[doc_id]

    def urls(self) -> List[str]:
        """All document URLs in id order."""
        return [document.url for document in self._documents]

    def sites(self) -> List[str]:
        """All site identifiers, in first-seen order."""
        return list(self._docs_by_site.keys())

    def site_of_document(self, doc_id: int) -> str:
        """Site identifier of a document id."""
        return self.document(doc_id).site

    def documents_of_site(self, site: str) -> List[int]:
        """Document ids belonging to a site ("V_d(s)" in the paper)."""
        if site not in self._docs_by_site:
            raise GraphStructureError(f"unknown site {site!r}")
        return list(self._docs_by_site[site])

    def site_sizes(self) -> Dict[str, int]:
        """``size(s)`` for every site: the number of local documents ``n_s``."""
        return {site: len(ids) for site, ids in self._docs_by_site.items()}

    def edges(self) -> List[Tuple[int, int]]:
        """All DocLinks as ``(source id, target id)`` pairs."""
        return list(self._edges)

    # ------------------------------------------------------------------ #
    # Matrices
    # ------------------------------------------------------------------ #
    def adjacency(self) -> sp.csr_matrix:
        """The ``N_D x N_D`` sparse adjacency (link-count) matrix."""
        if self.n_documents == 0:
            raise GraphStructureError("DocGraph is empty")
        if self._adjacency_cache is None:
            self._adjacency_cache = coo_from_edges(self._edges,
                                                   self.n_documents)
        return self._adjacency_cache

    def local_adjacency(self, site: str) -> Tuple[sp.csr_matrix, List[int]]:
        """The local subgraph ``G^s_d`` of one site.

        Returns the adjacency matrix restricted to the site's documents
        (only intra-site links, per the paper's definition of ``E_d(s)``)
        together with the list of global document ids in local order.
        """
        doc_ids = self.documents_of_site(site)
        local = submatrix(self.adjacency(), doc_ids)
        return local, doc_ids

    def in_degrees(self) -> np.ndarray:
        """In-degree (number of incoming DocLinks) of every document."""
        return np.asarray(self.adjacency().sum(axis=0)).ravel()

    def out_degrees(self) -> np.ndarray:
        """Out-degree (number of outgoing DocLinks) of every document."""
        return np.asarray(self.adjacency().sum(axis=1)).ravel()

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` (URLs as node labels)."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for document in self._documents:
            graph.add_node(document.url, site=document.site,
                           is_dynamic=document.is_dynamic)
        for source, target in self._edges:
            graph.add_edge(self._documents[source].url,
                           self._documents[target].url)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DocGraph(n_documents={self.n_documents}, "
                f"n_links={self.n_links}, n_sites={self.n_sites})")
