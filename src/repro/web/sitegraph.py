"""The SiteGraph: the web graph aggregated at web-site granularity.

Section 3.1 of the paper: "When the SiteGraph is created, to count the number
of SiteLinks between two sites, we add the number of outgoing edges from any
node in the first site to any node in the second site."  This module performs
exactly that aggregation and is careful about the one design decision the
paper highlights against BlockRank: **only link counts are used**, never the
local PageRank values, so the SiteGraph can be built (and SiteRank computed)
before, after, or in parallel with the per-site DocRanks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphStructureError, ValidationError
from ..linalg.sparse_utils import coo_from_edges
from .docgraph import DocGraph


@dataclass
class SiteGraph:
    """The site-level graph ``G_S(V_S, E_S)``.

    Attributes
    ----------
    sites:
        Site identifiers in index order.
    adjacency:
        ``N_S x N_S`` sparse matrix; entry ``(I, J)`` is the number of
        SiteLinks (document-level links) from site ``I`` to site ``J``.
    site_sizes:
        Number of documents of each site, aligned with *sites*.
    include_self_links:
        Whether intra-site document links were counted on the diagonal.
    """

    sites: List[str]
    adjacency: sp.csr_matrix
    site_sizes: List[int]
    include_self_links: bool = False

    def __post_init__(self) -> None:
        if self.adjacency.shape != (len(self.sites), len(self.sites)):
            raise ValidationError(
                "SiteGraph adjacency shape does not match the site list")
        if len(self.site_sizes) != len(self.sites):
            raise ValidationError(
                "site_sizes must align with the site list")

    @property
    def n_sites(self) -> int:
        """Number of web sites ``N_S``."""
        return len(self.sites)

    @property
    def n_sitelinks(self) -> int:
        """Total number of SiteLinks (sum of all inter-site link counts)."""
        return int(self.adjacency.sum())

    def site_index(self, site: str) -> int:
        """Index of a site identifier."""
        try:
            return self.sites.index(site)
        except ValueError:
            raise GraphStructureError(f"unknown site {site!r}") from None

    def sitelink_count(self, source: str, target: str) -> int:
        """Number of SiteLinks from *source* to *target*."""
        i, j = self.site_index(source), self.site_index(target)
        return int(self.adjacency[i, j])

    def to_networkx(self):
        """Export to a weighted :class:`networkx.DiGraph`."""
        import networkx as nx

        graph = nx.DiGraph()
        for site, size in zip(self.sites, self.site_sizes):
            graph.add_node(site, size=size)
        coo = self.adjacency.tocoo()
        for i, j, weight in zip(coo.row, coo.col, coo.data):
            graph.add_edge(self.sites[int(i)], self.sites[int(j)],
                           weight=float(weight))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SiteGraph(n_sites={self.n_sites}, "
                f"n_sitelinks={self.n_sitelinks})")


def aggregate_sitegraph(docgraph: DocGraph, *,
                        include_self_links: bool = False,
                        site_order: Optional[List[str]] = None) -> SiteGraph:
    """Aggregate a :class:`DocGraph` into its :class:`SiteGraph`.

    Parameters
    ----------
    docgraph:
        The document-level graph.
    include_self_links:
        Whether intra-site DocLinks contribute to the SiteGraph's diagonal.
        The paper's SiteGraph concerns transitions *between* sites, so the
        default drops them; keeping them (``True``) makes the site-level
        random walk favour sites with dense internal structure, a variant
        exercised by the ablation tests.
    site_order:
        Optional explicit ordering of the site identifiers (useful to align
        several aggregations); defaults to the DocGraph's first-seen order.
    """
    if docgraph.n_documents == 0:
        raise GraphStructureError("cannot aggregate an empty DocGraph")
    if site_order is None:
        sites = docgraph.sites()
    else:
        sites = list(site_order)
        missing = set(docgraph.sites()) - set(sites)
        if missing:
            raise GraphStructureError(
                f"site_order is missing sites: {sorted(missing)!r}")
    index_of_site: Dict[str, int] = {site: i for i, site in enumerate(sites)}

    site_of_doc = np.empty(docgraph.n_documents, dtype=np.int64)
    for document in docgraph.documents():
        site_of_doc[document.doc_id] = index_of_site[document.site]

    site_edges: List[Tuple[int, int]] = []
    for source, target in docgraph.edges():
        source_site = int(site_of_doc[source])
        target_site = int(site_of_doc[target])
        if source_site == target_site and not include_self_links:
            continue
        site_edges.append((source_site, target_site))

    adjacency = coo_from_edges(site_edges, len(sites))
    sizes_by_site = docgraph.site_sizes()
    site_sizes = [sizes_by_site[site] for site in sites]
    return SiteGraph(sites=sites, adjacency=adjacency, site_sizes=site_sizes,
                     include_self_links=include_self_links)
