"""URL handling: parsing, normalisation and web-site extraction.

The paper's application layer groups web documents by **web site**: "taking
one page d, we denote its corresponding site as s = site(d)".  In the EPFL
experiment sites correspond to host names (``www.epfl.ch``,
``research.epfl.ch``, ``lamp.epfl.ch`` …).  This module provides the
``site_of`` mapping together with light-weight URL normalisation so that the
DocGraph builder treats ``http://a/b`` and ``http://a/b/`` as the same
document, and exposes alternative grouping policies (by host, by registered
domain, by path prefix) since the paper notes the hierarchy may also come
from domains or geography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal
from urllib.parse import urlsplit, urlunsplit

from ..exceptions import ValidationError

GroupingPolicy = Literal["host", "domain", "path-prefix"]


@dataclass(frozen=True)
class ParsedURL:
    """A parsed and normalised URL.

    Attributes
    ----------
    scheme, host, port, path, query:
        The usual URL components after normalisation (lower-cased scheme and
        host, default ports removed, empty path replaced with ``/``).
    is_dynamic:
        Whether the URL carries a query string or a known server-side-script
        extension — the paper deliberately *includes* such dynamic pages in
        the crawl, and they are central to the spam discussion of Figure 3.
    """

    scheme: str
    host: str
    port: int | None
    path: str
    query: str

    @property
    def is_dynamic(self) -> bool:
        if self.query:
            return True
        lowered = self.path.lower()
        return any(lowered.endswith(ext)
                   for ext in (".php", ".asp", ".aspx", ".jsp", ".cgi"))

    def unparse(self) -> str:
        """Reassemble the normalised URL string."""
        netloc = self.host if self.port is None else f"{self.host}:{self.port}"
        return urlunsplit((self.scheme, netloc, self.path, self.query, ""))


_DEFAULT_PORTS = {"http": 80, "https": 443}


def parse_url(url: str) -> ParsedURL:
    """Parse and normalise a URL string.

    Normalisation: lower-case scheme and host, strip fragments, drop default
    ports, collapse an empty path to ``/``.  Raises
    :class:`~repro.exceptions.ValidationError` for URLs without a host or
    with an unsupported scheme.
    """
    if not isinstance(url, str) or not url.strip():
        raise ValidationError("url must be a non-empty string")
    parts = urlsplit(url.strip())
    scheme = (parts.scheme or "http").lower()
    if scheme not in ("http", "https"):
        raise ValidationError(f"unsupported URL scheme {scheme!r} in {url!r}")
    host = (parts.hostname or "").lower()
    if not host:
        raise ValidationError(f"URL {url!r} has no host")
    port = parts.port
    if port is not None and port == _DEFAULT_PORTS.get(scheme):
        port = None
    path = parts.path or "/"
    return ParsedURL(scheme=scheme, host=host, port=port, path=path,
                     query=parts.query)


def normalize_url(url: str) -> str:
    """Return the canonical string form of *url*."""
    return parse_url(url).unparse()


def site_of(url: str, *, policy: GroupingPolicy = "host",
            path_depth: int = 1) -> str:
    """Return the web-site identifier of a document URL.

    Parameters
    ----------
    policy:
        * ``"host"`` (default, the paper's EPFL setting): the site is the
          full host name, e.g. ``research.epfl.ch``.
        * ``"domain"``: the site is the registered domain (last two host
          labels), e.g. ``epfl.ch`` — the "grouped by Internet domain names"
          alternative the paper mentions.
        * ``"path-prefix"``: host plus the first *path_depth* path segments,
          for sites hosting many independent projects under one host
          (``lamp.epfl.ch/~linuxsoft``).
    path_depth:
        Number of leading path segments kept under the ``"path-prefix"``
        policy.
    """
    parsed = parse_url(url)
    if policy == "host":
        return parsed.host
    if policy == "domain":
        labels = parsed.host.split(".")
        if len(labels) <= 2:
            return parsed.host
        return ".".join(labels[-2:])
    if policy == "path-prefix":
        if path_depth < 0:
            raise ValidationError("path_depth must be non-negative")
        segments = [segment for segment in parsed.path.split("/") if segment]
        prefix = "/".join(segments[:path_depth])
        return f"{parsed.host}/{prefix}" if prefix else parsed.host
    raise ValidationError(f"unknown grouping policy {policy!r}")


def make_site_extractor(policy: GroupingPolicy = "host",
                        path_depth: int = 1) -> Callable[[str], str]:
    """Return a ``site_of``-style callable with the policy baked in.

    Convenience for passing into :class:`repro.web.docgraph.DocGraph`
    builders and the crawler simulation.
    """
    def extractor(url: str) -> str:
        return site_of(url, policy=policy, path_depth=path_depth)

    return extractor


def is_dynamic_url(url: str) -> bool:
    """Whether *url* looks like a dynamically generated (scripted) page."""
    return parse_url(url).is_dynamic
