"""Synthetic text corpora for the combined (query + link) ranking examples.

The paper plans TREC experiments as future work; for the examples and tests
we only need *some* text attached to the documents of a synthetic web so
that the vector-space model has something to retrieve.  The generator
derives a small deterministic bag of words for every document from its URL
(host, path segments) plus a site-specific topic vocabulary, so queries like
``"research database"`` naturally match the research site's pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..web.docgraph import DocGraph

#: Topic vocabularies assigned to sites round-robin by site index.
TOPIC_VOCABULARIES: List[List[str]] = [
    ["research", "database", "publication", "project", "grant"],
    ["teaching", "course", "lecture", "exam", "student"],
    ["admission", "application", "enrol", "bachelor", "master"],
    ["laboratory", "experiment", "measurement", "instrument", "sensor"],
    ["library", "archive", "journal", "catalogue", "collection"],
    ["campus", "building", "map", "restaurant", "transport"],
    ["software", "documentation", "api", "release", "download"],
    ["news", "event", "press", "announcement", "anniversary"],
]


def synthesize_corpus(docgraph: DocGraph, *, words_per_document: int = 40,
                      seed: int = 11,
                      rng: Optional[np.random.Generator] = None,
                      ) -> Dict[int, str]:
    """Generate a ``{doc_id: text}`` corpus for every document of a DocGraph.

    Each document's text mixes (a) tokens derived from its URL, (b) its
    site's topic vocabulary and (c) a little shared background vocabulary,
    sampled deterministically from *seed*.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    background = ["university", "page", "information", "contact", "home",
                  "web", "site", "link", "search", "welcome"]
    sites = docgraph.sites()
    topic_of_site = {site: TOPIC_VOCABULARIES[index % len(TOPIC_VOCABULARIES)]
                     for index, site in enumerate(sites)}
    corpus: Dict[int, str] = {}
    for document in docgraph.documents():
        url_tokens = [token for token in
                      document.url.replace("http://", "").replace("/", " ")
                      .replace(".", " ").replace("?", " ").replace("=", " ")
                      .split() if token]
        topic = topic_of_site[document.site]
        words: List[str] = []
        words.extend(url_tokens[:10])
        n_topic = max(1, words_per_document // 2)
        words.extend(rng.choice(topic, size=n_topic).tolist())
        n_background = max(1, words_per_document - len(words))
        words.extend(rng.choice(background, size=n_background).tolist())
        corpus[document.doc_id] = " ".join(words)
    return corpus
