"""A small vector-space retrieval model (TF-IDF + cosine similarity).

Section 3 of the paper frames the LMM ranking as the *link-structure* half
of a search engine: "search engines take into consideration both query-based
ranking (for example, distances between queries and documents based on the
Vector Space Model) and link-structure-based ranking".  Combining the two is
listed as future work.  This substrate provides the query-based half so the
combination can be exercised by the examples and by the combined-ranking
module (:mod:`repro.ir.combined`); it is deliberately classic TF-IDF, no
stemming or stop lists beyond a minimal default.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import ValidationError

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

#: Minimal English stop-word list; enough to keep the toy corpora sensible.
DEFAULT_STOPWORDS = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
    "he", "in", "is", "it", "its", "of", "on", "or", "that", "the", "to",
    "was", "were", "will", "with",
})


def tokenize(text: str, *, stopwords=DEFAULT_STOPWORDS) -> List[str]:
    """Lower-case, split on non-alphanumerics and drop stop words."""
    if text is None:
        raise ValidationError("text must not be None")
    tokens = _TOKEN_PATTERN.findall(text.lower())
    return [token for token in tokens if token not in stopwords]


@dataclass
class VectorSpaceIndex:
    """A TF-IDF index over a corpus of documents keyed by document id.

    Build with :meth:`from_corpus`; query with :meth:`search` or
    :meth:`score` for a single document.
    """

    doc_ids: List[int]
    term_frequencies: List[Dict[str, float]]
    document_frequencies: Dict[str, int] = field(default_factory=dict)
    norms: List[float] = field(default_factory=list)

    @classmethod
    def from_corpus(cls, corpus: Dict[int, str], *,
                    stopwords=DEFAULT_STOPWORDS) -> "VectorSpaceIndex":
        """Index a ``{doc_id: text}`` corpus."""
        if not corpus:
            raise ValidationError("corpus must not be empty")
        doc_ids = sorted(corpus)
        term_frequencies: List[Dict[str, float]] = []
        document_frequencies: Dict[str, int] = {}
        for doc_id in doc_ids:
            counts: Dict[str, float] = {}
            for token in tokenize(corpus[doc_id], stopwords=stopwords):
                counts[token] = counts.get(token, 0.0) + 1.0
            term_frequencies.append(counts)
            for term in counts:
                document_frequencies[term] = document_frequencies.get(term, 0) + 1
        index = cls(doc_ids=doc_ids, term_frequencies=term_frequencies,
                    document_frequencies=document_frequencies)
        index._compute_norms()
        return index

    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Number of indexed documents."""
        return len(self.doc_ids)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of a term."""
        df = self.document_frequencies.get(term, 0)
        return math.log((1.0 + self.n_documents) / (1.0 + df)) + 1.0

    def _tfidf_weight(self, doc_index: int, term: str) -> float:
        tf = self.term_frequencies[doc_index].get(term, 0.0)
        if tf == 0.0:
            return 0.0
        return (1.0 + math.log(tf)) * self.idf(term)

    def _compute_norms(self) -> None:
        self.norms = []
        for doc_index in range(self.n_documents):
            total = sum(self._tfidf_weight(doc_index, term) ** 2
                        for term in self.term_frequencies[doc_index])
            self.norms.append(math.sqrt(total))

    # ------------------------------------------------------------------ #
    def score(self, query: str, doc_id: int, *,
              stopwords=DEFAULT_STOPWORDS) -> float:
        """Cosine similarity between *query* and one document."""
        try:
            doc_index = self.doc_ids.index(doc_id)
        except ValueError:
            raise ValidationError(f"unknown document id {doc_id}") from None
        return self._score_index(tokenize(query, stopwords=stopwords),
                                 doc_index)

    def _score_index(self, query_tokens: Sequence[str], doc_index: int) -> float:
        if not query_tokens:
            return 0.0
        query_counts: Dict[str, float] = {}
        for token in query_tokens:
            query_counts[token] = query_counts.get(token, 0.0) + 1.0
        query_weights = {term: (1.0 + math.log(count)) * self.idf(term)
                         for term, count in query_counts.items()}
        query_norm = math.sqrt(sum(weight ** 2
                                   for weight in query_weights.values()))
        if query_norm == 0.0 or self.norms[doc_index] == 0.0:
            return 0.0
        dot = sum(weight * self._tfidf_weight(doc_index, term)
                  for term, weight in query_weights.items())
        return dot / (query_norm * self.norms[doc_index])

    def search(self, query: str, *, k: Optional[int] = None,
               stopwords=DEFAULT_STOPWORDS) -> List[tuple[int, float]]:
        """Rank all documents against *query*; return ``(doc_id, score)`` pairs.

        Documents with zero similarity are omitted.  When *k* is given only
        the best *k* results are returned.
        """
        tokens = tokenize(query, stopwords=stopwords)
        results = []
        for doc_index, doc_id in enumerate(self.doc_ids):
            similarity = self._score_index(tokens, doc_index)
            if similarity > 0.0:
                results.append((doc_id, similarity))
        results.sort(key=lambda pair: (-pair[1], pair[0]))
        if k is not None:
            if k < 0:
                raise ValidationError("k must be non-negative")
            results = results[:k]
        return results
