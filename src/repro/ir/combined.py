"""Combining query-based and link-based rankings.

"Work of combining query-based ranking and link-based ranking will also be
carried out" — the paper's future work.  We provide the two standard
combination rules so the examples can show an end-to-end search over a
synthetic campus web:

* **linear** — ``score = λ · query_score + (1 − λ) · link_score`` after
  min-max normalising both components over the candidate set;
* **rank-fusion** (reciprocal rank fusion) — combine the two *orderings*
  rather than the scores, which is robust to their very different scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError
from .vector_space import VectorSpaceIndex

CombinationRule = Literal["linear", "rrf"]


@dataclass
class SearchHit:
    """One result of a combined search.

    Attributes
    ----------
    doc_id:
        The document id.
    combined_score:
        The final score used for ordering.
    query_score:
        The raw vector-space similarity.
    link_score:
        The raw link-based (DocRank) score.
    """

    doc_id: int
    combined_score: float
    query_score: float
    link_score: float


def validate_combination(weight: float, k: int) -> None:
    """Validate combination parameters before any retrieval work is done.

    Shared by :func:`combined_search`, :func:`combine_candidates` and the
    serving layer (which must reject bad parameters before its cache
    lookup), so the accepted ranges live in exactly one place.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValidationError("weight must be in [0, 1]")
    if k <= 0:
        raise ValidationError("k must be positive")


def _minmax_normalize(values: np.ndarray) -> np.ndarray:
    low, high = float(values.min()), float(values.max())
    if high <= low:
        return np.zeros_like(values)
    return (values - low) / (high - low)


def combined_search(index: VectorSpaceIndex, query: str,
                    link_scores_by_doc: Dict[int, float] | np.ndarray, *,
                    rule: CombinationRule = "linear",
                    weight: float = 0.5,
                    k: int = 10,
                    rrf_constant: float = 60.0) -> List[SearchHit]:
    """Search with a query and re-rank candidates with link-based scores.

    Parameters
    ----------
    index:
        The vector-space index over the corpus.
    query:
        Free-text query.
    link_scores_by_doc:
        Link-based ranking scores indexed by document id (a dict or an array
        positionally indexed by id) — typically
        :meth:`repro.web.pipeline.WebRankingResult.scores_by_doc_id`.
    rule:
        ``"linear"`` or ``"rrf"``.
    weight:
        λ of the linear rule: 1.0 = pure text ranking, 0.0 = pure link
        ranking.
    k:
        Number of hits returned.
    rrf_constant:
        The usual damping constant of reciprocal rank fusion.
    """
    validate_combination(weight, k)
    return combine_candidates(index.search(query), link_scores_by_doc,
                              rule=rule, weight=weight, k=k,
                              rrf_constant=rrf_constant)


def combine_candidates(candidates: Sequence[Tuple[int, float]],
                       link_scores_by_doc: Dict[int, float] | np.ndarray, *,
                       rule: CombinationRule = "linear",
                       weight: float = 0.5,
                       k: int = 10,
                       rrf_constant: float = 60.0) -> List[SearchHit]:
    """Combine an already-retrieved candidate set with link-based scores.

    Split out of :func:`combined_search` so callers that retrieve candidates
    once and reuse them — e.g. the serving layer, which also needs the
    candidate set to tag cached results — do not pay a second index lookup.

    *candidates* is a ``(doc_id, query_score)`` sequence as returned by
    :meth:`repro.ir.vector_space.VectorSpaceIndex.search`.
    """
    validate_combination(weight, k)
    if not candidates:
        return []

    def link_score_of(doc_id: int) -> float:
        if isinstance(link_scores_by_doc, dict):
            return float(link_scores_by_doc.get(doc_id, 0.0))
        scores = np.asarray(link_scores_by_doc, dtype=float)
        return float(scores[doc_id]) if 0 <= doc_id < scores.size else 0.0

    doc_ids = [doc_id for doc_id, _score in candidates]
    query_scores = np.asarray([score for _doc, score in candidates],
                              dtype=float)
    link_scores = np.asarray([link_score_of(doc_id) for doc_id in doc_ids],
                             dtype=float)

    if rule == "linear":
        combined = (weight * _minmax_normalize(query_scores)
                    + (1.0 - weight) * _minmax_normalize(link_scores))
    elif rule == "rrf":
        # Ranks tie-break by ascending doc id (not candidate position), so
        # the fusion is deterministic and invariant to candidate order.
        ids = np.asarray(doc_ids)
        query_order = np.lexsort((ids, -query_scores))
        link_order = np.lexsort((ids, -link_scores))
        query_rank = np.empty(len(doc_ids))
        link_rank = np.empty(len(doc_ids))
        query_rank[query_order] = np.arange(1, len(doc_ids) + 1)
        link_rank[link_order] = np.arange(1, len(doc_ids) + 1)
        combined = (1.0 / (rrf_constant + query_rank)
                    + 1.0 / (rrf_constant + link_rank))
    else:
        raise ValidationError(f"unknown combination rule {rule!r}")

    order = np.lexsort((np.asarray(doc_ids), -combined))
    hits = []
    for position in order[:k]:
        position = int(position)
        hits.append(SearchHit(doc_id=doc_ids[position],
                              combined_score=float(combined[position]),
                              query_score=float(query_scores[position]),
                              link_score=float(link_scores[position])))
    return hits
