"""Small IR substrate: vector-space retrieval and query+link combination."""

from .combined import (
    CombinationRule,
    SearchHit,
    combine_candidates,
    combined_search,
    validate_combination,
)
from .corpus import TOPIC_VOCABULARIES, synthesize_corpus
from .vector_space import DEFAULT_STOPWORDS, VectorSpaceIndex, tokenize

__all__ = [
    "CombinationRule",
    "SearchHit",
    "combine_candidates",
    "combined_search",
    "validate_combination",
    "TOPIC_VOCABULARIES",
    "synthesize_corpus",
    "DEFAULT_STOPWORDS",
    "VectorSpaceIndex",
    "tokenize",
]
