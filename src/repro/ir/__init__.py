"""Small IR substrate: vector-space retrieval and query+link combination."""

from .combined import CombinationRule, SearchHit, combined_search
from .corpus import TOPIC_VOCABULARIES, synthesize_corpus
from .vector_space import DEFAULT_STOPWORDS, VectorSpaceIndex, tokenize

__all__ = [
    "CombinationRule",
    "SearchHit",
    "combined_search",
    "TOPIC_VOCABULARIES",
    "synthesize_corpus",
    "DEFAULT_STOPWORDS",
    "VectorSpaceIndex",
    "tokenize",
]
