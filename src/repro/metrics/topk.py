"""Top-k comparison measures.

The paper's Figures 3 and 4 are top-15 lists; the corresponding quantitative
measures are overlap / Jaccard similarity of top-k sets and precision of a
top-k list against a set of relevant (e.g. "authoritative" or "farm") items.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np

from ..exceptions import ValidationError


def top_k_indices(scores, k: int) -> list:
    """Indices of the ``k`` largest scores, best first, ties broken by index."""
    values = np.asarray(scores, dtype=float).ravel()
    if k < 0:
        raise ValidationError("k must be non-negative")
    k = min(k, values.size)
    order = np.lexsort((np.arange(values.size), -values))
    return [int(i) for i in order[:k]]


def rankings_equivalent(ranked_a: Sequence, ranked_b: Sequence,
                        score_of, *, atol: float = 0.0) -> bool:
    """Whether two rankings are identical up to genuinely tied items.

    Two solvers computing the same scores through different (equally
    valid) floating-point orderings can land exactly-tied items one ULP
    apart, flipping the deterministic index tie-break between them; such
    permutations carry no ranking information.  This predicate accepts two
    rankings as *identical* when every positional disagreement is confined
    to items whose scores (per *score_of*, a callable or mapping) agree
    within *atol* — covering both tied items swapping places and, for
    truncated top-k lists, tied items trading membership across the k-cut.
    With ``atol=0`` only *exactly* tied items may disagree.  Used by the
    batched-solver equivalence tests and benchmark E15.
    """
    if atol < 0:
        raise ValidationError("atol must be non-negative")
    if len(ranked_a) != len(ranked_b):
        return False
    # A ranking never repeats an item.  (Full multiset equality would be
    # wrong here: truncated top-k lists of tied items may legitimately
    # hold different members — but a duplicate is always a defect.)
    if len(set(ranked_a)) != len(ranked_a) or \
            len(set(ranked_b)) != len(ranked_b):
        return False
    lookup = score_of.__getitem__ if hasattr(score_of, "__getitem__") \
        else score_of
    for item_a, item_b in zip(ranked_a, ranked_b):
        if item_a == item_b:
            continue
        if abs(float(lookup(item_a)) - float(lookup(item_b))) > atol:
            return False
    return True


def top_k_overlap(list_a: Sequence, list_b: Sequence, k: int) -> float:
    """Fraction of the top-k of *list_a* also present in the top-k of *list_b*.

    Both arguments are ranked item lists (best first); only their first
    ``k`` entries are compared.  The intersection is normalised by the
    *effective* prefix length ``min(k, |prefix_a|, |prefix_b|)`` — the
    largest intersection the two prefixes could possibly have — so two
    identical lists score 1.0 even when they are shorter than ``k``
    (dividing by ``k`` regardless would deflate the overlap).  Symmetric.
    """
    if k <= 0:
        raise ValidationError("k must be positive")
    prefix_a = set(list_a[:k])
    prefix_b = set(list_b[:k])
    effective = min(k, len(prefix_a), len(prefix_b))
    if effective == 0:
        return 1.0 if not prefix_a and not prefix_b else 0.0
    return len(prefix_a & prefix_b) / float(effective)


def top_k_jaccard(list_a: Sequence, list_b: Sequence, k: int) -> float:
    """Jaccard similarity of the two top-k sets."""
    if k <= 0:
        raise ValidationError("k must be positive")
    prefix_a = set(list_a[:k])
    prefix_b = set(list_b[:k])
    union = prefix_a | prefix_b
    if not union:
        return 1.0
    return len(prefix_a & prefix_b) / len(union)


def precision_at_k(ranked_items: Sequence, relevant: Iterable, k: int) -> float:
    """Fraction of the first ``k`` ranked items that belong to *relevant*."""
    if k <= 0:
        raise ValidationError("k must be positive")
    relevant_set: Set = set(relevant)
    prefix = list(ranked_items[:k])
    if not prefix:
        return 0.0
    hits = sum(1 for item in prefix if item in relevant_set)
    return hits / float(len(prefix))


def average_precision(ranked_items: Sequence, relevant: Iterable) -> float:
    """Average precision of a ranked list against a relevant set.

    Standard IR definition: mean of precision@i over the positions i where a
    relevant item appears; 0 when the relevant set is empty or never found.
    """
    relevant_set: Set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    precisions = []
    for position, item in enumerate(ranked_items, start=1):
        if item in relevant_set:
            hits += 1
            precisions.append(hits / position)
    if not precisions:
        return 0.0
    return float(np.mean(precisions))


def reciprocal_rank(ranked_items: Sequence, relevant: Iterable) -> float:
    """Reciprocal of the rank of the first relevant item (0 when absent)."""
    relevant_set: Set = set(relevant)
    for position, item in enumerate(ranked_items, start=1):
        if item in relevant_set:
            return 1.0 / position
    return 0.0
