"""Convergence tracking utilities for the iteration-count benchmarks (E11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import ValidationError


@dataclass
class ConvergenceTrace:
    """A labelled residual history of one iterative solve.

    Attributes
    ----------
    label:
        Human-readable name (e.g. ``"flat PageRank"`` or
        ``"SiteRank"``).
    residuals:
        L1 residual after each iteration.
    tolerance:
        The stopping tolerance the run targeted.
    """

    label: str
    residuals: List[float]
    tolerance: float

    @property
    def iterations(self) -> int:
        """Number of iterations performed."""
        return len(self.residuals)

    def iterations_to(self, tolerance: float) -> int:
        """First iteration (1-based) at which the residual fell below *tolerance*.

        Returns ``iterations + 1`` when the run never reached it, so the
        value is still usable for comparisons ("did not converge within the
        recorded horizon").
        """
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        for index, residual in enumerate(self.residuals, start=1):
            if residual < tolerance:
                return index
        return self.iterations + 1

    def convergence_rate(self) -> float:
        """Geometric mean of consecutive residual ratios (≈ |λ₂| of the chain).

        Values close to 1 mean slow convergence; the damping factor bounds
        the rate of a PageRank run at ``f``.
        """
        residuals = np.asarray(self.residuals, dtype=float)
        residuals = residuals[residuals > 0]
        if residuals.size < 2:
            return 0.0
        ratios = residuals[1:] / residuals[:-1]
        ratios = ratios[np.isfinite(ratios) & (ratios > 0)]
        if ratios.size == 0:
            return 0.0
        return float(np.exp(np.mean(np.log(ratios))))


def summarize_traces(traces: Sequence[ConvergenceTrace],
                     tolerance: float = 1e-8) -> List[dict]:
    """Tabulate iteration counts and rates of several traces.

    Returns one dict per trace with keys ``label``, ``iterations``,
    ``iterations_to_tol`` and ``rate``, ready for printing by the benchmark
    harness.
    """
    rows = []
    for trace in traces:
        rows.append({
            "label": trace.label,
            "iterations": trace.iterations,
            "iterations_to_tol": trace.iterations_to(tolerance),
            "rate": trace.convergence_rate(),
        })
    return rows
