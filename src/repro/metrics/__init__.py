"""Ranking-comparison metrics: correlations, top-k measures, spam measures."""

from .convergence import ConvergenceTrace, summarize_traces
from .rank_correlation import (
    kendall_tau,
    l1_distance,
    rank_positions,
    same_order,
    spearman_footrule,
    spearman_rho,
)
from .spam_metrics import (
    SpamImpact,
    spam_gain,
    spam_impact,
    spam_mass,
    target_rank_position,
    top_k_contamination,
)
from .topk import (
    average_precision,
    precision_at_k,
    rankings_equivalent,
    reciprocal_rank,
    top_k_indices,
    top_k_jaccard,
    top_k_overlap,
)

__all__ = [
    "ConvergenceTrace",
    "summarize_traces",
    "kendall_tau",
    "l1_distance",
    "rank_positions",
    "same_order",
    "spearman_footrule",
    "spearman_rho",
    "SpamImpact",
    "spam_gain",
    "spam_impact",
    "spam_mass",
    "target_rank_position",
    "top_k_contamination",
    "average_precision",
    "precision_at_k",
    "rankings_equivalent",
    "reciprocal_rank",
    "top_k_indices",
    "top_k_jaccard",
    "top_k_overlap",
]
