"""Measures of how much rank mass a link farm captures (spam resistance).

The paper claims (Sections 1.3 and 3.3) that the layered method defeats
link spamming "to a very satisfiable degree" because an agglomeration of
densely interlinked pages stays confined to its site and is capped by that
site's SiteRank.  These metrics quantify the claim for the spam-resistance
benchmark (E7) and the campus-web experiment (E5/E6):

* **spam mass** — total rank probability captured by the farm pages;
* **spam gain** — spam mass relative to the mass the same number of pages
  would receive under a uniform ranking (1.0 = no amplification);
* **top-k contamination** — fraction of the top-k occupied by farm pages;
* **target boost** — rank position improvement of the promoted target page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set

import numpy as np

from ..exceptions import ValidationError
from .topk import precision_at_k


@dataclass
class SpamImpact:
    """Spam impact of one ranking method on one graph.

    Attributes
    ----------
    method:
        Name of the ranking method.
    spam_mass:
        Total probability mass on farm pages.
    spam_gain:
        ``spam_mass / (n_farm / n_total)`` — amplification over uniform.
    top_k_contamination:
        Fraction of the top-k list occupied by farm pages.
    k:
        The k used for the contamination measure.
    """

    method: str
    spam_mass: float
    spam_gain: float
    top_k_contamination: float
    k: int


def spam_mass(scores_by_doc: np.ndarray, farm_doc_ids: Iterable[int]) -> float:
    """Total rank mass of the farm pages.

    *scores_by_doc* must be indexed by document id (use
    :meth:`repro.web.pipeline.WebRankingResult.scores_by_doc_id`).
    """
    scores = np.asarray(scores_by_doc, dtype=float)
    farm = list(farm_doc_ids)
    if not farm:
        return 0.0
    farm_idx = np.asarray(farm, dtype=int)
    if farm_idx.max() >= scores.size or farm_idx.min() < 0:
        raise ValidationError("farm document id out of range")
    return float(scores[farm_idx].sum())


def spam_gain(scores_by_doc: np.ndarray, farm_doc_ids: Iterable[int]) -> float:
    """Amplification of the farm's mass over a uniform ranking.

    A value of 1 means the farm holds exactly its "fair share"
    ``n_farm / n_total``; values above 1 mean the link structure inflated
    it.
    """
    scores = np.asarray(scores_by_doc, dtype=float)
    farm = list(farm_doc_ids)
    if not farm:
        return 0.0
    fair_share = len(set(farm)) / float(scores.size)
    if fair_share == 0.0:
        return 0.0
    return spam_mass(scores, farm) / fair_share


def top_k_contamination(ranked_doc_ids: Sequence[int],
                        farm_doc_ids: Iterable[int], k: int) -> float:
    """Fraction of the top-k ranked documents that are farm pages."""
    return precision_at_k(ranked_doc_ids, farm_doc_ids, k)


def target_rank_position(ranked_doc_ids: Sequence[int], target: int) -> int:
    """1-based rank position of the farm's promoted target page."""
    for position, doc_id in enumerate(ranked_doc_ids, start=1):
        if doc_id == target:
            return position
    raise ValidationError(f"target document {target} not present in ranking")


def spam_impact(method: str, scores_by_doc: np.ndarray,
                ranked_doc_ids: Sequence[int],
                farm_doc_ids: Set[int], *, k: int = 15) -> SpamImpact:
    """Bundle all spam measures for one method into a :class:`SpamImpact`."""
    return SpamImpact(
        method=method,
        spam_mass=spam_mass(scores_by_doc, farm_doc_ids),
        spam_gain=spam_gain(scores_by_doc, farm_doc_ids),
        top_k_contamination=top_k_contamination(ranked_doc_ids, farm_doc_ids,
                                                k),
        k=k,
    )
