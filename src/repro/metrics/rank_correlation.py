"""Rank-correlation measures between two ranking vectors.

The paper's evaluation compares rankings qualitatively (Figures 3 and 4);
the benchmark harness additionally reports quantitative agreement between
methods, for which the standard measures are implemented here: Kendall's
tau, Spearman's rho, and Spearman's footrule distance.  All functions accept
either score vectors (higher = better) or explicit orderings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from ..exceptions import ValidationError


def _as_scores(values) -> np.ndarray:
    scores = np.asarray(values, dtype=float).ravel()
    if scores.size == 0:
        raise ValidationError("ranking vectors must not be empty")
    return scores


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if a.size != b.size:
        raise ValidationError(
            f"rankings have different lengths ({a.size} vs {b.size})")


def kendall_tau(scores_a, scores_b) -> float:
    """Kendall's tau-b between two score vectors over the same items.

    1 means identical orderings, -1 reversed orderings, 0 no association.
    """
    a, b = _as_scores(scores_a), _as_scores(scores_b)
    _check_same_length(a, b)
    if a.size == 1:
        return 1.0
    tau, _p_value = stats.kendalltau(a, b)
    if np.isnan(tau):
        # Happens when one vector is constant: there is no ordering
        # information to agree or disagree with.
        return 0.0
    return float(tau)


def spearman_rho(scores_a, scores_b) -> float:
    """Spearman's rank correlation between two score vectors."""
    a, b = _as_scores(scores_a), _as_scores(scores_b)
    _check_same_length(a, b)
    if a.size == 1:
        return 1.0
    rho, _p_value = stats.spearmanr(a, b)
    if np.isnan(rho):
        return 0.0
    return float(rho)


def rank_positions(scores) -> np.ndarray:
    """0-based rank position of every item (0 = highest score).

    Ties are broken by item index, matching the deterministic tie-breaking
    used by the ranking result classes.
    """
    values = _as_scores(scores)
    order = np.lexsort((np.arange(values.size), -values))
    positions = np.empty(values.size, dtype=int)
    positions[order] = np.arange(values.size)
    return positions


def spearman_footrule(scores_a, scores_b, *, normalized: bool = True) -> float:
    """Spearman's footrule: total displacement between two rankings.

    Parameters
    ----------
    normalized:
        When ``True`` (default) the distance is divided by its maximum
        possible value, giving a number in ``[0, 1]`` where 0 means the
        rankings are identical.
    """
    a, b = _as_scores(scores_a), _as_scores(scores_b)
    _check_same_length(a, b)
    positions_a = rank_positions(a)
    positions_b = rank_positions(b)
    distance = float(np.abs(positions_a - positions_b).sum())
    if not normalized:
        return distance
    n = a.size
    maximum = (n * n) / 2.0 if n % 2 == 0 else (n * n - 1) / 2.0
    return distance / maximum if maximum > 0 else 0.0


def l1_distance(scores_a, scores_b) -> float:
    """Plain L1 distance between two score vectors (not rank based)."""
    a, b = _as_scores(scores_a), _as_scores(scores_b)
    _check_same_length(a, b)
    return float(np.abs(a - b).sum())


def same_order(scores_a, scores_b) -> bool:
    """Whether two score vectors induce exactly the same ordering.

    This is the check behind the paper's observation that Approach 1 and
    Approach 2 "rank all system states in an identical order" despite
    slightly different values.
    """
    a, b = _as_scores(scores_a), _as_scores(scores_b)
    _check_same_length(a, b)
    return bool(np.array_equal(rank_positions(a), rank_positions(b)))
