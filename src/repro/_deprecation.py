"""Warn-once deprecation plumbing for the pre-1.2 entry points.

As of 1.2, :mod:`repro.api` replaces the kwargs-heavy legacy entry
points — ``layered_docrank(docgraph, damping, executor=, n_jobs=, warm=)``,
direct ``IncrementalLayeredRanker(...)`` construction, and friends — with a
declarative :class:`~repro.api.RankingConfig` plus one
:class:`~repro.api.Ranker` facade.  The old entry points keep working for
one more minor release (removal scheduled for 1.4), but announce their
replacement through this module.

Each entry point warns exactly once per process: the warning is a
migration nudge, not a log line, and a tight loop over ``layered_docrank``
should not drown the caller in repeats.  This module deliberately imports
nothing from the rest of the package so any layer can use it without
creating an import cycle.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_deprecated(name: str, replacement: str, *,
                    stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` for *name* per process.

    Parameters
    ----------
    name:
        Identifier of the deprecated entry point (also the once-per-process
        deduplication key).
    replacement:
        What callers should migrate to, mentioned verbatim in the message.
    stacklevel:
        Passed to :func:`warnings.warn` so the warning points at the
        caller of the shim, not at the shim itself.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated and will be removed in a future release; "
        f"use {replacement} instead",
        DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which entry points already warned (test isolation hook)."""
    _WARNED.clear()
