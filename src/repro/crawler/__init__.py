"""Crawler substrate: simulated web serving, frontiers, and the crawler."""

from .crawler import CrawlPolicy, CrawlResult, Crawler, crawl_campus
from .frontier import BFSFrontier, PriorityFrontier
from .webserver import FetchResult, SimulatedWeb

__all__ = [
    "CrawlPolicy",
    "CrawlResult",
    "Crawler",
    "crawl_campus",
    "BFSFrontier",
    "PriorityFrontier",
    "FetchResult",
    "SimulatedWeb",
]
