"""A simulated web to crawl.

The paper's experiment starts "from the home page of the university" and
lets a crawler follow hyperlinks.  We obviously cannot crawl the 2003 EPFL
web, so :class:`SimulatedWeb` wraps a ground-truth :class:`DocGraph` (for
example one produced by :mod:`repro.graphgen`) and serves it page by page,
exactly like an HTTP fetch would: given a URL it returns the page's
out-links, or a *fetch error* for URLs that do not exist or that the
simulated server is configured to fail on.

It also models the crawler trap the paper mentions: a site's dynamic pages
can be configured to keep generating *new* dynamic URLs ("crawling dynamic
pages often causes an infinite loop"), which the crawler must bound with a
per-site page budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..exceptions import ValidationError
from ..web.docgraph import DocGraph


@dataclass
class FetchResult:
    """Outcome of fetching one URL from the simulated web.

    Attributes
    ----------
    url:
        The fetched URL.
    ok:
        Whether the fetch succeeded.
    out_links:
        URLs the fetched page links to (empty on failure).
    site:
        The page's web site (empty on failure).
    is_dynamic:
        Whether the page is dynamically generated.
    """

    url: str
    ok: bool
    out_links: List[str] = field(default_factory=list)
    site: str = ""
    is_dynamic: bool = False


class SimulatedWeb:
    """Serves a ground-truth DocGraph to a crawler, one page at a time.

    Parameters
    ----------
    docgraph:
        The true web the simulation serves.
    failing_urls:
        URLs that return a failed fetch (simulating timeouts / 5xx).
    dynamic_trap_sites:
        Sites whose dynamic pages additionally link to freshly generated
        dynamic URLs, creating an unbounded crawl unless the crawler caps
        per-site pages.  ``trap_fanout`` new URLs are generated per fetched
        dynamic page.
    trap_fanout:
        Number of fresh trap URLs emitted per dynamic page of a trap site.
    """

    def __init__(self, docgraph: DocGraph, *,
                 failing_urls: Optional[Set[str]] = None,
                 dynamic_trap_sites: Optional[Set[str]] = None,
                 trap_fanout: int = 3) -> None:
        if docgraph.n_documents == 0:
            raise ValidationError("the simulated web must not be empty")
        if trap_fanout < 1:
            raise ValidationError("trap_fanout must be at least 1")
        self._docgraph = docgraph
        self._failing = set(failing_urls or ())
        self._trap_sites = set(dynamic_trap_sites or ())
        self._trap_fanout = trap_fanout
        self._trap_counter = 0
        self.fetch_count = 0

    @property
    def docgraph(self) -> DocGraph:
        """The ground-truth graph being served."""
        return self._docgraph

    def entry_point(self) -> str:
        """A sensible crawl seed: the first registered document's URL."""
        return self._docgraph.document(0).url

    def _trap_links(self, site: str) -> List[str]:
        links = []
        for _ in range(self._trap_fanout):
            self._trap_counter += 1
            url = f"http://{site}/trap?session={self._trap_counter:08d}"
            links.append(url)
        return links

    def fetch(self, url: str) -> FetchResult:
        """Fetch one URL, returning its out-links (or a failure)."""
        self.fetch_count += 1
        if url in self._failing:
            return FetchResult(url=url, ok=False)
        if "/trap?session=" in url:
            # A dynamically generated trap page: it exists only because a
            # previous fetch emitted it, and every fetch of it emits yet more
            # fresh trap pages — the unbounded loop the paper warns about.
            site = url.split("/")[2]
            if site not in self._trap_sites:
                return FetchResult(url=url, ok=False)
            return FetchResult(url=url, ok=True,
                               out_links=self._trap_links(site),
                               site=site, is_dynamic=True)
        try:
            document = self._docgraph.document_by_url(url)
        except Exception:
            return FetchResult(url=url, ok=False)

        adjacency = self._docgraph.adjacency()
        row = adjacency.getrow(document.doc_id)
        out_links = [self._docgraph.document(int(target)).url
                     for target in row.indices]
        if document.is_dynamic and document.site in self._trap_sites:
            # Dynamic pages of a trap site additionally emit freshly
            # generated trap URLs; fetching those emits yet more (see the
            # "/trap?session=" branch above), so the loop never terminates
            # on its own — only the crawler's budgets can stop it.
            out_links = out_links + self._trap_links(document.site)
        return FetchResult(url=url, ok=True, out_links=out_links,
                           site=document.site,
                           is_dynamic=document.is_dynamic)
