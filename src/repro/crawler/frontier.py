"""Crawl frontiers: the queue of URLs a crawler still has to visit.

Two disciplines are provided:

* :class:`BFSFrontier` — plain breadth-first order, the discipline the
  paper's campus crawl effectively used ("let the crawler follow the
  hyperlinks");
* :class:`PriorityFrontier` — orders URLs by a caller-supplied priority
  (e.g. prefer undiscovered sites, or prefer static pages), used by the
  crawl-coverage ablation.

Both deduplicate URLs: a URL is only ever handed out once, no matter how
many times it is discovered.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from ..exceptions import ValidationError


class BFSFrontier:
    """A FIFO frontier with URL deduplication."""

    def __init__(self) -> None:
        self._queue: deque[str] = deque()
        self._seen: set[str] = set()

    def add(self, url: str) -> bool:
        """Add a URL; return ``True`` when it was not seen before."""
        if url in self._seen:
            return False
        self._seen.add(url)
        self._queue.append(url)
        return True

    def pop(self) -> str:
        """Remove and return the next URL to crawl."""
        if not self._queue:
            raise ValidationError("frontier is empty")
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def seen_count(self) -> int:
        """Number of distinct URLs ever added (crawled or still queued)."""
        return len(self._seen)


class PriorityFrontier:
    """A frontier ordered by a priority function (lower value = sooner).

    Ties are broken by insertion order, making crawls fully deterministic
    for a deterministic priority function.
    """

    def __init__(self, priority: Optional[Callable[[str], float]] = None) -> None:
        self._priority = priority or (lambda _url: 0.0)
        self._heap: list[tuple[float, int, str]] = []
        self._seen: set[str] = set()
        self._counter = 0

    def add(self, url: str) -> bool:
        """Add a URL; return ``True`` when it was not seen before."""
        if url in self._seen:
            return False
        self._seen.add(url)
        heapq.heappush(self._heap,
                       (float(self._priority(url)), self._counter, url))
        self._counter += 1
        return True

    def pop(self) -> str:
        """Remove and return the lowest-priority-value URL."""
        if not self._heap:
            raise ValidationError("frontier is empty")
        _priority, _order, url = heapq.heappop(self._heap)
        return url

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def seen_count(self) -> int:
        """Number of distinct URLs ever added (crawled or still queued)."""
        return len(self._seen)
