"""The crawler: turns a simulated web into a crawled :class:`DocGraph`.

Reproduces the crawl methodology of Section 3.3: start from a seed page
(the university home page), follow hyperlinks breadth-first, *include*
dynamically generated pages, and bound the crawl by a page budget and a
per-site page cap (the paper's pragmatic answer to dynamic-page loops —
"researchers usually let the crawler run and then stop it").

The crawler only ever sees what the :class:`~repro.crawler.webserver.SimulatedWeb`
serves, so the resulting graph is a *partial* view of the true web, just
like a real crawl; the crawl-coverage tests measure how the layered ranking
degrades (or does not) with crawl completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import ValidationError
from ..web.docgraph import DocGraph
from .frontier import BFSFrontier, PriorityFrontier
from .webserver import SimulatedWeb


@dataclass
class CrawlPolicy:
    """Bounds and behaviour switches of a crawl.

    Attributes
    ----------
    max_pages:
        Total page budget (the crawl stops after this many successful
        fetches).
    max_pages_per_site:
        Per-site cap; ``None`` means unbounded.  This is what defuses the
        dynamic-page traps.
    include_dynamic:
        Whether dynamic pages are fetched at all.  The paper argues for
        including them; excluding them is the ablation.
    max_fetch_failures:
        Abort the crawl after this many consecutive failed fetches
        (protects against a dead seed).
    """

    max_pages: int = 1000
    max_pages_per_site: Optional[int] = None
    include_dynamic: bool = True
    max_fetch_failures: int = 100

    def __post_init__(self) -> None:
        if self.max_pages < 1:
            raise ValidationError("max_pages must be at least 1")
        if self.max_pages_per_site is not None and self.max_pages_per_site < 1:
            raise ValidationError("max_pages_per_site must be at least 1")
        if self.max_fetch_failures < 1:
            raise ValidationError("max_fetch_failures must be at least 1")


@dataclass
class CrawlResult:
    """Everything a crawl produced.

    Attributes
    ----------
    docgraph:
        The crawled graph: fetched pages plus the links among them
        (links to never-fetched pages are kept, so the crawled graph also
        contains discovered-but-unfetched frontier documents, exactly like
        a real crawl snapshot).
    fetched_pages:
        Number of successfully fetched pages.
    failed_fetches:
        Number of failed fetches.
    pages_per_site:
        Fetched-page count per site.
    frontier_remaining:
        URLs still queued when the budget ran out.
    stopped_reason:
        ``"budget"``, ``"exhausted"`` or ``"failures"``.
    """

    docgraph: DocGraph
    fetched_pages: int
    failed_fetches: int
    pages_per_site: Dict[str, int] = field(default_factory=dict)
    frontier_remaining: int = 0
    stopped_reason: str = "exhausted"

    @property
    def coverage(self) -> float:
        """Fetched pages as a fraction of the crawled graph's documents."""
        if self.docgraph.n_documents == 0:
            return 0.0
        return self.fetched_pages / self.docgraph.n_documents


class Crawler:
    """Breadth-first (or prioritised) crawler over a :class:`SimulatedWeb`."""

    def __init__(self, web: SimulatedWeb,
                 policy: Optional[CrawlPolicy] = None, *,
                 frontier: Optional[BFSFrontier | PriorityFrontier] = None,
                 ) -> None:
        self._web = web
        self._policy = policy or CrawlPolicy()
        self._frontier = frontier if frontier is not None else BFSFrontier()

    def crawl(self, seed_url: Optional[str] = None) -> CrawlResult:
        """Run the crawl and return the crawled graph plus statistics."""
        policy = self._policy
        frontier = self._frontier
        seed = seed_url or self._web.entry_point()
        frontier.add(seed)

        crawled = DocGraph(normalize=False)
        pages_per_site: Dict[str, int] = {}
        fetched = 0
        failed = 0
        consecutive_failures = 0
        stopped_reason = "exhausted"

        while frontier:
            if fetched >= policy.max_pages:
                stopped_reason = "budget"
                break
            url = frontier.pop()
            result = self._web.fetch(url)
            if not result.ok:
                failed += 1
                consecutive_failures += 1
                if consecutive_failures >= policy.max_fetch_failures:
                    stopped_reason = "failures"
                    break
                continue
            consecutive_failures = 0

            if not policy.include_dynamic and result.is_dynamic:
                continue
            site_count = pages_per_site.get(result.site, 0)
            if (policy.max_pages_per_site is not None
                    and site_count >= policy.max_pages_per_site):
                continue

            fetched += 1
            pages_per_site[result.site] = site_count + 1
            crawled.add_document(url, site=result.site,
                                 is_dynamic=result.is_dynamic)
            for target in result.out_links:
                crawled.add_link(url, target)
                frontier.add(target)

        return CrawlResult(
            docgraph=crawled,
            fetched_pages=fetched,
            failed_fetches=failed,
            pages_per_site=pages_per_site,
            frontier_remaining=len(frontier),
            stopped_reason=stopped_reason,
        )


def crawl_campus(docgraph, *, max_pages: int = 2000,
                 max_pages_per_site: Optional[int] = None,
                 include_dynamic: bool = True,
                 seed_url: Optional[str] = None) -> CrawlResult:
    """Convenience: crawl a ground-truth DocGraph with a BFS crawler."""
    web = SimulatedWeb(docgraph)
    policy = CrawlPolicy(max_pages=max_pages,
                         max_pages_per_site=max_pages_per_site,
                         include_dynamic=include_dynamic)
    return Crawler(web, policy).crawl(seed_url)
