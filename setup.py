"""Setuptools shim.

The offline environment used for this reproduction ships setuptools without
the ``wheel`` package, so PEP 660 editable installs (which build an editable
wheel) fail.  Keeping a ``setup.py`` allows the legacy editable path
(``pip install -e . --no-use-pep517 --no-build-isolation``) and plain
``python setup.py develop`` to work everywhere.
"""

from setuptools import setup

setup()
